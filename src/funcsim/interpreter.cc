#include "funcsim/interpreter.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/logging.h"
#include "funcsim/exec_warp.h"

namespace gpuperf {
namespace funcsim {

namespace {

using isa::Instruction;
using isa::Kernel;
using isa::Opcode;
using isa::UnitKind;

float
asFloat(uint32_t v)
{
    float f;
    std::memcpy(&f, &v, 4);
    return f;
}

uint32_t
asBits(float f)
{
    uint32_t v;
    std::memcpy(&v, &f, 4);
    return v;
}

bool
compareI(isa::CmpOp cmp, int32_t a, int32_t b)
{
    switch (cmp) {
      case isa::CmpOp::kLt: return a < b;
      case isa::CmpOp::kLe: return a <= b;
      case isa::CmpOp::kGt: return a > b;
      case isa::CmpOp::kGe: return a >= b;
      case isa::CmpOp::kEq: return a == b;
      case isa::CmpOp::kNe: return a != b;
    }
    panic("bad cmp op");
}

bool
compareF(isa::CmpOp cmp, float a, float b)
{
    switch (cmp) {
      case isa::CmpOp::kLt: return a < b;
      case isa::CmpOp::kLe: return a <= b;
      case isa::CmpOp::kGt: return a > b;
      case isa::CmpOp::kGe: return a >= b;
      case isa::CmpOp::kEq: return a == b;
      case isa::CmpOp::kNe: return a != b;
    }
    panic("bad cmp op");
}

/**
 * The mask-independent TraceOp of an arithmetic/control instruction.
 * Shared by the scalar-reference per-op path and the vectorized core's
 * static-template table, so the two can never diverge.
 */
TraceOp
makeArithTraceOp(const Instruction &inst)
{
    TraceOp op;
    switch (isa::instrTypeOf(inst.op)) {
      case arch::InstrType::TypeI:
        op.unit = UnitKind::kArithI;
        break;
      case arch::InstrType::TypeII:
        op.unit = UnitKind::kArithII;
        break;
      case arch::InstrType::TypeIII:
        op.unit = UnitKind::kArithIII;
        break;
      case arch::InstrType::TypeIV:
        op.unit = UnitKind::kArithIV;
        break;
    }
    if (inst.op == Opcode::kBar)
        op.unit = UnitKind::kBarrier;
    if (isa::writesRegister(inst.op))
        op.dst = inst.dst + 1;
    for (int i = 0; i < 3; ++i) {
        if (inst.src[i] != isa::kNoReg &&
            !(i == 1 && inst.useImm)) {
            op.src[i] = inst.src[i] + 1;
        }
    }
    return op;
}

/** Divergence stack frame. */
struct Frame
{
    enum Kind : uint8_t { kIf, kLoop } kind;
    uint32_t savedMask;   // mask to restore at reconvergence
    uint32_t elseMask;    // IF: lanes for the else branch
    int headerPc;         // LOOP: pc of the LOOP marker
};

/** Mutable state of one warp. */
struct WarpState
{
    int warpId = 0;
    int pc = 0;
    uint32_t mask = 0;       // current active mask
    uint32_t blockMask = 0;  // lanes with valid thread ids
    bool done = false;
    bool atBarrier = false;
    std::vector<Frame> frames;
    std::vector<uint32_t> regs;   // [reg * warpSize + lane]
    std::vector<uint8_t> preds;   // [pred * warpSize + lane]
    uint64_t opsExecuted = 0;

    // Per-stage bookkeeping.
    uint64_t stageBodyOps = 0;

    // Trace under construction.
    WarpTrace trace;
};

/**
 * Per-static-instruction facts, precomputed once per kernel: the
 * dispatch cost/classification countArith re-derives per dynamic op in
 * the scalar path, and the mask-independent fields of the TraceOp the
 * instruction emits (only conflict/sharedPasses/numXacts/xactBytes/
 * texIdx depend on the dynamic mask and addresses). The vectorized
 * core appends traces by copying the template and patching those
 * dynamic fields.
 */
struct StaticOp
{
    uint8_t cost = 0;      ///< isa::dynamicCost(op)
    uint8_t typeIdx = 0;   ///< isa::instrTypeOf(op) when cost > 0
    bool isMad = false;    ///< op == kFmad
    bool traced = false;   ///< on the countArith/recordArithTrace path
    TraceOp tmpl;          ///< template TraceOp (memory/arith/control)
};

/** Executes one block. */
class BlockExecutor
{
  public:
    BlockExecutor(const arch::GpuSpec &spec, const Kernel &kernel,
                  const LaunchConfig &cfg, GlobalMemory &gmem,
                  const memxact::CoalescingSimulator &coalescer,
                  const memxact::BankConflictAnalyzer &banks,
                  const RunOptions &options, ExecMode mode)
        : spec_(spec), kernel_(kernel), cfg_(cfg), gmem_(gmem),
          coalescer_(coalescer), banks_(banks), options_(options),
          shared_(kernel.sharedBytes()),
          vec_(mode == ExecMode::kVectorized)
    {
        GPUPERF_ASSERT(spec_.warpSize <= kMaxWarpLanes,
                       "mask representation limits warps to "
                       "kMaxWarpLanes lanes");
        lanesMask_ = spec_.warpSize == 32
                         ? 0xffffffffu
                         : (1u << spec_.warpSize) - 1u;
        for (int start = 0; start < spec_.warpSize;
             start += spec_.sharedIssueGroup) {
            uint32_t gm = 0;
            for (int lane = start;
                 lane < std::min(start + spec_.sharedIssueGroup,
                                 spec_.warpSize);
                 ++lane) {
                gm |= 1u << lane;
            }
            sharedGroupMasks_.push_back(gm);
        }
        buildStaticOps();
    }

    /**
     * Run block @p block_id.
     * @param[out] stages      per-stage statistics of this block
     * @param[out] active      per-stage active-warp counts
     * @param[out] warp_traces per-warp traces (if collecting)
     */
    void run(int block_id, std::vector<StageStats> &stages,
             std::vector<double> &active,
             std::vector<WarpTrace> *warp_traces);

  private:
    void buildStaticOps();

    void runWarpToBarrier(WarpState &w);
    void execute(WarpState &w, const Instruction &inst);

    // --- Scalar-reference core (the original per-lane interpreter,
    // --- retained as the bit-identity oracle; see ExecMode).
    void countArith(WarpState &w, Opcode op);
    void recordArithTrace(WarpState &w, const Instruction &inst);
    void executeAlu(WarpState &w, const Instruction &inst);
    void executeSharedAccess(WarpState &w, const Instruction &inst);
    void executeGlobalAccess(WarpState &w, const Instruction &inst);
    void executeFmadShared(WarpState &w, const Instruction &inst);
    void executeSetp(WarpState &w, const Instruction &inst);
    uint32_t guardMask(WarpState &w, const Instruction &inst);
    uint32_t srcValue(WarpState &w, const Instruction &inst, int lane);

    // --- Vectorized core: whole-warp SoA kernels (exec_warp.cc) plus
    // --- popcount/template stats and trace accounting.
    void executeAluVec(WarpState &w, const Instruction &inst);
    void executeSharedAccessVec(WarpState &w, const Instruction &inst);
    void executeGlobalAccessVec(WarpState &w, const Instruction &inst);
    void executeFmadSharedVec(WarpState &w, const Instruction &inst);
    void executeSetpVec(WarpState &w, const Instruction &inst);

    /** countArith + recordArithTrace, by mode. */
    void noteArith(WarpState &w, const Instruction &inst);
    /** IF/BRK guard mask, by mode. */
    uint32_t evalGuard(WarpState &w, const Instruction &inst);

    uint32_t &regAt(WarpState &w, isa::Reg r, int lane)
    {
        return w.regs[static_cast<size_t>(r) * spec_.warpSize + lane];
    }

    uint8_t &predAt(WarpState &w, isa::Pred p, int lane)
    {
        return w.preds[static_cast<size_t>(p) * spec_.warpSize + lane];
    }

    /** SoA row of register @p r: lanes are contiguous. */
    uint32_t *regRow(WarpState &w, isa::Reg r)
    {
        return w.regs.data() + static_cast<size_t>(r) * spec_.warpSize;
    }

    uint8_t *predRow(WarpState &w, isa::Pred p)
    {
        return w.preds.data() + static_cast<size_t>(p) * spec_.warpSize;
    }

    /** Operand-b row: immediate broadcast, register row, or zeros. */
    const uint32_t *srcBRow(WarpState &w, const Instruction &inst)
    {
        if (inst.useImm) {
            warpexec::fill(immBuf_, static_cast<uint32_t>(inst.imm),
                           spec_.warpSize);
            return immBuf_;
        }
        if (inst.src[1] != isa::kNoReg)
            return regRow(w, inst.src[1]);
        return zeroBuf_;
    }

    /** Commit outBuf_ to a register row under the active mask. */
    void commitRegs(uint32_t *dst, uint32_t mask)
    {
        if (mask == lanesMask_) {
            std::memcpy(dst, outBuf_,
                        static_cast<size_t>(spec_.warpSize) * 4);
        } else {
            warpexec::scatterMasked(dst, outBuf_, mask, spec_.warpSize);
        }
    }

    /** Shared-memory ideal transaction count: groups with any lane. */
    int idealGroups(uint32_t mask) const
    {
        int n = 0;
        for (uint32_t gm : sharedGroupMasks_)
            n += (mask & gm) != 0;
        return n;
    }

    StageStats &stage() { return (*stages_)[stageIdx_]; }

    const arch::GpuSpec &spec_;
    const Kernel &kernel_;
    const LaunchConfig &cfg_;
    GlobalMemory &gmem_;
    const memxact::CoalescingSimulator &coalescer_;
    const memxact::BankConflictAnalyzer &banks_;
    const RunOptions &options_;

    SharedMemory shared_;
    const bool vec_;
    int blockId_ = 0;
    int stageIdx_ = 0;
    std::vector<StageStats> *stages_ = nullptr;

    uint32_t lanesMask_ = 0;
    std::vector<StaticOp> sops_;
    std::vector<uint32_t> sharedGroupMasks_;

    // Static trace-emission counts (for first-block reservation) and
    // the observed per-warp trace sizes of earlier blocks (for the
    // rest). Content-independent bookkeeping: both modes reserve the
    // same way, the stored sizes are equal by the bit-identity gate.
    size_t staticTraceOps_ = 0;
    size_t staticTexOps_ = 0;
    size_t lastTraceOps_ = 0;
    size_t lastTexLines_ = 0;

    // Whole-warp scratch rows for the vectorized core. Zero-initialized
    // so lanes masked off since block start still hold defined values.
    alignas(64) uint32_t immBuf_[kMaxWarpLanes] = {};
    alignas(64) uint32_t zeroBuf_[kMaxWarpLanes] = {};
    alignas(64) uint32_t outBuf_[kMaxWarpLanes] = {};
    alignas(64) uint32_t gatherBuf_[kMaxWarpLanes] = {};
    alignas(64) uint8_t predBuf_[kMaxWarpLanes] = {};
    uint64_t addrBuf_[kMaxWarpLanes] = {};
    std::vector<memxact::Transaction> xactBuf_;
};

void
BlockExecutor::buildStaticOps()
{
    const auto &insts = kernel_.instructions();
    sops_.resize(insts.size());
    for (size_t pc = 0; pc < insts.size(); ++pc) {
        const Instruction &inst = insts[pc];
        StaticOp &s = sops_[pc];
        switch (inst.op) {
          case Opcode::kLds:
            s.tmpl.unit = UnitKind::kSharedMem;
            s.tmpl.dst = inst.dst + 1;
            s.tmpl.src[0] = inst.src[0] + 1;
            ++staticTraceOps_;
            break;
          case Opcode::kSts:
            s.tmpl.unit = UnitKind::kSharedMem;
            s.tmpl.src[0] = inst.src[0] + 1;
            s.tmpl.src[1] = inst.src[1] + 1;
            ++staticTraceOps_;
            break;
          case Opcode::kLdg:
          case Opcode::kStg:
          case Opcode::kLdt:
            if (inst.op == Opcode::kLdg) {
                s.tmpl.unit = UnitKind::kGlobalLoad;
                s.tmpl.dst = inst.dst + 1;
            } else if (inst.op == Opcode::kStg) {
                s.tmpl.unit = UnitKind::kGlobalStore;
                s.tmpl.src[1] = inst.src[1] + 1;
            } else {
                s.tmpl.unit = UnitKind::kTexLoad;
                s.tmpl.dst = inst.dst + 1;
                ++staticTexOps_;
            }
            s.tmpl.src[0] = inst.src[0] + 1;
            ++staticTraceOps_;
            break;
          case Opcode::kFmadS:
            s.tmpl.unit = UnitKind::kArithII;
            s.tmpl.dst = inst.dst + 1;
            s.tmpl.src[0] = inst.src[0] + 1;
            s.tmpl.src[1] = inst.src[1] + 1;
            s.tmpl.src[2] = inst.src[2] + 1;
            ++staticTraceOps_;
            break;
          default: {
            const int cost = isa::dynamicCost(inst.op);
            if (cost == 0)
                break;
            s.cost = static_cast<uint8_t>(cost);
            s.typeIdx =
                static_cast<uint8_t>(isa::instrTypeOf(inst.op));
            s.isMad = inst.op == Opcode::kFmad;
            s.traced = true;
            s.tmpl = makeArithTraceOp(inst);
            ++staticTraceOps_;
            break;
          }
        }
    }
}

uint32_t
BlockExecutor::guardMask(WarpState &w, const Instruction &inst)
{
    uint32_t m = 0;
    for (int lane = 0; lane < spec_.warpSize; ++lane) {
        if (!((w.mask >> lane) & 1u))
            continue;
        bool v = predAt(w, inst.pred, lane) != 0;
        if (inst.predNegate)
            v = !v;
        if (v)
            m |= 1u << lane;
    }
    return m;
}

uint32_t
BlockExecutor::srcValue(WarpState &w, const Instruction &inst, int lane)
{
    // Second operand: register or immediate.
    if (inst.useImm)
        return static_cast<uint32_t>(inst.imm);
    return regAt(w, inst.src[1], lane);
}

void
BlockExecutor::countArith(WarpState &w, Opcode op)
{
    const int cost = isa::dynamicCost(op);
    if (cost == 0)
        return;
    StageStats &s = stage();
    s.typeCounts[static_cast<int>(isa::instrTypeOf(op))] += cost;
    s.totalWarpInstrs += cost;
    if (op == Opcode::kFmad)
        s.madCount += cost;
    w.stageBodyOps += cost;
}

void
BlockExecutor::recordArithTrace(WarpState &w, const Instruction &inst)
{
    if (isa::dynamicCost(inst.op) == 0)
        return;
    w.trace.ops.push_back(makeArithTraceOp(inst));
}

void
BlockExecutor::noteArith(WarpState &w, const Instruction &inst)
{
    if (!vec_) {
        countArith(w, inst.op);
        recordArithTrace(w, inst);
        return;
    }
    const StaticOp &sop = sops_[w.pc];
    if (sop.cost == 0)
        return;
    StageStats &s = stage();
    s.typeCounts[sop.typeIdx] += sop.cost;
    s.totalWarpInstrs += sop.cost;
    if (sop.isMad)
        s.madCount += sop.cost;
    w.stageBodyOps += sop.cost;
    if (sop.traced)
        w.trace.ops.push_back(sop.tmpl);
}

uint32_t
BlockExecutor::evalGuard(WarpState &w, const Instruction &inst)
{
    if (vec_) {
        return warpexec::guardMask(predRow(w, inst.pred),
                                   inst.predNegate, w.mask,
                                   spec_.warpSize);
    }
    return guardMask(w, inst);
}

void
BlockExecutor::executeAlu(WarpState &w, const Instruction &inst)
{
    const int tid_base = w.warpId * spec_.warpSize;
    for (int lane = 0; lane < spec_.warpSize; ++lane) {
        if (!((w.mask >> lane) & 1u))
            continue;
        const uint32_t a =
            inst.src[0] != isa::kNoReg ? regAt(w, inst.src[0], lane) : 0;
        const uint32_t b = inst.src[1] != isa::kNoReg || inst.useImm
                               ? srcValue(w, inst, lane)
                               : 0;
        const uint32_t c =
            inst.src[2] != isa::kNoReg ? regAt(w, inst.src[2], lane) : 0;
        uint32_t out = 0;
        switch (inst.op) {
          case Opcode::kFadd:
            out = asBits(asFloat(a) + asFloat(b));
            break;
          case Opcode::kFmul:
          case Opcode::kFmul2:
            out = asBits(asFloat(a) * asFloat(b));
            break;
          case Opcode::kFmad:
            out = asBits(asFloat(a) * asFloat(b) + asFloat(c));
            break;
          case Opcode::kIadd:
            out = a + b;
            break;
          case Opcode::kIsub:
            out = a - b;
            break;
          case Opcode::kImul:
            out = a * b;
            break;
          case Opcode::kImad:
            out = a * b + c;
            break;
          case Opcode::kShl:
            out = a << (b & 31);
            break;
          case Opcode::kShr:
            out = a >> (b & 31);
            break;
          case Opcode::kAnd:
            out = a & b;
            break;
          case Opcode::kOr:
            out = a | b;
            break;
          case Opcode::kXor:
            out = a ^ b;
            break;
          case Opcode::kImin:
            out = static_cast<uint32_t>(
                std::min(static_cast<int32_t>(a), static_cast<int32_t>(b)));
            break;
          case Opcode::kImax:
            out = static_cast<uint32_t>(
                std::max(static_cast<int32_t>(a), static_cast<int32_t>(b)));
            break;
          case Opcode::kMov:
            out = a;
            break;
          case Opcode::kMovImm:
            out = static_cast<uint32_t>(inst.imm);
            break;
          case Opcode::kS2r:
            switch (inst.sreg) {
              case isa::SpecialReg::kTid:
                out = static_cast<uint32_t>(tid_base + lane);
                break;
              case isa::SpecialReg::kNtid:
                out = static_cast<uint32_t>(cfg_.blockDim);
                break;
              case isa::SpecialReg::kCtaid:
                out = static_cast<uint32_t>(blockId_);
                break;
              case isa::SpecialReg::kNctaid:
                out = static_cast<uint32_t>(cfg_.gridDim);
                break;
              case isa::SpecialReg::kLaneId:
                out = static_cast<uint32_t>(lane);
                break;
              case isa::SpecialReg::kWarpId:
                out = static_cast<uint32_t>(w.warpId);
                break;
            }
            break;
          case Opcode::kSel:
            out = predAt(w, inst.pred, lane) ? a : b;
            break;
          case Opcode::kF2i:
            out = static_cast<uint32_t>(
                static_cast<int32_t>(asFloat(a)));
            break;
          case Opcode::kI2f:
            out = asBits(static_cast<float>(static_cast<int32_t>(a)));
            break;
          case Opcode::kRcp:
            out = asBits(1.0f / asFloat(a));
            break;
          case Opcode::kSin:
            out = asBits(std::sin(asFloat(a)));
            break;
          case Opcode::kCos:
            out = asBits(std::cos(asFloat(a)));
            break;
          case Opcode::kLg2:
            out = asBits(std::log2(asFloat(a)));
            break;
          case Opcode::kEx2:
            out = asBits(std::exp2(asFloat(a)));
            break;
          case Opcode::kRsqrt:
            out = asBits(1.0f / std::sqrt(asFloat(a)));
            break;
          // Double precision operates on float values held in 32-bit
          // registers: the type IV classification (1 unit/SM) is what
          // matters for modeling; these opcodes appear only in
          // microbenchmarks.
          case Opcode::kDadd:
            out = asBits(asFloat(a) + asFloat(b));
            break;
          case Opcode::kDmul:
            out = asBits(asFloat(a) * asFloat(b));
            break;
          case Opcode::kDfma:
            out = asBits(asFloat(a) * asFloat(b) + asFloat(c));
            break;
          default:
            panic("executeAlu: unexpected opcode %s",
                  isa::opcodeName(inst.op));
        }
        regAt(w, inst.dst, lane) = out;
    }
}

void
BlockExecutor::executeAluVec(WarpState &w, const Instruction &inst)
{
    // Every lane computes (a trap-free operation on whatever bits the
    // inactive lanes hold); only lanes in w.mask commit. Computing
    // into outBuf_ and scattering afterwards also keeps dst-aliases-
    // src instructions exact, since each lane only ever reads and
    // writes its own row index.
    const uint32_t *a = inst.src[0] != isa::kNoReg
                            ? regRow(w, inst.src[0])
                            : zeroBuf_;
    const uint32_t *b = srcBRow(w, inst);
    const uint32_t *c = inst.src[2] != isa::kNoReg
                            ? regRow(w, inst.src[2])
                            : zeroBuf_;
    const uint8_t *sel =
        inst.op == Opcode::kSel ? predRow(w, inst.pred) : nullptr;
    warpexec::LaneCtx ctx;
    ctx.tidBase = w.warpId * spec_.warpSize;
    ctx.blockDim = cfg_.blockDim;
    ctx.blockId = blockId_;
    ctx.gridDim = cfg_.gridDim;
    ctx.warpId = w.warpId;
    warpexec::runAlu(inst, ctx, a, b, c, sel, outBuf_, spec_.warpSize);
    commitRegs(regRow(w, inst.dst), w.mask);
}

void
BlockExecutor::executeSetp(WarpState &w, const Instruction &inst)
{
    for (int lane = 0; lane < spec_.warpSize; ++lane) {
        if (!((w.mask >> lane) & 1u))
            continue;
        const uint32_t a = regAt(w, inst.src[0], lane);
        const uint32_t b = srcValue(w, inst, lane);
        bool r;
        if (inst.op == Opcode::kSetpI) {
            r = compareI(inst.cmp, static_cast<int32_t>(a),
                         static_cast<int32_t>(b));
        } else {
            r = compareF(inst.cmp, asFloat(a), asFloat(b));
        }
        predAt(w, inst.pred, lane) = r ? 1 : 0;
    }
}

void
BlockExecutor::executeSetpVec(WarpState &w, const Instruction &inst)
{
    const uint32_t *a = regRow(w, inst.src[0]);
    const uint32_t *b = srcBRow(w, inst);
    warpexec::runSetp(inst, a, b, predBuf_, spec_.warpSize);
    uint8_t *dst = predRow(w, inst.pred);
    if (w.mask == lanesMask_) {
        std::memcpy(dst, predBuf_,
                    static_cast<size_t>(spec_.warpSize));
    } else {
        warpexec::scatterMaskedU8(dst, predBuf_, w.mask,
                                  spec_.warpSize);
    }
}

void
BlockExecutor::executeSharedAccess(WarpState &w, const Instruction &inst)
{
    // Compute per-lane byte addresses.
    for (int lane = 0; lane < spec_.warpSize; ++lane) {
        if (!((w.mask >> lane) & 1u))
            continue;
        addrBuf_[lane] =
            static_cast<uint64_t>(regAt(w, inst.src[0], lane)) + inst.imm;
    }

    // Data movement.
    int active = 0;
    for (int lane = 0; lane < spec_.warpSize; ++lane) {
        if (!((w.mask >> lane) & 1u))
            continue;
        ++active;
        if (inst.op == Opcode::kLds) {
            regAt(w, inst.dst, lane) = shared_.load32(addrBuf_[lane]);
        } else {
            shared_.store32(addrBuf_[lane], regAt(w, inst.src[1], lane));
        }
    }

    // Statistics: serialized passes from bank conflicts.
    const int passes =
        banks_.warpTransactions(addrBuf_, w.mask, spec_.warpSize);
    int ideal_groups = 0;
    for (int start = 0; start < spec_.warpSize;
         start += spec_.sharedIssueGroup) {
        uint32_t group_mask = 0;
        for (int lane = start;
             lane < std::min(start + spec_.sharedIssueGroup,
                             spec_.warpSize);
             ++lane) {
            group_mask |= (w.mask >> lane) & 1u;
        }
        if (group_mask)
            ++ideal_groups;
    }

    StageStats &s = stage();
    s.totalWarpInstrs += 1;
    s.sharedInstrs += 1;
    s.sharedTransactions += passes;
    s.sharedTransactionsIdeal += ideal_groups;
    s.sharedBytes += static_cast<uint64_t>(active) * 4;
    w.stageBodyOps += 1;

    TraceOp op;
    op.unit = UnitKind::kSharedMem;
    op.conflict = static_cast<uint8_t>(std::min(passes, 255));
    if (inst.op == Opcode::kLds) {
        op.dst = inst.dst + 1;
        op.src[0] = inst.src[0] + 1;
    } else {
        op.src[0] = inst.src[0] + 1;
        op.src[1] = inst.src[1] + 1;
    }
    w.trace.ops.push_back(op);
}

void
BlockExecutor::executeSharedAccessVec(WarpState &w,
                                      const Instruction &inst)
{
    const int n = spec_.warpSize;
    // Addresses for all lanes (pure arithmetic; inactive lanes' values
    // are computed but never dereferenced — the analyzers read only
    // masked lanes).
    warpexec::runAddress(regRow(w, inst.src[0]), inst.imm, addrBuf_, n);

    // Data movement stays mask-serial: SharedMemory accessors are
    // bounds-checked out-of-line calls, so only active lanes may touch
    // them. Iterating set bits keeps divergent warps cheap.
    if (inst.op == Opcode::kLds) {
        uint32_t *dst = regRow(w, inst.dst);
        for (uint32_t m = w.mask; m; m &= m - 1) {
            const int lane = __builtin_ctz(m);
            dst[lane] = shared_.load32(addrBuf_[lane]);
        }
    } else {
        const uint32_t *val = regRow(w, inst.src[1]);
        for (uint32_t m = w.mask; m; m &= m - 1) {
            const int lane = __builtin_ctz(m);
            shared_.store32(addrBuf_[lane], val[lane]);
        }
    }

    const int active = __builtin_popcount(w.mask);
    const int passes =
        banks_.warpTransactionsFast(addrBuf_, w.mask, n);

    StageStats &s = stage();
    s.totalWarpInstrs += 1;
    s.sharedInstrs += 1;
    s.sharedTransactions += passes;
    s.sharedTransactionsIdeal += idealGroups(w.mask);
    s.sharedBytes += static_cast<uint64_t>(active) * 4;
    w.stageBodyOps += 1;

    TraceOp op = sops_[w.pc].tmpl;
    op.conflict = static_cast<uint8_t>(std::min(passes, 255));
    w.trace.ops.push_back(op);
}

void
BlockExecutor::executeGlobalAccess(WarpState &w, const Instruction &inst)
{
    for (int lane = 0; lane < spec_.warpSize; ++lane) {
        if (!((w.mask >> lane) & 1u))
            continue;
        addrBuf_[lane] =
            static_cast<uint64_t>(regAt(w, inst.src[0], lane)) + inst.imm;
    }

    int active = 0;
    for (int lane = 0; lane < spec_.warpSize; ++lane) {
        if (!((w.mask >> lane) & 1u))
            continue;
        ++active;
        if (inst.op == Opcode::kStg) {
            gmem_.store32(addrBuf_[lane], regAt(w, inst.src[1], lane));
        } else {
            regAt(w, inst.dst, lane) = gmem_.load32(addrBuf_[lane]);
        }
    }

    const auto xacts = coalescer_.coalesceWarp(addrBuf_, w.mask,
                                               spec_.warpSize, 4);
    StageStats &s = stage();
    s.totalWarpInstrs += 1;
    s.globalInstrs += 1;
    s.globalTransactions += xacts.size();
    for (const auto &x : xacts) {
        s.globalBytes += x.bytes;
        s.globalXactBySize[x.bytes] += 1;
    }
    s.globalRequestBytes += static_cast<uint64_t>(active) * 4;
    w.stageBodyOps += 1;

    TraceOp op;
    switch (inst.op) {
      case Opcode::kLdg:
        op.unit = UnitKind::kGlobalLoad;
        op.dst = inst.dst + 1;
        break;
      case Opcode::kStg:
        op.unit = UnitKind::kGlobalStore;
        op.src[1] = inst.src[1] + 1;
        break;
      case Opcode::kLdt:
        op.unit = UnitKind::kTexLoad;
        op.dst = inst.dst + 1;
        break;
      default:
        panic("unexpected global opcode");
    }
    op.src[0] = inst.src[0] + 1;
    op.numXacts = static_cast<uint16_t>(xacts.size());
    op.xactBytes = static_cast<uint32_t>(
        memxact::CoalescingSimulator::totalBytes(xacts));

    if (inst.op == Opcode::kLdt) {
        // Record the distinct cache lines touched, per issue group, for
        // the timing simulator's texture cache.
        op.texIdx = static_cast<uint32_t>(w.trace.texLines.size());
        const int line = spec_.textureCacheLineBytes;
        int lines = 0;
        for (int start = 0; start < spec_.warpSize;
             start += spec_.coalesceGroup) {
            uint32_t prev_count = lines;
            (void)prev_count;
            // Collect unique lines within the group, preserving order.
            for (int lane = start;
                 lane < std::min(start + spec_.coalesceGroup,
                                 spec_.warpSize);
                 ++lane) {
                if (!((w.mask >> lane) & 1u))
                    continue;
                const uint32_t line_id =
                    static_cast<uint32_t>(addrBuf_[lane] / line);
                bool seen = false;
                for (size_t k = op.texIdx; k < w.trace.texLines.size();
                     ++k) {
                    if (w.trace.texLines[k] == line_id) {
                        seen = true;
                        break;
                    }
                }
                if (!seen) {
                    w.trace.texLines.push_back(line_id);
                    ++lines;
                }
            }
        }
        op.numXacts = static_cast<uint16_t>(lines);
        op.xactBytes = static_cast<uint32_t>(lines) * line;
    }
    w.trace.ops.push_back(op);
}

void
BlockExecutor::executeGlobalAccessVec(WarpState &w,
                                      const Instruction &inst)
{
    const int n = spec_.warpSize;
    warpexec::runAddress(regRow(w, inst.src[0]), inst.imm, addrBuf_, n);

    if (inst.op == Opcode::kStg) {
        const uint32_t *val = regRow(w, inst.src[1]);
        for (uint32_t m = w.mask; m; m &= m - 1) {
            const int lane = __builtin_ctz(m);
            gmem_.store32(addrBuf_[lane], val[lane]);
        }
    } else {
        uint32_t *dst = regRow(w, inst.dst);
        for (uint32_t m = w.mask; m; m &= m - 1) {
            const int lane = __builtin_ctz(m);
            dst[lane] = gmem_.load32(addrBuf_[lane]);
        }
    }

    const int active = __builtin_popcount(w.mask);
    coalescer_.coalesceWarpInto(addrBuf_, w.mask, n, 4, xactBuf_);

    StageStats &s = stage();
    s.totalWarpInstrs += 1;
    s.globalInstrs += 1;
    s.globalTransactions += xactBuf_.size();
    uint64_t xact_bytes = 0;
    for (const auto &x : xactBuf_) {
        s.globalBytes += x.bytes;
        s.globalXactBySize[x.bytes] += 1;
        xact_bytes += x.bytes;
    }
    s.globalRequestBytes += static_cast<uint64_t>(active) * 4;
    w.stageBodyOps += 1;

    TraceOp op = sops_[w.pc].tmpl;
    op.numXacts = static_cast<uint16_t>(xactBuf_.size());
    op.xactBytes = static_cast<uint32_t>(xact_bytes);

    if (inst.op == Opcode::kLdt) {
        // Distinct cache lines per issue group, exactly as the scalar
        // reference records them (order-preserving dedup).
        op.texIdx = static_cast<uint32_t>(w.trace.texLines.size());
        const int line = spec_.textureCacheLineBytes;
        int lines = 0;
        for (int start = 0; start < spec_.warpSize;
             start += spec_.coalesceGroup) {
            for (int lane = start;
                 lane < std::min(start + spec_.coalesceGroup,
                                 spec_.warpSize);
                 ++lane) {
                if (!((w.mask >> lane) & 1u))
                    continue;
                const uint32_t line_id =
                    static_cast<uint32_t>(addrBuf_[lane] / line);
                bool seen = false;
                for (size_t k = op.texIdx; k < w.trace.texLines.size();
                     ++k) {
                    if (w.trace.texLines[k] == line_id) {
                        seen = true;
                        break;
                    }
                }
                if (!seen) {
                    w.trace.texLines.push_back(line_id);
                    ++lines;
                }
            }
        }
        op.numXacts = static_cast<uint16_t>(lines);
        op.xactBytes = static_cast<uint32_t>(lines) * line;
    }
    w.trace.ops.push_back(op);
}

void
BlockExecutor::executeFmadShared(WarpState &w, const Instruction &inst)
{
    int active = 0;
    for (int lane = 0; lane < spec_.warpSize; ++lane) {
        if (!((w.mask >> lane) & 1u))
            continue;
        addrBuf_[lane] =
            static_cast<uint64_t>(regAt(w, inst.src[1], lane)) + inst.imm;
        ++active;
    }
    for (int lane = 0; lane < spec_.warpSize; ++lane) {
        if (!((w.mask >> lane) & 1u))
            continue;
        const float a = asFloat(regAt(w, inst.src[0], lane));
        const float b = asFloat(shared_.load32(addrBuf_[lane]));
        const float c = asFloat(regAt(w, inst.src[2], lane));
        regAt(w, inst.dst, lane) = asBits(a * b + c);
    }

    const int passes =
        banks_.warpTransactions(addrBuf_, w.mask, spec_.warpSize);
    int ideal_groups = 0;
    for (int start = 0; start < spec_.warpSize;
         start += spec_.sharedIssueGroup) {
        uint32_t any = 0;
        for (int lane = start;
             lane < std::min(start + spec_.sharedIssueGroup,
                             spec_.warpSize);
             ++lane) {
            any |= (w.mask >> lane) & 1u;
        }
        if (any)
            ++ideal_groups;
    }

    StageStats &s = stage();
    s.typeCounts[static_cast<int>(arch::InstrType::TypeII)] += 1;
    s.madCount += 1;
    s.totalWarpInstrs += 1;
    s.sharedTransactions += passes;
    s.sharedTransactionsIdeal += ideal_groups;
    s.sharedBytes += static_cast<uint64_t>(active) * 4;
    w.stageBodyOps += 1;

    TraceOp op;
    op.unit = UnitKind::kArithII;
    op.sharedPasses = static_cast<uint8_t>(std::min(passes, 255));
    op.dst = inst.dst + 1;
    op.src[0] = inst.src[0] + 1;
    op.src[1] = inst.src[1] + 1;
    op.src[2] = inst.src[2] + 1;
    w.trace.ops.push_back(op);
}

void
BlockExecutor::executeFmadSharedVec(WarpState &w, const Instruction &inst)
{
    const int n = spec_.warpSize;
    warpexec::runAddress(regRow(w, inst.src[1]), inst.imm, addrBuf_, n);

    // Gather the shared operand for active lanes; inactive lanes keep
    // whatever gatherBuf_ holds (defined bits — the compute loop runs
    // every lane, the commit is masked).
    for (uint32_t m = w.mask; m; m &= m - 1) {
        const int lane = __builtin_ctz(m);
        gatherBuf_[lane] = shared_.load32(addrBuf_[lane]);
    }

    // a * b + c with the shared operand as b: run the kFmad kernel so
    // the expression (and its IEEE bit pattern) is the same one the
    // ALU path uses.
    Instruction fmad = inst;
    fmad.op = Opcode::kFmad;
    warpexec::runAlu(fmad, warpexec::LaneCtx{},
                     regRow(w, inst.src[0]), gatherBuf_,
                     regRow(w, inst.src[2]), nullptr, outBuf_, n);
    commitRegs(regRow(w, inst.dst), w.mask);

    const int active = __builtin_popcount(w.mask);
    const int passes =
        banks_.warpTransactionsFast(addrBuf_, w.mask, n);

    StageStats &s = stage();
    s.typeCounts[static_cast<int>(arch::InstrType::TypeII)] += 1;
    s.madCount += 1;
    s.totalWarpInstrs += 1;
    s.sharedTransactions += passes;
    s.sharedTransactionsIdeal += idealGroups(w.mask);
    s.sharedBytes += static_cast<uint64_t>(active) * 4;
    w.stageBodyOps += 1;

    TraceOp op = sops_[w.pc].tmpl;
    op.sharedPasses = static_cast<uint8_t>(std::min(passes, 255));
    w.trace.ops.push_back(op);
}

void
BlockExecutor::execute(WarpState &w, const Instruction &inst)
{
    switch (inst.op) {
      case Opcode::kFmadS:
        if (vec_)
            executeFmadSharedVec(w, inst);
        else
            executeFmadShared(w, inst);
        ++w.pc;
        break;
      case Opcode::kIf: {
        noteArith(w, inst);
        const uint32_t taken = evalGuard(w, inst);
        Frame frame;
        frame.kind = Frame::kIf;
        frame.savedMask = w.mask;
        frame.elseMask = w.mask & ~taken;
        frame.headerPc = w.pc;
        w.frames.push_back(frame);
        if (taken) {
            w.mask = taken;
            ++w.pc;
        } else {
            const int else_pc = kernel_.elseOf(w.pc);
            // Jump to the ELSE (its handler installs elseMask) or to
            // the ENDIF (which pops the frame).
            w.pc = else_pc != -1 ? else_pc : kernel_.endifOf(w.pc);
        }
        break;
      }
      case Opcode::kElse: {
        noteArith(w, inst);
        GPUPERF_ASSERT(!w.frames.empty() &&
                           w.frames.back().kind == Frame::kIf,
                       "ELSE without IF frame");
        Frame &frame = w.frames.back();
        if (frame.elseMask) {
            w.mask = frame.elseMask;
            ++w.pc;
        } else {
            w.pc = kernel_.endifOf(w.pc);
        }
        break;
      }
      case Opcode::kEndif: {
        GPUPERF_ASSERT(!w.frames.empty() &&
                           w.frames.back().kind == Frame::kIf,
                       "ENDIF without IF frame");
        w.mask = w.frames.back().savedMask;
        w.frames.pop_back();
        ++w.pc;
        break;
      }
      case Opcode::kLoop: {
        Frame frame;
        frame.kind = Frame::kLoop;
        frame.savedMask = w.mask;
        frame.elseMask = 0;
        frame.headerPc = w.pc;
        w.frames.push_back(frame);
        ++w.pc;
        break;
      }
      case Opcode::kBrk: {
        noteArith(w, inst);
        GPUPERF_ASSERT(!w.frames.empty() &&
                           w.frames.back().kind == Frame::kLoop,
                       "BRK without LOOP frame");
        const uint32_t leaving = evalGuard(w, inst);
        w.mask &= ~leaving;
        if (w.mask == 0) {
            w.mask = w.frames.back().savedMask;
            w.frames.pop_back();
            w.pc = kernel_.endloopOf(w.pc) + 1;
        } else {
            ++w.pc;
        }
        break;
      }
      case Opcode::kEndloop: {
        noteArith(w, inst);
        GPUPERF_ASSERT(!w.frames.empty() &&
                           w.frames.back().kind == Frame::kLoop,
                       "ENDLOOP without LOOP frame");
        w.pc = w.frames.back().headerPc + 1;
        break;
      }
      case Opcode::kBar: {
        // Barriers are legal inside uniform control flow (e.g. a loop
        // every lane iterates); only actual divergence is fatal.
        if (w.mask != w.blockMask)
            fatal("kernel '%s': barrier inside divergent control flow "
                  "(warp %d, pc %d)", kernel_.name().c_str(), w.warpId,
                  w.pc);
        noteArith(w, inst);
        w.atBarrier = true;
        ++w.pc;
        break;
      }
      case Opcode::kExit: {
        if (!w.frames.empty())
            fatal("kernel '%s': EXIT with open control structures",
                  kernel_.name().c_str());
        w.done = true;
        break;
      }
      case Opcode::kLds:
      case Opcode::kSts:
        if (vec_)
            executeSharedAccessVec(w, inst);
        else
            executeSharedAccess(w, inst);
        ++w.pc;
        break;
      case Opcode::kLdg:
      case Opcode::kStg:
      case Opcode::kLdt:
        if (vec_)
            executeGlobalAccessVec(w, inst);
        else
            executeGlobalAccess(w, inst);
        ++w.pc;
        break;
      case Opcode::kSetpF:
      case Opcode::kSetpI: {
        noteArith(w, inst);
        if (vec_)
            executeSetpVec(w, inst);
        else
            executeSetp(w, inst);
        ++w.pc;
        break;
      }
      default:
        noteArith(w, inst);
        if (vec_)
            executeAluVec(w, inst);
        else
            executeAlu(w, inst);
        ++w.pc;
        break;
    }
}

void
BlockExecutor::runWarpToBarrier(WarpState &w)
{
    w.atBarrier = false;
    while (!w.done && !w.atBarrier) {
        if (++w.opsExecuted > options_.maxWarpOps)
            fatal("kernel '%s': warp %d exceeded %llu operations — "
                  "runaway loop?", kernel_.name().c_str(), w.warpId,
                  static_cast<unsigned long long>(options_.maxWarpOps));
        execute(w, kernel_.instructions()[w.pc]);
    }
}

void
BlockExecutor::run(int block_id, std::vector<StageStats> &stages,
                   std::vector<double> &active,
                   std::vector<WarpTrace> *warp_traces)
{
    blockId_ = block_id;
    stages_ = &stages;
    stageIdx_ = 0;
    if (stages.empty())
        stages.emplace_back();
    shared_.clear();

    const int warps = (cfg_.blockDim + spec_.warpSize - 1) / spec_.warpSize;
    // Trace growth is amortized by reserving what the previous block's
    // warps actually used (blocks of one launch are near-uniform), or,
    // for the first block, a static-op-count based guess.
    const size_t reserve_ops =
        lastTraceOps_ ? lastTraceOps_ : staticTraceOps_ * 4 + 16;
    const size_t reserve_tex =
        lastTexLines_ ? lastTexLines_ : staticTexOps_ * 8;
    std::vector<WarpState> ws(warps);
    for (int i = 0; i < warps; ++i) {
        WarpState &w = ws[i];
        w.warpId = i;
        w.regs.assign(static_cast<size_t>(kernel_.numRegisters()) *
                          spec_.warpSize, 0);
        w.preds.assign(static_cast<size_t>(kernel_.numPredicates()) *
                           spec_.warpSize, 0);
        w.trace.ops.reserve(reserve_ops);
        if (reserve_tex)
            w.trace.texLines.reserve(reserve_tex);
        uint32_t mask = 0;
        for (int lane = 0; lane < spec_.warpSize; ++lane) {
            if (i * spec_.warpSize + lane < cfg_.blockDim)
                mask |= 1u << lane;
        }
        w.blockMask = mask;
        w.mask = mask;
        if (mask == 0)
            w.done = true;
    }

    active.clear();
    bool all_done = false;
    while (!all_done) {
        // Run every warp to the next barrier (or completion).
        for (auto &w : ws) {
            w.stageBodyOps = 0;
            if (!w.done)
                runWarpToBarrier(w);
        }
        // Active-warp census for this stage.
        uint64_t max_ops = 0;
        for (const auto &w : ws)
            max_ops = std::max(max_ops, w.stageBodyOps);
        int active_warps = 0;
        for (const auto &w : ws) {
            if (max_ops > 0 && w.stageBodyOps * 2 >= max_ops)
                ++active_warps;
        }
        active.push_back(active_warps);

        // Synchronization integrity: warps must agree on barrier vs done.
        bool any_barrier = false;
        bool any_running = false;
        all_done = true;
        for (const auto &w : ws) {
            if (w.atBarrier && !w.done) {
                any_barrier = true;
                all_done = false;
            } else if (!w.done) {
                any_running = true;
            }
        }
        if (any_barrier && any_running)
            fatal("kernel '%s': warps disagree on barrier %d — some "
                  "finished without reaching it", kernel_.name().c_str(),
                  stageIdx_);
        if (!all_done) {
            ++stageIdx_;
            if (static_cast<size_t>(stageIdx_) >= stages.size())
                stages.emplace_back();
        }
    }

    for (const auto &w : ws) {
        lastTraceOps_ = std::max(lastTraceOps_, w.trace.ops.size());
        lastTexLines_ = std::max(lastTexLines_, w.trace.texLines.size());
    }

    if (warp_traces) {
        warp_traces->clear();
        warp_traces->reserve(ws.size());
        for (auto &w : ws)
            warp_traces->push_back(std::move(w.trace));
    }
}

} // namespace

FunctionalSimulator::FunctionalSimulator(const arch::GpuSpec &spec,
                                         ExecMode mode)
    : spec_(spec), mode_(mode), coalescer_(spec), banks_(spec)
{
    spec_.validate();
}

RunResult
FunctionalSimulator::run(const isa::Kernel &kernel, const LaunchConfig &cfg,
                         GlobalMemory &gmem, const RunOptions &options)
{
    if (cfg.gridDim <= 0 || cfg.blockDim <= 0)
        fatal("launch of kernel '%s' has empty grid (%d x %d)",
              kernel.name().c_str(), cfg.gridDim, cfg.blockDim);
    if (cfg.blockDim > spec_.maxThreadsPerBlock)
        fatal("kernel '%s': block of %d threads exceeds the %d-thread "
              "block ceiling", kernel.name().c_str(), cfg.blockDim,
              spec_.maxThreadsPerBlock);
    if (kernel.sharedBytes() > spec_.sharedMemPerSm)
        fatal("kernel '%s': %d B shared memory exceeds the %d B SM "
              "capacity", kernel.name().c_str(), kernel.sharedBytes(),
              spec_.sharedMemPerSm);

    const int sample = options.homogeneous
                           ? std::min(options.sampleBlocks, cfg.gridDim)
                           : cfg.gridDim;
    GPUPERF_ASSERT(sample > 0, "need at least one sampled block");

    RunResult result;
    DynamicStats &stats = result.stats;
    stats.gridDim = cfg.gridDim;
    stats.blockDim = cfg.blockDim;
    stats.warpsPerBlock =
        (cfg.blockDim + spec_.warpSize - 1) / spec_.warpSize;
    stats.sampledBlocks = sample;

    LaunchTrace &trace = result.trace;
    if (options.collectTrace) {
        trace.blockDim = cfg.blockDim;
        trace.warpsPerBlock = stats.warpsPerBlock;
        trace.registersPerThread = kernel.numRegisters();
        trace.sharedBytesPerBlock = kernel.sharedBytes();
        trace.blocks.resize(cfg.gridDim);
    }

    BlockExecutor executor(spec_, kernel, cfg, gmem, coalescer_, banks_,
                           options, mode_);

    std::vector<std::vector<int>> sampled_block_traces(sample);
    std::vector<double> active_sums;   // per stage, summed over blocks
    size_t num_stages = 0;

    // Debug builds validate the homogeneity claim instead of trusting
    // it: every sampled block (and one probe block beyond the sample,
    // see below) must reproduce block 0's per-stage statistics and
    // per-warp trace hashes exactly, or replicating block 0's behaviour
    // across the grid would fabricate statistics.
    std::vector<StageStats> first_stages;
    std::vector<double> first_active;
    std::vector<uint64_t> first_hashes;
    const bool validate_homogeneous =
#ifndef NDEBUG
        options.homogeneous;
#else
        false;
#endif
    auto check_homogeneous = [&](int block_id,
                                 const std::vector<StageStats> &stages_b,
                                 const std::vector<double> &active_b,
                                 const std::vector<WarpTrace> *traces_b) {
        if (stages_b != first_stages || active_b != first_active)
            fatal("kernel '%s': homogeneous sampling is invalid — "
                  "block %d's per-stage statistics differ from "
                  "block 0's", kernel.name().c_str(), block_id);
        if (!traces_b)
            return;
        GPUPERF_ASSERT(traces_b->size() == first_hashes.size(),
                       "warp count changed between blocks");
        for (size_t w = 0; w < traces_b->size(); ++w) {
            if ((*traces_b)[w].hash() != first_hashes[w])
                fatal("kernel '%s': homogeneous sampling is invalid — "
                      "block %d warp %zu's trace differs from "
                      "block 0's", kernel.name().c_str(), block_id, w);
        }
    };

    for (int b = 0; b < sample; ++b) {
        std::vector<StageStats> block_stages;
        std::vector<double> block_active;
        std::vector<WarpTrace> warp_traces;
        const bool want_traces =
            options.collectTrace || (validate_homogeneous && sample > 1);
        executor.run(b, block_stages, block_active,
                     want_traces ? &warp_traces : nullptr);

        if (b == 0) {
            num_stages = block_stages.size();
            stats.stages.resize(num_stages);
            active_sums.assign(num_stages, 0.0);
            if (validate_homogeneous &&
                (sample > 1 || sample < cfg.gridDim)) {
                first_stages = block_stages;
                first_active = block_active;
                first_hashes.reserve(warp_traces.size());
                for (const WarpTrace &wt : warp_traces)
                    first_hashes.push_back(wt.hash());
            }
        } else if (block_stages.size() != num_stages) {
            fatal("kernel '%s': block %d executed %zu stages, block 0 "
                  "executed %zu — grids must have a uniform barrier "
                  "structure", kernel.name().c_str(), b,
                  block_stages.size(), num_stages);
        } else if (validate_homogeneous) {
            check_homogeneous(b, block_stages, block_active,
                              want_traces ? &warp_traces : nullptr);
        }
        for (size_t s = 0; s < num_stages; ++s) {
            stats.stages[s].accumulate(block_stages[s]);
            active_sums[s] += block_active[s];
        }

        if (options.collectTrace) {
            for (auto &wt : warp_traces) {
                sampled_block_traces[b].push_back(
                    trace.intern(std::move(wt)));
            }
        }
    }

    // Probe one block outside the sample (the grid's last): a kernel
    // whose behaviour depends on the block id beyond the sampled
    // prefix — the exact bug homogeneous sampling would silently bake
    // into the statistics — is caught here. The probe's statistics are
    // discarded; its stores land in gmem, which homogeneous mode
    // already documents as not producing non-sampled blocks' memory.
    if (validate_homogeneous && sample < cfg.gridDim) {
        std::vector<StageStats> probe_stages;
        std::vector<double> probe_active;
        std::vector<WarpTrace> probe_traces;
        executor.run(cfg.gridDim - 1, probe_stages, probe_active,
                     &probe_traces);
        if (probe_stages.size() != num_stages)
            fatal("kernel '%s': homogeneous sampling is invalid — "
                  "block %d executed %zu stages, block 0 executed %zu",
                  kernel.name().c_str(), cfg.gridDim - 1,
                  probe_stages.size(), num_stages);
        check_homogeneous(cfg.gridDim - 1, probe_stages, probe_active,
                          first_hashes.empty() ? nullptr : &probe_traces);
    }

    // Scale sampled statistics up to the full grid.
    if (sample != cfg.gridDim) {
        const double scale =
            static_cast<double>(cfg.gridDim) / static_cast<double>(sample);
        for (auto &s : stats.stages) {
            for (auto &c : s.typeCounts)
                c = static_cast<uint64_t>(c * scale + 0.5);
            s.madCount = static_cast<uint64_t>(s.madCount * scale + 0.5);
            s.totalWarpInstrs =
                static_cast<uint64_t>(s.totalWarpInstrs * scale + 0.5);
            s.sharedInstrs =
                static_cast<uint64_t>(s.sharedInstrs * scale + 0.5);
            s.globalInstrs =
                static_cast<uint64_t>(s.globalInstrs * scale + 0.5);
            s.sharedTransactions = static_cast<uint64_t>(
                s.sharedTransactions * scale + 0.5);
            s.sharedTransactionsIdeal = static_cast<uint64_t>(
                s.sharedTransactionsIdeal * scale + 0.5);
            s.sharedBytes =
                static_cast<uint64_t>(s.sharedBytes * scale + 0.5);
            s.globalTransactions = static_cast<uint64_t>(
                s.globalTransactions * scale + 0.5);
            s.globalBytes =
                static_cast<uint64_t>(s.globalBytes * scale + 0.5);
            s.globalRequestBytes = static_cast<uint64_t>(
                s.globalRequestBytes * scale + 0.5);
            for (auto &[size, count] : s.globalXactBySize)
                count = static_cast<uint64_t>(count * scale + 0.5);
        }
    }
    for (size_t s = 0; s < num_stages; ++s)
        stats.stages[s].activeWarpsPerBlock = active_sums[s] / sample;
    // A kernel ending right after a barrier leaves an empty stage.
    if (stats.stages.size() > 1 &&
        stats.stages.back().totalWarpInstrs == 0) {
        stats.stages.pop_back();
    }
    stats.barriersPerBlock = static_cast<int>(stats.stages.size()) - 1;

    if (options.collectTrace) {
        for (int b = 0; b < cfg.gridDim; ++b)
            trace.blocks[b].warpTraceIdx = sampled_block_traces[b % sample];
    }
    return result;
}

} // namespace funcsim
} // namespace gpuperf
