/**
 * @file
 * Compact per-warp replay traces.
 *
 * The timing simulator does not interpret instructions; it replays
 * these traces, which carry exactly the information timing needs:
 * which unit an operation occupies, its register dependencies, how many
 * serialized shared-memory passes it takes, and which global-memory
 * transactions it issues. Identical traces (common in regular kernels,
 * where every warp executes the same instruction stream) are stored
 * once and shared.
 */

#ifndef GPUPERF_FUNCSIM_TRACE_H
#define GPUPERF_FUNCSIM_TRACE_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "isa/opcodes.h"

namespace gpuperf {
namespace funcsim {

/** One warp-level operation in a replay trace. */
struct TraceOp
{
    isa::UnitKind unit = isa::UnitKind::kNone;
    /** Serialized shared-memory passes for the whole warp (LDS/STS). */
    uint8_t conflict = 1;
    /**
     * For arithmetic units: shared-memory passes additionally consumed
     * by a shared operand (MAD with smem source); 0 for pure ALU ops.
     */
    uint8_t sharedPasses = 0;
    /** Destination register + 1; 0 means none. */
    uint16_t dst = 0;
    /** Source registers + 1; 0 means none. */
    uint16_t src[3] = {0, 0, 0};
    /** Global transactions issued by this operation. */
    uint16_t numXacts = 0;
    /** Total bytes of those transactions. */
    uint32_t xactBytes = 0;
    /** For kTexLoad: first index into WarpTrace::texLines. */
    uint32_t texIdx = 0;

    bool operator==(const TraceOp &other) const;
};

/** The full replayable history of one warp. */
struct WarpTrace
{
    std::vector<TraceOp> ops;
    /** 32 B-line ids requested by texture loads, indexed via texIdx. */
    std::vector<uint32_t> texLines;

    uint64_t hash() const;
    bool operator==(const WarpTrace &other) const;
};

/** Per-block list of warp-trace pool indices. */
struct BlockTrace
{
    std::vector<int> warpTraceIdx;
};

/** The trace of an entire kernel launch. */
struct LaunchTrace
{
    /** Unique warp traces. */
    std::vector<WarpTrace> pool;
    /** One entry per block in the grid. */
    std::vector<BlockTrace> blocks;

    int blockDim = 0;
    int warpsPerBlock = 0;
    int registersPerThread = 0;
    int sharedBytesPerBlock = 0;

    /** Deduplicating insert; returns the pool index. */
    int intern(WarpTrace &&trace);

    /** Total warp-level operations across all blocks. */
    uint64_t totalOps() const;

  private:
    std::unordered_map<uint64_t, std::vector<int>> index_;
};

} // namespace funcsim
} // namespace gpuperf

#endif // GPUPERF_FUNCSIM_TRACE_H
