/**
 * @file
 * The SIMT functional simulator (the role Barra plays in the paper).
 *
 * Executes a kernel warp by warp in lockstep with divergence masks,
 * producing (a) functionally correct memory contents, (b) dynamic
 * program statistics split at synchronization barriers, and (c) compact
 * per-warp replay traces for the timing simulator.
 *
 * Execution model: within a block, warps run one at a time up to the
 * next barrier (or completion); the block's warps are synchronized
 * there and the next stage begins. This is faithful for any kernel
 * that follows the CUDA contract of no un-synchronized cross-warp
 * communication within a stage.
 */

#ifndef GPUPERF_FUNCSIM_INTERPRETER_H
#define GPUPERF_FUNCSIM_INTERPRETER_H

#include <cstdint>

#include "arch/gpu_spec.h"
#include "funcsim/memory.h"
#include "funcsim/stats.h"
#include "funcsim/trace.h"
#include "isa/kernel.h"
#include "memxact/bank_conflicts.h"
#include "memxact/coalescing.h"

namespace gpuperf {
namespace funcsim {

/**
 * Hard upper bound on lanes per warp. Active masks are uint32_t
 * bitfields, the SoA scratch buffers are fixed arrays of this size,
 * and GpuSpec::warpSize is validated against it at simulator
 * construction — this constant is the single place the limit lives.
 */
constexpr int kMaxWarpLanes = 32;

/**
 * Which execution core interprets warp instructions.
 *
 * Both modes produce bit-identical results — same memory contents,
 * same StageStats, same trace hashes, same ProfileKey (the mode is
 * deliberately NOT part of any cache key). kScalarReference is the
 * original lane-at-a-time interpreter, retained as the oracle for the
 * bit-identity tests and as the baseline `bench_funcsim` measures the
 * vectorized core against — the same pattern as the timing module's
 * legacy-scan vs event-driven engines.
 */
enum class ExecMode
{
    /** Data-oriented core: one dispatch runs all lanes over SoA rows. */
    kVectorized,
    /** Original per-lane interpreter, kept as the comparison oracle. */
    kScalarReference,
};

/** Grid/block shape of a kernel launch (1-D, as GT200-era kernels
 *  commonly flattened their indices anyway). */
struct LaunchConfig
{
    int gridDim = 1;
    int blockDim = 32;
};

/** Options controlling a functional run. */
struct RunOptions
{
    /** Collect per-warp replay traces for the timing simulator. */
    bool collectTrace = false;
    /**
     * Execute only the first @c sampleBlocks blocks and replicate
     * their statistics/traces across the grid. Only valid when every
     * block executes an identical instruction stream (same counts,
     * conflicts and coalescing behaviour); memory results of
     * non-sampled blocks are then *not* produced.
     */
    bool homogeneous = false;
    int sampleBlocks = 1;
    /** Abort if a single warp executes more operations than this. */
    uint64_t maxWarpOps = 1ull << 32;
};

/** Result of a functional run. */
struct RunResult
{
    DynamicStats stats;
    LaunchTrace trace;
};

/** The functional simulator. */
class FunctionalSimulator
{
  public:
    explicit FunctionalSimulator(const arch::GpuSpec &spec,
                                 ExecMode mode = ExecMode::kVectorized);

    /**
     * Execute @p kernel over @p cfg against @p gmem.
     *
     * @param kernel  validated kernel
     * @param cfg     launch shape
     * @param gmem    device memory (mutated by stores)
     * @param options run options
     */
    RunResult run(const isa::Kernel &kernel, const LaunchConfig &cfg,
                  GlobalMemory &gmem, const RunOptions &options = {});

    const arch::GpuSpec &spec() const { return spec_; }
    ExecMode mode() const { return mode_; }

  private:
    arch::GpuSpec spec_;
    ExecMode mode_;
    memxact::CoalescingSimulator coalescer_;
    memxact::BankConflictAnalyzer banks_;
};

} // namespace funcsim
} // namespace gpuperf

#endif // GPUPERF_FUNCSIM_INTERPRETER_H
