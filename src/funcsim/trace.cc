#include "funcsim/trace.h"

#include "common/fnv.h"

namespace gpuperf {
namespace funcsim {

bool
TraceOp::operator==(const TraceOp &other) const
{
    return unit == other.unit && conflict == other.conflict &&
           sharedPasses == other.sharedPasses &&
           dst == other.dst && src[0] == other.src[0] &&
           src[1] == other.src[1] && src[2] == other.src[2] &&
           numXacts == other.numXacts && xactBytes == other.xactBytes &&
           texIdx == other.texIdx;
}

uint64_t
WarpTrace::hash() const
{
    uint64_t h = kFnvOffsetBasis;
    for (const TraceOp &op : ops) {
        // Hash the semantically meaningful fields explicitly; the
        // struct may contain padding bytes.
        h = fnv1a64(&op.unit, sizeof(op.unit), h);
        h = fnv1a64(&op.conflict, sizeof(op.conflict), h);
        h = fnv1a64(&op.sharedPasses, sizeof(op.sharedPasses), h);
        h = fnv1a64(&op.dst, sizeof(op.dst), h);
        h = fnv1a64(op.src, sizeof(op.src), h);
        h = fnv1a64(&op.numXacts, sizeof(op.numXacts), h);
        h = fnv1a64(&op.xactBytes, sizeof(op.xactBytes), h);
        h = fnv1a64(&op.texIdx, sizeof(op.texIdx), h);
    }
    if (!texLines.empty()) {
        h = fnv1a64(texLines.data(), texLines.size() * sizeof(uint32_t),
                    h);
    }
    return h;
}

bool
WarpTrace::operator==(const WarpTrace &other) const
{
    return ops == other.ops && texLines == other.texLines;
}

int
LaunchTrace::intern(WarpTrace &&trace)
{
    const uint64_t h = trace.hash();
    auto it = index_.find(h);
    if (it != index_.end()) {
        for (int idx : it->second) {
            if (pool[idx] == trace)
                return idx;
        }
    }
    const int idx = static_cast<int>(pool.size());
    pool.push_back(std::move(trace));
    index_[h].push_back(idx);
    return idx;
}

uint64_t
LaunchTrace::totalOps() const
{
    uint64_t total = 0;
    for (const BlockTrace &b : blocks) {
        for (int idx : b.warpTraceIdx)
            total += pool[idx].ops.size();
    }
    return total;
}

} // namespace funcsim
} // namespace gpuperf
