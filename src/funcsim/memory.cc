#include "funcsim/memory.h"

#include "common/fnv.h"

namespace gpuperf {
namespace funcsim {

GlobalMemory::GlobalMemory(size_t capacity)
    : data_(capacity, 0), next_(256)
{
    if (capacity < 512)
        fatal("global memory capacity %zu too small", capacity);
}

uint64_t
GlobalMemory::alloc(size_t bytes, size_t align)
{
    GPUPERF_ASSERT(align > 0 && (align & (align - 1)) == 0,
                   "alignment must be a power of two");
    size_t base = (next_ + align - 1) & ~(align - 1);
    if (base + bytes > data_.size())
        fatal("device out of memory: want %zu B at %zu, capacity %zu",
              bytes, base, data_.size());
    next_ = base + bytes;
    return base;
}

uint64_t
GlobalMemory::contentHash() const
{
    // Word-folded FNV-1a variant (common/fnv.h constants): folding 8
    // bytes per multiply keeps hashing even a multi-MB image well
    // below the cost of simulating it. Not byte-compatible with
    // fnv1a64() on purpose — this digest is only ever compared to
    // itself (profile keys). The shape is part of the identity:
    // capacity bounds which stray accesses fault, so two images with
    // equal contents but different capacities must not alias.
    uint64_t h = fnv1a64Value(next_, kFnvOffsetBasis);
    h = fnv1a64Value(data_.size(), h);
    size_t i = 0;
    for (; i + 8 <= next_; i += 8) {
        uint64_t word;
        std::memcpy(&word, data_.data() + i, 8);
        h ^= word;
        h *= kFnvPrime;
    }
    for (; i < next_; ++i) {
        h ^= data_[i];
        h *= kFnvPrime;
    }
    return h;
}

void
GlobalMemory::check(uint64_t addr, size_t bytes) const
{
    if (addr < 256 || addr + bytes > data_.size())
        panic("global memory access at %llu (+%zu) out of bounds "
              "(capacity %zu)", static_cast<unsigned long long>(addr),
              bytes, data_.size());
}

uint32_t
GlobalMemory::load32(uint64_t addr) const
{
    check(addr, 4);
    uint32_t v;
    std::memcpy(&v, data_.data() + addr, 4);
    return v;
}

void
GlobalMemory::store32(uint64_t addr, uint32_t value)
{
    check(addr, 4);
    std::memcpy(data_.data() + addr, &value, 4);
}

float
GlobalMemory::loadF32(uint64_t addr) const
{
    uint32_t v = load32(addr);
    float f;
    std::memcpy(&f, &v, 4);
    return f;
}

void
GlobalMemory::storeF32(uint64_t addr, float value)
{
    uint32_t v;
    std::memcpy(&v, &value, 4);
    store32(addr, v);
}

float *
GlobalMemory::f32(uint64_t addr)
{
    check(addr, 4);
    return reinterpret_cast<float *>(data_.data() + addr);
}

const float *
GlobalMemory::f32(uint64_t addr) const
{
    check(addr, 4);
    return reinterpret_cast<const float *>(data_.data() + addr);
}

uint32_t *
GlobalMemory::u32(uint64_t addr)
{
    check(addr, 4);
    return reinterpret_cast<uint32_t *>(data_.data() + addr);
}

const uint32_t *
GlobalMemory::u32(uint64_t addr) const
{
    check(addr, 4);
    return reinterpret_cast<const uint32_t *>(data_.data() + addr);
}

SharedMemory::SharedMemory(int bytes)
    : data_(static_cast<size_t>(bytes), 0)
{
}

void
SharedMemory::check(uint64_t addr) const
{
    if (addr + 4 > data_.size())
        panic("shared memory access at %llu out of bounds (size %zu)",
              static_cast<unsigned long long>(addr), data_.size());
}

uint32_t
SharedMemory::load32(uint64_t addr) const
{
    check(addr);
    uint32_t v;
    std::memcpy(&v, data_.data() + addr, 4);
    return v;
}

void
SharedMemory::store32(uint64_t addr, uint32_t value)
{
    check(addr);
    std::memcpy(data_.data() + addr, &value, 4);
}

void
SharedMemory::clear()
{
    std::fill(data_.begin(), data_.end(), 0);
}

} // namespace funcsim
} // namespace gpuperf
