/**
 * @file
 * Decuda-style textual disassembly of kernels.
 */

#ifndef GPUPERF_ISA_DISASM_H
#define GPUPERF_ISA_DISASM_H

#include <ostream>
#include <string>

#include "isa/kernel.h"

namespace gpuperf {
namespace isa {

/** Render one instruction as text. */
std::string disassemble(const Instruction &inst);

/** Render the whole kernel, one instruction per line with indices. */
void disassemble(const Kernel &kernel, std::ostream &os);

} // namespace isa
} // namespace gpuperf

#endif // GPUPERF_ISA_DISASM_H
