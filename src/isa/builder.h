/**
 * @file
 * Fluent construction of kernels in the native-style ISA.
 *
 * The builder plays the role the paper's CUBIN generator plays for real
 * hardware: it lets us write binary-level instruction sequences exactly
 * as we intend, with no compiler interference.
 */

#ifndef GPUPERF_ISA_BUILDER_H
#define GPUPERF_ISA_BUILDER_H

#include <string>
#include <vector>

#include "isa/kernel.h"

namespace gpuperf {
namespace isa {

/**
 * Builds a Kernel instruction by instruction.
 *
 * Registers and predicates are allocated through reg()/pred(); the
 * final counts become the kernel's resource usage, which in turn
 * drives the occupancy calculation — so kernels should allocate
 * registers the way a real compiler would (live values in registers).
 */
class KernelBuilder
{
  public:
    explicit KernelBuilder(std::string name);

    /** Allocate a fresh general-purpose register. */
    Reg reg();

    /** Allocate @p n consecutive registers, returning the first. */
    Reg regRange(int n);

    /** Allocate a fresh predicate register. */
    Pred pred();

    // --- Moves and special registers -----------------------------------
    KernelBuilder &mov(Reg dst, Reg src);
    KernelBuilder &movImm(Reg dst, int32_t imm);
    KernelBuilder &movImmF(Reg dst, float imm);
    KernelBuilder &s2r(Reg dst, SpecialReg sreg);
    KernelBuilder &sel(Reg dst, Pred p, Reg if_true, Reg if_false);

    // --- Integer ALU ------------------------------------------------------
    KernelBuilder &iadd(Reg dst, Reg a, Reg b);
    KernelBuilder &iaddImm(Reg dst, Reg a, int32_t imm);
    KernelBuilder &isub(Reg dst, Reg a, Reg b);
    KernelBuilder &imul(Reg dst, Reg a, Reg b);
    KernelBuilder &imulImm(Reg dst, Reg a, int32_t imm);
    KernelBuilder &imad(Reg dst, Reg a, Reg b, Reg c);
    KernelBuilder &shlImm(Reg dst, Reg a, int32_t sh);
    KernelBuilder &shrImm(Reg dst, Reg a, int32_t sh);
    KernelBuilder &andImm(Reg dst, Reg a, int32_t mask);
    KernelBuilder &orr(Reg dst, Reg a, Reg b);
    KernelBuilder &xorr(Reg dst, Reg a, Reg b);
    KernelBuilder &imin(Reg dst, Reg a, Reg b);
    KernelBuilder &imax(Reg dst, Reg a, Reg b);

    // --- Floating point -----------------------------------------------------
    KernelBuilder &fadd(Reg dst, Reg a, Reg b);
    KernelBuilder &fmul(Reg dst, Reg a, Reg b);     ///< type I multiply
    KernelBuilder &fmulFpu(Reg dst, Reg a, Reg b);  ///< type II multiply
    KernelBuilder &fmad(Reg dst, Reg a, Reg b, Reg c);
    /** dst = a * shared[addr + offset] + c (shared-operand MAD). */
    KernelBuilder &fmadShared(Reg dst, Reg a, Reg addr, int32_t offset,
                              Reg c);
    KernelBuilder &rcp(Reg dst, Reg a);
    KernelBuilder &fsin(Reg dst, Reg a);
    KernelBuilder &fcos(Reg dst, Reg a);
    KernelBuilder &lg2(Reg dst, Reg a);
    KernelBuilder &ex2(Reg dst, Reg a);
    KernelBuilder &rsqrt(Reg dst, Reg a);
    KernelBuilder &f2i(Reg dst, Reg a);
    KernelBuilder &i2f(Reg dst, Reg a);

    // --- Double precision (register pairs dst/dst+1 etc.) ----------------
    KernelBuilder &dadd(Reg dst, Reg a, Reg b);
    KernelBuilder &dmul(Reg dst, Reg a, Reg b);
    KernelBuilder &dfma(Reg dst, Reg a, Reg b, Reg c);

    // --- Predicates ----------------------------------------------------------
    KernelBuilder &setpI(Pred p, CmpOp cmp, Reg a, Reg b);
    KernelBuilder &setpIImm(Pred p, CmpOp cmp, Reg a, int32_t imm);
    KernelBuilder &setpF(Pred p, CmpOp cmp, Reg a, Reg b);

    // --- Memory ---------------------------------------------------------------
    KernelBuilder &lds(Reg dst, Reg addr, int32_t offset = 0);
    KernelBuilder &sts(Reg addr, Reg value, int32_t offset = 0);
    KernelBuilder &ldg(Reg dst, Reg addr, int32_t offset = 0);
    KernelBuilder &stg(Reg addr, Reg value, int32_t offset = 0);
    KernelBuilder &ldt(Reg dst, Reg addr, int32_t offset = 0);

    // --- Control --------------------------------------------------------------
    KernelBuilder &beginIf(Pred p, bool negate = false);
    KernelBuilder &beginElse();
    KernelBuilder &endIf();
    KernelBuilder &beginLoop();
    /** Lanes where @p p (optionally negated) holds leave the loop. */
    KernelBuilder &brk(Pred p, bool negate = false);
    KernelBuilder &endLoop();
    KernelBuilder &bar();

    /** Number of instructions emitted so far. */
    int size() const { return static_cast<int>(instrs_.size()); }

    int numRegisters() const { return numRegs_; }

    /**
     * Finalize.
     * @param shared_bytes statically allocated shared memory per block.
     */
    Kernel build(int shared_bytes = 0);

  private:
    Instruction &emit(Opcode op);

    std::string name_;
    std::vector<Instruction> instrs_;
    int numRegs_ = 0;
    int numPreds_ = 0;
};

} // namespace isa
} // namespace gpuperf

#endif // GPUPERF_ISA_BUILDER_H
