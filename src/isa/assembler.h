/**
 * @file
 * Textual assembler for the native-style ISA.
 *
 * Accepts exactly the disassembler's output format (round-trip safe),
 * plus directives:
 *
 *   .kernel <name>      kernel name
 *   .shared <bytes>     static shared memory per block
 *
 * Line prefixes of the form "  12:" (instruction indices) and "//"
 * comments are ignored, so a disassembly listing can be edited and
 * re-assembled directly — the same workflow the paper uses with
 * Decuda/Cudasm on real CUBINs.
 */

#ifndef GPUPERF_ISA_ASSEMBLER_H
#define GPUPERF_ISA_ASSEMBLER_H

#include <string>

#include "isa/kernel.h"

namespace gpuperf {
namespace isa {

/**
 * Assemble @p source into a kernel.
 *
 * Register and predicate counts are inferred from the highest indices
 * used. Syntax errors call fatal() with the offending line.
 */
Kernel assemble(const std::string &source);

/** Render a kernel as assemblable text (disassembly + directives). */
std::string toAssembly(const Kernel &kernel);

} // namespace isa
} // namespace gpuperf

#endif // GPUPERF_ISA_ASSEMBLER_H
