#include "isa/builder.h"

#include <cstring>

#include "common/logging.h"

namespace gpuperf {
namespace isa {

KernelBuilder::KernelBuilder(std::string name)
    : name_(std::move(name))
{
}

Reg
KernelBuilder::reg()
{
    GPUPERF_ASSERT(numRegs_ < 16384, "register allocation runaway");
    return static_cast<Reg>(numRegs_++);
}

Reg
KernelBuilder::regRange(int n)
{
    GPUPERF_ASSERT(n > 0, "regRange needs a positive count");
    Reg first = static_cast<Reg>(numRegs_);
    numRegs_ += n;
    return first;
}

Pred
KernelBuilder::pred()
{
    GPUPERF_ASSERT(numPreds_ < 8, "GT200 exposes at most 8 predicates");
    return static_cast<Pred>(numPreds_++);
}

Instruction &
KernelBuilder::emit(Opcode op)
{
    Instruction inst;
    inst.op = op;
    instrs_.push_back(inst);
    return instrs_.back();
}

KernelBuilder &
KernelBuilder::mov(Reg dst, Reg src)
{
    auto &i = emit(Opcode::kMov);
    i.dst = dst;
    i.src[0] = src;
    return *this;
}

KernelBuilder &
KernelBuilder::movImm(Reg dst, int32_t imm)
{
    auto &i = emit(Opcode::kMovImm);
    i.dst = dst;
    i.imm = imm;
    i.useImm = true;
    return *this;
}

KernelBuilder &
KernelBuilder::movImmF(Reg dst, float imm)
{
    int32_t bits;
    std::memcpy(&bits, &imm, sizeof(bits));
    return movImm(dst, bits);
}

KernelBuilder &
KernelBuilder::s2r(Reg dst, SpecialReg sreg)
{
    auto &i = emit(Opcode::kS2r);
    i.dst = dst;
    i.sreg = sreg;
    return *this;
}

KernelBuilder &
KernelBuilder::sel(Reg dst, Pred p, Reg if_true, Reg if_false)
{
    auto &i = emit(Opcode::kSel);
    i.dst = dst;
    i.pred = p;
    i.src[0] = if_true;
    i.src[1] = if_false;
    return *this;
}

namespace {

Instruction &
binop(Instruction &i, Reg dst, Reg a, Reg b)
{
    i.dst = dst;
    i.src[0] = a;
    i.src[1] = b;
    return i;
}

Instruction &
binopImm(Instruction &i, Reg dst, Reg a, int32_t imm)
{
    i.dst = dst;
    i.src[0] = a;
    i.imm = imm;
    i.useImm = true;
    return i;
}

} // namespace

KernelBuilder &
KernelBuilder::iadd(Reg dst, Reg a, Reg b)
{
    binop(emit(Opcode::kIadd), dst, a, b);
    return *this;
}

KernelBuilder &
KernelBuilder::iaddImm(Reg dst, Reg a, int32_t imm)
{
    binopImm(emit(Opcode::kIadd), dst, a, imm);
    return *this;
}

KernelBuilder &
KernelBuilder::isub(Reg dst, Reg a, Reg b)
{
    binop(emit(Opcode::kIsub), dst, a, b);
    return *this;
}

KernelBuilder &
KernelBuilder::imul(Reg dst, Reg a, Reg b)
{
    binop(emit(Opcode::kImul), dst, a, b);
    return *this;
}

KernelBuilder &
KernelBuilder::imulImm(Reg dst, Reg a, int32_t imm)
{
    binopImm(emit(Opcode::kImul), dst, a, imm);
    return *this;
}

KernelBuilder &
KernelBuilder::imad(Reg dst, Reg a, Reg b, Reg c)
{
    auto &i = emit(Opcode::kImad);
    binop(i, dst, a, b);
    i.src[2] = c;
    return *this;
}

KernelBuilder &
KernelBuilder::shlImm(Reg dst, Reg a, int32_t sh)
{
    binopImm(emit(Opcode::kShl), dst, a, sh);
    return *this;
}

KernelBuilder &
KernelBuilder::shrImm(Reg dst, Reg a, int32_t sh)
{
    binopImm(emit(Opcode::kShr), dst, a, sh);
    return *this;
}

KernelBuilder &
KernelBuilder::andImm(Reg dst, Reg a, int32_t mask)
{
    binopImm(emit(Opcode::kAnd), dst, a, mask);
    return *this;
}

KernelBuilder &
KernelBuilder::orr(Reg dst, Reg a, Reg b)
{
    binop(emit(Opcode::kOr), dst, a, b);
    return *this;
}

KernelBuilder &
KernelBuilder::xorr(Reg dst, Reg a, Reg b)
{
    binop(emit(Opcode::kXor), dst, a, b);
    return *this;
}

KernelBuilder &
KernelBuilder::imin(Reg dst, Reg a, Reg b)
{
    binop(emit(Opcode::kImin), dst, a, b);
    return *this;
}

KernelBuilder &
KernelBuilder::imax(Reg dst, Reg a, Reg b)
{
    binop(emit(Opcode::kImax), dst, a, b);
    return *this;
}

KernelBuilder &
KernelBuilder::fadd(Reg dst, Reg a, Reg b)
{
    binop(emit(Opcode::kFadd), dst, a, b);
    return *this;
}

KernelBuilder &
KernelBuilder::fmul(Reg dst, Reg a, Reg b)
{
    binop(emit(Opcode::kFmul), dst, a, b);
    return *this;
}

KernelBuilder &
KernelBuilder::fmulFpu(Reg dst, Reg a, Reg b)
{
    binop(emit(Opcode::kFmul2), dst, a, b);
    return *this;
}

KernelBuilder &
KernelBuilder::fmad(Reg dst, Reg a, Reg b, Reg c)
{
    auto &i = emit(Opcode::kFmad);
    binop(i, dst, a, b);
    i.src[2] = c;
    return *this;
}

KernelBuilder &
KernelBuilder::fmadShared(Reg dst, Reg a, Reg addr, int32_t offset, Reg c)
{
    auto &i = emit(Opcode::kFmadS);
    i.dst = dst;
    i.src[0] = a;
    i.src[1] = addr;
    i.src[2] = c;
    i.imm = offset;
    return *this;
}

namespace {

Instruction &
unop(Instruction &i, Reg dst, Reg a)
{
    i.dst = dst;
    i.src[0] = a;
    return i;
}

} // namespace

KernelBuilder &
KernelBuilder::rcp(Reg dst, Reg a)
{
    unop(emit(Opcode::kRcp), dst, a);
    return *this;
}

KernelBuilder &
KernelBuilder::fsin(Reg dst, Reg a)
{
    unop(emit(Opcode::kSin), dst, a);
    return *this;
}

KernelBuilder &
KernelBuilder::fcos(Reg dst, Reg a)
{
    unop(emit(Opcode::kCos), dst, a);
    return *this;
}

KernelBuilder &
KernelBuilder::lg2(Reg dst, Reg a)
{
    unop(emit(Opcode::kLg2), dst, a);
    return *this;
}

KernelBuilder &
KernelBuilder::ex2(Reg dst, Reg a)
{
    unop(emit(Opcode::kEx2), dst, a);
    return *this;
}

KernelBuilder &
KernelBuilder::rsqrt(Reg dst, Reg a)
{
    unop(emit(Opcode::kRsqrt), dst, a);
    return *this;
}

KernelBuilder &
KernelBuilder::f2i(Reg dst, Reg a)
{
    unop(emit(Opcode::kF2i), dst, a);
    return *this;
}

KernelBuilder &
KernelBuilder::i2f(Reg dst, Reg a)
{
    unop(emit(Opcode::kI2f), dst, a);
    return *this;
}

KernelBuilder &
KernelBuilder::dadd(Reg dst, Reg a, Reg b)
{
    binop(emit(Opcode::kDadd), dst, a, b);
    return *this;
}

KernelBuilder &
KernelBuilder::dmul(Reg dst, Reg a, Reg b)
{
    binop(emit(Opcode::kDmul), dst, a, b);
    return *this;
}

KernelBuilder &
KernelBuilder::dfma(Reg dst, Reg a, Reg b, Reg c)
{
    auto &i = emit(Opcode::kDfma);
    binop(i, dst, a, b);
    i.src[2] = c;
    return *this;
}

KernelBuilder &
KernelBuilder::setpI(Pred p, CmpOp cmp, Reg a, Reg b)
{
    auto &i = emit(Opcode::kSetpI);
    i.pred = p;
    i.cmp = cmp;
    i.src[0] = a;
    i.src[1] = b;
    return *this;
}

KernelBuilder &
KernelBuilder::setpIImm(Pred p, CmpOp cmp, Reg a, int32_t imm)
{
    auto &i = emit(Opcode::kSetpI);
    i.pred = p;
    i.cmp = cmp;
    i.src[0] = a;
    i.imm = imm;
    i.useImm = true;
    return *this;
}

KernelBuilder &
KernelBuilder::setpF(Pred p, CmpOp cmp, Reg a, Reg b)
{
    auto &i = emit(Opcode::kSetpF);
    i.pred = p;
    i.cmp = cmp;
    i.src[0] = a;
    i.src[1] = b;
    return *this;
}

KernelBuilder &
KernelBuilder::lds(Reg dst, Reg addr, int32_t offset)
{
    auto &i = emit(Opcode::kLds);
    i.dst = dst;
    i.src[0] = addr;
    i.imm = offset;
    return *this;
}

KernelBuilder &
KernelBuilder::sts(Reg addr, Reg value, int32_t offset)
{
    auto &i = emit(Opcode::kSts);
    i.src[0] = addr;
    i.src[1] = value;
    i.imm = offset;
    return *this;
}

KernelBuilder &
KernelBuilder::ldg(Reg dst, Reg addr, int32_t offset)
{
    auto &i = emit(Opcode::kLdg);
    i.dst = dst;
    i.src[0] = addr;
    i.imm = offset;
    return *this;
}

KernelBuilder &
KernelBuilder::stg(Reg addr, Reg value, int32_t offset)
{
    auto &i = emit(Opcode::kStg);
    i.src[0] = addr;
    i.src[1] = value;
    i.imm = offset;
    return *this;
}

KernelBuilder &
KernelBuilder::ldt(Reg dst, Reg addr, int32_t offset)
{
    auto &i = emit(Opcode::kLdt);
    i.dst = dst;
    i.src[0] = addr;
    i.imm = offset;
    return *this;
}

KernelBuilder &
KernelBuilder::beginIf(Pred p, bool negate)
{
    auto &i = emit(Opcode::kIf);
    i.pred = p;
    i.predNegate = negate;
    return *this;
}

KernelBuilder &
KernelBuilder::beginElse()
{
    emit(Opcode::kElse);
    return *this;
}

KernelBuilder &
KernelBuilder::endIf()
{
    emit(Opcode::kEndif);
    return *this;
}

KernelBuilder &
KernelBuilder::beginLoop()
{
    emit(Opcode::kLoop);
    return *this;
}

KernelBuilder &
KernelBuilder::brk(Pred p, bool negate)
{
    auto &i = emit(Opcode::kBrk);
    i.pred = p;
    i.predNegate = negate;
    return *this;
}

KernelBuilder &
KernelBuilder::endLoop()
{
    emit(Opcode::kEndloop);
    return *this;
}

KernelBuilder &
KernelBuilder::bar()
{
    emit(Opcode::kBar);
    return *this;
}

Kernel
KernelBuilder::build(int shared_bytes)
{
    return Kernel(name_, instrs_, std::max(numRegs_, 1),
                  std::max(numPreds_, 1), shared_bytes);
}

} // namespace isa
} // namespace gpuperf
