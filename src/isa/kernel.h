/**
 * @file
 * A validated, executable kernel: instruction list plus resource usage
 * and the control-structure match tables used by the interpreter.
 */

#ifndef GPUPERF_ISA_KERNEL_H
#define GPUPERF_ISA_KERNEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "isa/instruction.h"

namespace gpuperf {
namespace isa {

/**
 * An immutable kernel. Build one with KernelBuilder; construction
 * validates structural well-formedness (matched IF/ENDIF, LOOP/ENDLOOP,
 * BRK placement, barriers outside divergent regions cannot be checked
 * statically and are enforced at run time).
 */
class Kernel
{
  public:
    /**
     * @param name          kernel name for reports
     * @param instrs        instruction sequence (EXIT appended if absent)
     * @param num_regs      general-purpose registers per thread
     * @param num_preds     predicate registers per thread
     * @param shared_bytes  statically allocated shared memory per block
     */
    Kernel(std::string name, std::vector<Instruction> instrs, int num_regs,
           int num_preds, int shared_bytes);

    const std::string &name() const { return name_; }
    const std::vector<Instruction> &instructions() const { return instrs_; }
    int numRegisters() const { return numRegs_; }
    int numPredicates() const { return numPreds_; }
    int sharedBytes() const { return sharedBytes_; }

    /** Index of the ELSE matching the IF at @p pc, or -1 if none. */
    int elseOf(int pc) const { return elseOf_[pc]; }
    /** Index of the ENDIF matching the IF/ELSE at @p pc. */
    int endifOf(int pc) const { return endifOf_[pc]; }
    /** Index of the ENDLOOP matching the LOOP/BRK at @p pc. */
    int endloopOf(int pc) const { return endloopOf_[pc]; }
    /** Index of the LOOP matching the ENDLOOP at @p pc. */
    int loopOf(int pc) const { return loopOf_[pc]; }

    /** Count static occurrences of one opcode (for tests/reports). */
    int countStatic(Opcode op) const;

    /**
     * Content hash of the executable program: every instruction field
     * plus the resource usage, but NOT the display name — two kernels
     * that differ only in name behave identically under simulation and
     * may share cached profiles. Computed once at construction.
     */
    uint64_t hash() const { return hash_; }

  private:
    void validateAndIndex();
    void computeHash();

    std::string name_;
    std::vector<Instruction> instrs_;
    int numRegs_;
    int numPreds_;
    int sharedBytes_;
    uint64_t hash_ = 0;

    std::vector<int> elseOf_;
    std::vector<int> endifOf_;
    std::vector<int> endloopOf_;
    std::vector<int> loopOf_;
};

} // namespace isa
} // namespace gpuperf

#endif // GPUPERF_ISA_KERNEL_H
