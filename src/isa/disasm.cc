#include "isa/disasm.h"

#include <iomanip>
#include <sstream>

namespace gpuperf {
namespace isa {

namespace {

std::string
regName(Reg r)
{
    if (r == kNoReg)
        return "-";
    return "$r" + std::to_string(r);
}

} // namespace

std::string
disassemble(const Instruction &inst)
{
    std::ostringstream os;
    const Opcode op = inst.op;

    // Guard predicate prefix for IF/BRK.
    if ((op == Opcode::kIf || op == Opcode::kBrk) && inst.pred != kNoPred) {
        os << "@" << (inst.predNegate ? "!" : "") << "$p"
           << int(inst.pred) << " ";
    }

    os << opcodeName(op);

    if (op == Opcode::kSetpF || op == Opcode::kSetpI) {
        os << "." << cmpOpName(inst.cmp) << " $p" << int(inst.pred) << ", "
           << regName(inst.src[0]) << ", ";
        if (inst.useImm)
            os << inst.imm;
        else
            os << regName(inst.src[1]);
        return os.str();
    }
    if (op == Opcode::kS2r) {
        os << " " << regName(inst.dst) << ", %" << specialRegName(inst.sreg);
        return os.str();
    }
    if (op == Opcode::kMovImm) {
        os << " " << regName(inst.dst) << ", " << inst.imm;
        return os.str();
    }
    if (op == Opcode::kSel) {
        os << " " << regName(inst.dst) << ", $p" << int(inst.pred) << ", "
           << regName(inst.src[0]) << ", " << regName(inst.src[1]);
        return os.str();
    }
    if (op == Opcode::kFmadS) {
        os << " " << regName(inst.dst) << ", " << regName(inst.src[0])
           << ", smem[" << regName(inst.src[1]);
        if (inst.imm)
            os << "+" << inst.imm;
        os << "], " << regName(inst.src[2]);
        return os.str();
    }
    if (op == Opcode::kLds || op == Opcode::kLdg || op == Opcode::kLdt) {
        const char *space = (op == Opcode::kLds) ? "smem" : "gmem";
        os << " " << regName(inst.dst) << ", " << space << "["
           << regName(inst.src[0]);
        if (inst.imm)
            os << "+" << inst.imm;
        os << "]";
        return os.str();
    }
    if (op == Opcode::kSts || op == Opcode::kStg) {
        const char *space = (op == Opcode::kSts) ? "smem" : "gmem";
        os << " " << space << "[" << regName(inst.src[0]);
        if (inst.imm)
            os << "+" << inst.imm;
        os << "], " << regName(inst.src[1]);
        return os.str();
    }
    if (isControl(op))
        return os.str();

    // Generic ALU rendering.
    os << " " << regName(inst.dst);
    bool first = true;
    for (int s = 0; s < 3; ++s) {
        if (s == 1 && inst.useImm) {
            os << ", " << inst.imm;
            first = false;
            continue;
        }
        if (inst.src[s] == kNoReg)
            continue;
        os << ", " << regName(inst.src[s]);
        first = false;
    }
    (void)first;
    return os.str();
}

void
disassemble(const Kernel &kernel, std::ostream &os)
{
    os << "// kernel " << kernel.name() << ": "
       << kernel.numRegisters() << " regs, " << kernel.sharedBytes()
       << " B smem, " << kernel.instructions().size() << " instrs\n";
    int indent = 0;
    for (size_t pc = 0; pc < kernel.instructions().size(); ++pc) {
        const Instruction &inst = kernel.instructions()[pc];
        if (inst.op == Opcode::kElse || inst.op == Opcode::kEndif ||
            inst.op == Opcode::kEndloop) {
            indent = std::max(0, indent - 1);
        }
        os << std::setw(4) << pc << ":  " << std::string(indent * 2, ' ')
           << disassemble(inst) << "\n";
        if (inst.op == Opcode::kIf || inst.op == Opcode::kElse ||
            inst.op == Opcode::kLoop) {
            ++indent;
        }
    }
}

} // namespace isa
} // namespace gpuperf
