/**
 * @file
 * Native-style GPU instruction set.
 *
 * The paper models performance at the level of the GPU's *native*
 * instruction set (decoded with Decuda), because PTX-level counts miss
 * the bookkeeping instructions — control, address calculation, memory
 * operations — that dominate low-computational-density kernels. This
 * ISA mirrors the GT200 native instruction mix at that granularity:
 * scalar 32-bit register machine, separate predicate registers,
 * half-warp shared/global memory accesses, and warp-level structured
 * divergence.
 */

#ifndef GPUPERF_ISA_OPCODES_H
#define GPUPERF_ISA_OPCODES_H

#include <cstdint>

#include "arch/instr_class.h"

namespace gpuperf {
namespace isa {

/** Instruction opcodes. */
enum class Opcode : uint8_t
{
    // Type II single-precision / integer arithmetic (8 FPUs).
    kFadd,      ///< dst = src0 + src1
    kFmul2,     ///< dst = src0 * src1 scheduled on the FPUs (type II)
    kFmad,      ///< dst = src0 * src1 + src2 (counts as the paper's MAD)
    /**
     * dst = src0 * shared[src1 + imm] + src2. GT200 MAD instructions
     * can take one operand directly from shared memory; this is how
     * dense matrix multiply keeps its shared traffic equal to its MAD
     * count (paper Figure 4a). Counts as one type II instruction *and*
     * one shared-memory access.
     */
    kFmadS,
    kIadd,      ///< dst = src0 + src1 (or imm)
    kIsub,      ///< dst = src0 - src1 (or imm)
    kImul,      ///< dst = src0 * src1 (or imm), low 32 bits
    kImad,      ///< dst = src0 * src1 + src2
    kShl,       ///< dst = src0 << (src1 or imm)
    kShr,       ///< dst = src0 >> (src1 or imm), logical
    kAnd,       ///< dst = src0 & (src1 or imm)
    kOr,        ///< dst = src0 | (src1 or imm)
    kXor,       ///< dst = src0 ^ (src1 or imm)
    kImin,      ///< dst = min(src0, src1) signed
    kImax,      ///< dst = max(src0, src1) signed
    kMov,       ///< dst = src0
    kMovImm,    ///< dst = imm
    kS2r,       ///< dst = special register (tid, ctaid, ...)
    kSel,       ///< dst = pred ? src0 : src1
    kF2i,       ///< dst = (int)bitcast<float>(src0)
    kI2f,       ///< dst = bitcast<uint>((float)(int)src0)

    // Type I multiply (8 FPUs + 2 SFU multipliers).
    kFmul,      ///< dst = src0 * src1 on the wide multiply path (type I)

    // Type III transcendental (4 SFU lanes).
    kRcp,       ///< dst = 1 / src0
    kSin,       ///< dst = sin(src0)
    kCos,       ///< dst = cos(src0)
    kLg2,       ///< dst = log2(src0)
    kEx2,       ///< dst = 2^src0
    kRsqrt,     ///< dst = 1 / sqrt(src0)

    // Type IV double precision (1 DP unit). Functionally these operate
    // on pairs of 32-bit registers (dst, dst+1).
    kDadd,      ///< double add
    kDmul,      ///< double mul
    kDfma,      ///< double fused multiply-add

    // Predicate set.
    kSetpF,     ///< pred dst = cmp(bitcast<float> src0, src1)
    kSetpI,     ///< pred dst = cmp((int) src0, src1 or imm)

    // Memory. Addresses are byte addresses in 32-bit registers;
    // 'imm' holds a byte offset added to the address register.
    kLds,       ///< dst = shared[src0 + imm]
    kSts,       ///< shared[src0 + imm] = src1
    kLdg,       ///< dst = global[src0 + imm]
    kStg,       ///< global[src0 + imm] = src1
    kLdt,       ///< dst = global[src0 + imm] via the texture cache path

    // Structured control flow. IF/ELSE/ENDIF and LOOP/BRK/ENDLOOP are
    // interpreted with a divergence mask stack; they correspond to the
    // predicated-branch + SSY/JOIN reconvergence idiom of GT200 code.
    kIf,        ///< enter then-branch for lanes where pred holds
    kElse,      ///< switch to else-branch lanes
    kEndif,     ///< reconverge
    kLoop,      ///< loop head marker
    kBrk,       ///< lanes where pred holds leave the loop
    kEndloop,   ///< branch back to the loop head
    kBar,       ///< block-wide synchronization barrier
    kExit,      ///< end of kernel (implicit at the end)

    kNumOpcodes,
};

/** Comparison operators for SETP. */
enum class CmpOp : uint8_t { kLt, kLe, kGt, kGe, kEq, kNe };

/** Special (read-only) registers exposed through S2R. */
enum class SpecialReg : uint8_t
{
    kTid,       ///< thread index within the block (1-D)
    kNtid,      ///< threads per block
    kCtaid,     ///< block index within the grid (1-D)
    kNctaid,    ///< blocks in the grid
    kLaneId,    ///< lane within the warp
    kWarpId,    ///< warp index within the block
};

/** Functional unit a trace operation occupies in the timing simulator. */
enum class UnitKind : uint8_t
{
    kArithI,      ///< type I arithmetic pipeline slot
    kArithII,     ///< type II
    kArithIII,    ///< type III
    kArithIV,     ///< type IV
    kSharedMem,   ///< banked shared-memory pipeline
    kGlobalLoad,  ///< global load (LSU + cluster memory port)
    kGlobalStore, ///< global store
    kTexLoad,     ///< global load via texture cache
    kBarrier,     ///< block barrier
    kNone,        ///< free marker (ENDIF, LOOP head)
};

/** Mnemonic for disassembly. */
const char *opcodeName(Opcode op);

/** Mnemonic for a comparison operator. */
const char *cmpOpName(CmpOp op);

/** Mnemonic for a special register. */
const char *specialRegName(SpecialReg sreg);

/** True for LDS/STS/LDG/STG/LDT. */
bool isMemory(Opcode op);

/** True for LDS/STS. */
bool isSharedMem(Opcode op);

/** True for LDG/STG/LDT. */
bool isGlobalMem(Opcode op);

/** True for control-flow opcodes (IF..EXIT). */
bool isControl(Opcode op);

/** True if the opcode writes a general-purpose destination register. */
bool writesRegister(Opcode op);

/** True if the opcode writes a predicate register. */
bool writesPredicate(Opcode op);

/**
 * Instruction-pipeline type (Table 1) for arithmetic and control
 * opcodes. Control instructions that materialize as real branches
 * count as type II. Calling this for memory opcodes is a programming
 * error (they are modeled by the shared/global components instead).
 */
arch::InstrType instrTypeOf(Opcode op);

/**
 * Number of dynamic native instructions the opcode represents. Pure
 * reconvergence markers (ENDIF, LOOP) cost zero: on GT200 they are
 * encoded as .join bits / labels, not separate instructions.
 */
int dynamicCost(Opcode op);

} // namespace isa
} // namespace gpuperf

#endif // GPUPERF_ISA_OPCODES_H
