/**
 * @file
 * A single decoded instruction of the native-style ISA.
 */

#ifndef GPUPERF_ISA_INSTRUCTION_H
#define GPUPERF_ISA_INSTRUCTION_H

#include <cstdint>

#include "isa/opcodes.h"

namespace gpuperf {
namespace isa {

/** General-purpose register index. */
using Reg = uint16_t;

/** Predicate register index. */
using Pred = uint8_t;

/** Sentinel meaning "no predicate". */
constexpr Pred kNoPred = 0xff;

/** Sentinel register operand meaning "unused". */
constexpr Reg kNoReg = 0xffff;

/**
 * One instruction. Operand roles by opcode family:
 *
 * - ALU: dst, src[0..2]; if useImm, src[1] is replaced by imm.
 * - MOVI: dst, imm.
 * - S2R: dst, sreg.
 * - SEL: dst = pred ? src[0] : src[1].
 * - SETP: predDst, src[0], src[1] (or imm), cmp.
 * - LDS/LDG/LDT: dst, address = src[0] + imm.
 * - STS/STG: address = src[0] + imm, value = src[1].
 * - IF/BRK: guard predicate 'pred' (negated when predNegate).
 * - Everything else: no operands.
 */
struct Instruction
{
    Opcode op = Opcode::kExit;
    Reg dst = kNoReg;
    Reg src[3] = {kNoReg, kNoReg, kNoReg};
    int32_t imm = 0;
    bool useImm = false;

    Pred pred = kNoPred;       ///< guard (IF/BRK) or SETP destination
    bool predNegate = false;   ///< negate the guard predicate
    CmpOp cmp = CmpOp::kLt;
    SpecialReg sreg = SpecialReg::kTid;
};

} // namespace isa
} // namespace gpuperf

#endif // GPUPERF_ISA_INSTRUCTION_H
