#include "isa/assembler.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "common/logging.h"
#include "isa/disasm.h"

namespace gpuperf {
namespace isa {

namespace {

/** Tokenizer state over one instruction line. */
struct Line
{
    std::string text;
    size_t pos = 0;
    int number = 0;

    [[noreturn]] void
    fail(const std::string &why) const
    {
        fatal("assembler: line %d: %s: '%s'", number, why.c_str(),
              text.c_str());
    }

    void
    skipSpace()
    {
        while (pos < text.size() &&
               std::isspace(static_cast<unsigned char>(text[pos])))
            ++pos;
    }

    bool
    done()
    {
        skipSpace();
        return pos >= text.size();
    }

    bool
    consume(char c)
    {
        skipSpace();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    void
    expect(char c)
    {
        if (!consume(c))
            fail(std::string("expected '") + c + "'");
    }

    /** Word of [A-Za-z0-9_.%@!$] characters. */
    std::string
    word()
    {
        skipSpace();
        size_t start = pos;
        while (pos < text.size() &&
               (std::isalnum(static_cast<unsigned char>(text[pos])) ||
                std::string("_.%").find(text[pos]) != std::string::npos))
            ++pos;
        return text.substr(start, pos - start);
    }

    int32_t
    integer()
    {
        skipSpace();
        size_t start = pos;
        if (pos < text.size() && (text[pos] == '-' || text[pos] == '+'))
            ++pos;
        while (pos < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[pos])))
            ++pos;
        if (pos == start)
            fail("expected integer");
        return static_cast<int32_t>(
            std::stoll(text.substr(start, pos - start)));
    }
};

/** Parsing context tracking resource usage. */
struct Context
{
    int maxReg = -1;
    int maxPred = -1;
    int sharedBytes = 0;
    std::string name = "asm_kernel";
};

Reg
parseReg(Line &line, Context &ctx)
{
    line.skipSpace();
    if (!line.consume('$'))
        line.fail("expected '$r' register");
    if (line.pos >= line.text.size() || line.text[line.pos] != 'r')
        line.fail("expected '$r' register");
    ++line.pos;
    const int32_t n = line.integer();
    if (n < 0 || n > 0xfffe)
        line.fail("register index out of range");
    ctx.maxReg = std::max(ctx.maxReg, static_cast<int>(n));
    return static_cast<Reg>(n);
}

Pred
parsePred(Line &line, Context &ctx)
{
    line.skipSpace();
    if (!line.consume('$'))
        line.fail("expected '$p' predicate");
    if (line.pos >= line.text.size() || line.text[line.pos] != 'p')
        line.fail("expected '$p' predicate");
    ++line.pos;
    const int32_t n = line.integer();
    if (n < 0 || n > 7)
        line.fail("predicate index out of range");
    ctx.maxPred = std::max(ctx.maxPred, static_cast<int>(n));
    return static_cast<Pred>(n);
}

/** Either a register or an immediate second operand. */
void
parseRegOrImm(Line &line, Context &ctx, Instruction &inst)
{
    line.skipSpace();
    if (line.pos < line.text.size() && line.text[line.pos] == '$') {
        inst.src[1] = parseReg(line, ctx);
    } else {
        inst.imm = line.integer();
        inst.useImm = true;
    }
}

/** "smem[$rN+off]" or "gmem[$rN+off]". */
void
parseAddress(Line &line, Context &ctx, const char *space,
             Instruction &inst)
{
    const std::string w = line.word();
    if (w != space)
        line.fail(std::string("expected ") + space + " address");
    line.expect('[');
    inst.src[0] = parseReg(line, ctx);
    line.skipSpace();
    if (line.pos < line.text.size() && line.text[line.pos] == '+') {
        ++line.pos;
        inst.imm = line.integer();
    }
    line.expect(']');
}

CmpOp
parseCmpSuffix(Line &line, const std::string &mnemonic)
{
    // mnemonic is like "setp.i.lt".
    const size_t dot = mnemonic.rfind('.');
    const std::string cmp = mnemonic.substr(dot + 1);
    static const std::map<std::string, CmpOp> kOps = {
        {"lt", CmpOp::kLt}, {"le", CmpOp::kLe}, {"gt", CmpOp::kGt},
        {"ge", CmpOp::kGe}, {"eq", CmpOp::kEq}, {"ne", CmpOp::kNe},
    };
    auto it = kOps.find(cmp);
    if (it == kOps.end())
        line.fail("unknown comparison '" + cmp + "'");
    return it->second;
}

SpecialReg
parseSpecial(Line &line)
{
    line.skipSpace();
    const std::string w = line.word();
    static const std::map<std::string, SpecialReg> kRegs = {
        {"%tid", SpecialReg::kTid},       {"%ntid", SpecialReg::kNtid},
        {"%ctaid", SpecialReg::kCtaid},   {"%nctaid", SpecialReg::kNctaid},
        {"%laneid", SpecialReg::kLaneId}, {"%warpid", SpecialReg::kWarpId},
    };
    auto it = kRegs.find(w);
    if (it == kRegs.end())
        line.fail("unknown special register '" + w + "'");
    return it->second;
}

/** Three-address ALU opcodes keyed by mnemonic. */
const std::map<std::string, Opcode> &
binaryOps()
{
    static const std::map<std::string, Opcode> kOps = {
        {"fadd", Opcode::kFadd}, {"fmul.fpu", Opcode::kFmul2},
        {"iadd", Opcode::kIadd}, {"isub", Opcode::kIsub},
        {"imul", Opcode::kImul}, {"shl", Opcode::kShl},
        {"shr", Opcode::kShr},   {"and", Opcode::kAnd},
        {"or", Opcode::kOr},     {"xor", Opcode::kXor},
        {"imin", Opcode::kImin}, {"imax", Opcode::kImax},
        {"mul", Opcode::kFmul},  {"dadd", Opcode::kDadd},
        {"dmul", Opcode::kDmul},
    };
    return kOps;
}

const std::map<std::string, Opcode> &
unaryOps()
{
    static const std::map<std::string, Opcode> kOps = {
        {"mov", Opcode::kMov}, {"rcp", Opcode::kRcp},
        {"sin", Opcode::kSin}, {"cos", Opcode::kCos},
        {"lg2", Opcode::kLg2}, {"ex2", Opcode::kEx2},
        {"rsqrt", Opcode::kRsqrt}, {"f2i", Opcode::kF2i},
        {"i2f", Opcode::kI2f},
    };
    return kOps;
}

const std::map<std::string, Opcode> &
ternaryOps()
{
    static const std::map<std::string, Opcode> kOps = {
        {"mad", Opcode::kFmad},
        {"imad", Opcode::kImad},
        {"dfma", Opcode::kDfma},
    };
    return kOps;
}

const std::map<std::string, Opcode> &
bareOps()
{
    static const std::map<std::string, Opcode> kOps = {
        {"else", Opcode::kElse},       {"endif", Opcode::kEndif},
        {"loop", Opcode::kLoop},       {"endloop", Opcode::kEndloop},
        {"bar.sync", Opcode::kBar},    {"exit", Opcode::kExit},
    };
    return kOps;
}

bool
parseInstruction(Line &line, Context &ctx, Instruction &inst)
{
    line.skipSpace();

    // Guard predicate: @$pN or @!$pN (IF/BRK).
    if (line.pos < line.text.size() && line.text[line.pos] == '@') {
        ++line.pos;
        if (line.pos < line.text.size() && line.text[line.pos] == '!') {
            inst.predNegate = true;
            ++line.pos;
        }
        inst.pred = parsePred(line, ctx);
        const std::string mnem = line.word();
        if (mnem == "if") {
            inst.op = Opcode::kIf;
        } else if (mnem == "brk") {
            inst.op = Opcode::kBrk;
        } else {
            line.fail("only if/brk take a guard predicate");
        }
        return true;
    }

    const std::string mnem = line.word();
    if (mnem.empty())
        return false;

    if (auto it = bareOps().find(mnem); it != bareOps().end()) {
        inst.op = it->second;
        return true;
    }
    if (mnem == "movi") {
        inst.op = Opcode::kMovImm;
        inst.dst = parseReg(line, ctx);
        line.expect(',');
        inst.imm = line.integer();
        inst.useImm = true;
        return true;
    }
    if (mnem == "s2r") {
        inst.op = Opcode::kS2r;
        inst.dst = parseReg(line, ctx);
        line.expect(',');
        inst.sreg = parseSpecial(line);
        return true;
    }
    if (mnem == "sel") {
        inst.op = Opcode::kSel;
        inst.dst = parseReg(line, ctx);
        line.expect(',');
        inst.pred = parsePred(line, ctx);
        line.expect(',');
        inst.src[0] = parseReg(line, ctx);
        line.expect(',');
        inst.src[1] = parseReg(line, ctx);
        return true;
    }
    if (mnem.rfind("setp.i.", 0) == 0 || mnem.rfind("setp.f.", 0) == 0) {
        inst.op = mnem[5] == 'i' ? Opcode::kSetpI : Opcode::kSetpF;
        inst.cmp = parseCmpSuffix(line, mnem);
        inst.pred = parsePred(line, ctx);
        line.expect(',');
        inst.src[0] = parseReg(line, ctx);
        line.expect(',');
        parseRegOrImm(line, ctx, inst);
        return true;
    }
    if (mnem == "mad.s") {
        inst.op = Opcode::kFmadS;
        inst.dst = parseReg(line, ctx);
        line.expect(',');
        inst.src[0] = parseReg(line, ctx);
        line.expect(',');
        Instruction addr;
        parseAddress(line, ctx, "smem", addr);
        inst.src[1] = addr.src[0];
        inst.imm = addr.imm;
        line.expect(',');
        inst.src[2] = parseReg(line, ctx);
        return true;
    }
    if (mnem == "lds" || mnem == "ldg" || mnem == "ldt") {
        inst.op = mnem == "lds" ? Opcode::kLds
                  : mnem == "ldg" ? Opcode::kLdg : Opcode::kLdt;
        inst.dst = parseReg(line, ctx);
        line.expect(',');
        parseAddress(line, ctx, mnem == "lds" ? "smem" : "gmem", inst);
        return true;
    }
    if (mnem == "sts" || mnem == "stg") {
        inst.op = mnem == "sts" ? Opcode::kSts : Opcode::kStg;
        parseAddress(line, ctx, mnem == "sts" ? "smem" : "gmem", inst);
        line.expect(',');
        inst.src[1] = parseReg(line, ctx);
        return true;
    }
    if (auto it = ternaryOps().find(mnem); it != ternaryOps().end()) {
        inst.op = it->second;
        inst.dst = parseReg(line, ctx);
        line.expect(',');
        inst.src[0] = parseReg(line, ctx);
        line.expect(',');
        inst.src[1] = parseReg(line, ctx);
        line.expect(',');
        inst.src[2] = parseReg(line, ctx);
        return true;
    }
    if (auto it = binaryOps().find(mnem); it != binaryOps().end()) {
        inst.op = it->second;
        inst.dst = parseReg(line, ctx);
        line.expect(',');
        inst.src[0] = parseReg(line, ctx);
        line.expect(',');
        parseRegOrImm(line, ctx, inst);
        return true;
    }
    if (auto it = unaryOps().find(mnem); it != unaryOps().end()) {
        inst.op = it->second;
        inst.dst = parseReg(line, ctx);
        line.expect(',');
        inst.src[0] = parseReg(line, ctx);
        return true;
    }
    line.fail("unknown mnemonic '" + mnem + "'");
}

} // namespace

Kernel
assemble(const std::string &source)
{
    Context ctx;
    std::vector<Instruction> instrs;
    std::istringstream in(source);
    std::string raw;
    int number = 0;
    while (std::getline(in, raw)) {
        ++number;
        // Strip comments.
        const size_t comment = raw.find("//");
        if (comment != std::string::npos)
            raw = raw.substr(0, comment);
        // Strip a leading "NN:" instruction-index prefix.
        size_t i = 0;
        while (i < raw.size() &&
               std::isspace(static_cast<unsigned char>(raw[i])))
            ++i;
        size_t d = i;
        while (d < raw.size() &&
               std::isdigit(static_cast<unsigned char>(raw[d])))
            ++d;
        if (d > i && d < raw.size() && raw[d] == ':')
            raw = raw.substr(d + 1);

        Line line{raw, 0, number};
        if (line.done())
            continue;

        // Directives.
        if (line.text[line.pos] == '.') {
            const std::string directive = line.word();
            if (directive == ".kernel") {
                line.skipSpace();
                ctx.name = line.text.substr(line.pos);
                while (!ctx.name.empty() && std::isspace(
                           static_cast<unsigned char>(ctx.name.back())))
                    ctx.name.pop_back();
            } else if (directive == ".shared") {
                ctx.sharedBytes = line.integer();
            } else {
                line.fail("unknown directive '" + directive + "'");
            }
            continue;
        }

        Instruction inst;
        if (parseInstruction(line, ctx, inst)) {
            if (!line.done())
                line.fail("trailing characters");
            instrs.push_back(inst);
        }
    }
    return Kernel(ctx.name, std::move(instrs), ctx.maxReg + 1,
                  std::max(ctx.maxPred + 1, 1), ctx.sharedBytes);
}

std::string
toAssembly(const Kernel &kernel)
{
    std::ostringstream os;
    os << ".kernel " << kernel.name() << "\n";
    os << ".shared " << kernel.sharedBytes() << "\n";
    for (const Instruction &inst : kernel.instructions())
        os << disassemble(inst) << "\n";
    return os.str();
}

} // namespace isa
} // namespace gpuperf
