#include "isa/opcodes.h"

#include "common/logging.h"

namespace gpuperf {
namespace isa {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::kFadd: return "fadd";
      case Opcode::kFmul2: return "fmul.fpu";
      case Opcode::kFmad: return "mad";
      case Opcode::kFmadS: return "mad.s";
      case Opcode::kIadd: return "iadd";
      case Opcode::kIsub: return "isub";
      case Opcode::kImul: return "imul";
      case Opcode::kImad: return "imad";
      case Opcode::kShl: return "shl";
      case Opcode::kShr: return "shr";
      case Opcode::kAnd: return "and";
      case Opcode::kOr: return "or";
      case Opcode::kXor: return "xor";
      case Opcode::kImin: return "imin";
      case Opcode::kImax: return "imax";
      case Opcode::kMov: return "mov";
      case Opcode::kMovImm: return "movi";
      case Opcode::kS2r: return "s2r";
      case Opcode::kSel: return "sel";
      case Opcode::kF2i: return "f2i";
      case Opcode::kI2f: return "i2f";
      case Opcode::kFmul: return "mul";
      case Opcode::kRcp: return "rcp";
      case Opcode::kSin: return "sin";
      case Opcode::kCos: return "cos";
      case Opcode::kLg2: return "lg2";
      case Opcode::kEx2: return "ex2";
      case Opcode::kRsqrt: return "rsqrt";
      case Opcode::kDadd: return "dadd";
      case Opcode::kDmul: return "dmul";
      case Opcode::kDfma: return "dfma";
      case Opcode::kSetpF: return "setp.f";
      case Opcode::kSetpI: return "setp.i";
      case Opcode::kLds: return "lds";
      case Opcode::kSts: return "sts";
      case Opcode::kLdg: return "ldg";
      case Opcode::kStg: return "stg";
      case Opcode::kLdt: return "ldt";
      case Opcode::kIf: return "if";
      case Opcode::kElse: return "else";
      case Opcode::kEndif: return "endif";
      case Opcode::kLoop: return "loop";
      case Opcode::kBrk: return "brk";
      case Opcode::kEndloop: return "endloop";
      case Opcode::kBar: return "bar.sync";
      case Opcode::kExit: return "exit";
      case Opcode::kNumOpcodes: break;
    }
    panic("unknown opcode %d", static_cast<int>(op));
}

const char *
cmpOpName(CmpOp op)
{
    switch (op) {
      case CmpOp::kLt: return "lt";
      case CmpOp::kLe: return "le";
      case CmpOp::kGt: return "gt";
      case CmpOp::kGe: return "ge";
      case CmpOp::kEq: return "eq";
      case CmpOp::kNe: return "ne";
    }
    panic("unknown cmp op %d", static_cast<int>(op));
}

const char *
specialRegName(SpecialReg sreg)
{
    switch (sreg) {
      case SpecialReg::kTid: return "tid";
      case SpecialReg::kNtid: return "ntid";
      case SpecialReg::kCtaid: return "ctaid";
      case SpecialReg::kNctaid: return "nctaid";
      case SpecialReg::kLaneId: return "laneid";
      case SpecialReg::kWarpId: return "warpid";
    }
    panic("unknown special register %d", static_cast<int>(sreg));
}

bool
isMemory(Opcode op)
{
    switch (op) {
      case Opcode::kLds:
      case Opcode::kSts:
      case Opcode::kLdg:
      case Opcode::kStg:
      case Opcode::kLdt:
        return true;
      default:
        return false;
    }
}

bool
isSharedMem(Opcode op)
{
    return op == Opcode::kLds || op == Opcode::kSts;
}

bool
isGlobalMem(Opcode op)
{
    return op == Opcode::kLdg || op == Opcode::kStg || op == Opcode::kLdt;
}

bool
isControl(Opcode op)
{
    switch (op) {
      case Opcode::kIf:
      case Opcode::kElse:
      case Opcode::kEndif:
      case Opcode::kLoop:
      case Opcode::kBrk:
      case Opcode::kEndloop:
      case Opcode::kBar:
      case Opcode::kExit:
        return true;
      default:
        return false;
    }
}

bool
writesRegister(Opcode op)
{
    if (isControl(op))
        return false;
    switch (op) {
      case Opcode::kSts:
      case Opcode::kStg:
      case Opcode::kSetpF:
      case Opcode::kSetpI:
        return false;
      default:
        return true;
    }
}

bool
writesPredicate(Opcode op)
{
    return op == Opcode::kSetpF || op == Opcode::kSetpI;
}

arch::InstrType
instrTypeOf(Opcode op)
{
    GPUPERF_ASSERT(!isMemory(op), "memory opcodes have no pipeline type");
    switch (op) {
      case Opcode::kFmul:
        return arch::InstrType::TypeI;
      case Opcode::kRcp:
      case Opcode::kSin:
      case Opcode::kCos:
      case Opcode::kLg2:
      case Opcode::kEx2:
      case Opcode::kRsqrt:
        return arch::InstrType::TypeIII;
      case Opcode::kDadd:
      case Opcode::kDmul:
      case Opcode::kDfma:
        return arch::InstrType::TypeIV;
      default:
        // Everything else — integer/fp32 ALU, moves, predicates,
        // materialized branches, barriers — runs on the type II path.
        return arch::InstrType::TypeII;
    }
}

int
dynamicCost(Opcode op)
{
    switch (op) {
      case Opcode::kEndif:
      case Opcode::kLoop:
      case Opcode::kExit:
        return 0;
      default:
        return 1;
    }
}

} // namespace isa
} // namespace gpuperf
