#include "isa/kernel.h"

#include <algorithm>

#include "common/fnv.h"
#include "common/logging.h"

namespace gpuperf {
namespace isa {

Kernel::Kernel(std::string name, std::vector<Instruction> instrs,
               int num_regs, int num_preds, int shared_bytes)
    : name_(std::move(name)),
      instrs_(std::move(instrs)),
      numRegs_(num_regs),
      numPreds_(num_preds),
      sharedBytes_(shared_bytes)
{
    if (instrs_.empty() || instrs_.back().op != Opcode::kExit) {
        Instruction exit_instr;
        exit_instr.op = Opcode::kExit;
        instrs_.push_back(exit_instr);
    }
    validateAndIndex();
    computeHash();
}

void
Kernel::computeHash()
{
    // FNV-1a over the semantically meaningful fields, hashed
    // explicitly field by field: Instruction has padding bytes, and
    // hashing raw struct memory would make the hash (and with it every
    // profile-store key) depend on uninitialized padding.
    uint64_t h = kFnvOffsetBasis;
    auto mix = [&h](uint64_t v) { h = fnv1a64Value(v, h); };
    mix(static_cast<uint64_t>(numRegs_));
    mix(static_cast<uint64_t>(numPreds_));
    mix(static_cast<uint64_t>(sharedBytes_));
    mix(instrs_.size());
    for (const Instruction &inst : instrs_) {
        mix(static_cast<uint64_t>(inst.op));
        mix(inst.dst);
        mix(inst.src[0]);
        mix(inst.src[1]);
        mix(inst.src[2]);
        mix(static_cast<uint64_t>(static_cast<uint32_t>(inst.imm)));
        mix(inst.useImm ? 1 : 0);
        mix(inst.pred);
        mix(inst.predNegate ? 1 : 0);
        mix(static_cast<uint64_t>(inst.cmp));
        mix(static_cast<uint64_t>(inst.sreg));
    }
    hash_ = h;
}

void
Kernel::validateAndIndex()
{
    const int n = static_cast<int>(instrs_.size());
    elseOf_.assign(n, -1);
    endifOf_.assign(n, -1);
    endloopOf_.assign(n, -1);
    loopOf_.assign(n, -1);

    struct Frame
    {
        Opcode kind;   // kIf, kElse, or kLoop
        int pc;        // index of the opening IF/LOOP
        int elsePc;    // ELSE index within an IF frame, -1 if not seen
    };
    std::vector<Frame> stack;

    for (int pc = 0; pc < n; ++pc) {
        const Instruction &inst = instrs_[pc];
        switch (inst.op) {
          case Opcode::kIf:
            if (inst.pred == kNoPred)
                fatal("kernel '%s': IF at %d has no guard predicate",
                      name_.c_str(), pc);
            stack.push_back({Opcode::kIf, pc, -1});
            break;
          case Opcode::kElse:
            if (stack.empty() || stack.back().kind != Opcode::kIf)
                fatal("kernel '%s': ELSE at %d without open IF",
                      name_.c_str(), pc);
            if (stack.back().elsePc != -1)
                fatal("kernel '%s': duplicate ELSE at %d", name_.c_str(),
                      pc);
            stack.back().elsePc = pc;
            break;
          case Opcode::kEndif: {
            if (stack.empty() || stack.back().kind != Opcode::kIf)
                fatal("kernel '%s': ENDIF at %d without open IF",
                      name_.c_str(), pc);
            const Frame frame = stack.back();
            stack.pop_back();
            elseOf_[frame.pc] = frame.elsePc;
            endifOf_[frame.pc] = pc;
            if (frame.elsePc != -1)
                endifOf_[frame.elsePc] = pc;
            break;
          }
          case Opcode::kLoop:
            stack.push_back({Opcode::kLoop, pc, -1});
            break;
          case Opcode::kBrk: {
            if (inst.pred == kNoPred)
                fatal("kernel '%s': BRK at %d has no guard predicate",
                      name_.c_str(), pc);
            // BRK must be an immediate child of the innermost LOOP so
            // that lane removal needs no IF-mask unwinding.
            if (stack.empty() || stack.back().kind != Opcode::kLoop)
                fatal("kernel '%s': BRK at %d must be directly inside a "
                      "LOOP (not nested in IF)", name_.c_str(), pc);
            break;
          }
          case Opcode::kEndloop: {
            if (stack.empty() || stack.back().kind != Opcode::kLoop)
                fatal("kernel '%s': ENDLOOP at %d without open LOOP",
                      name_.c_str(), pc);
            const Frame frame = stack.back();
            stack.pop_back();
            endloopOf_[frame.pc] = pc;
            loopOf_[pc] = frame.pc;
            break;
          }
          case Opcode::kExit:
            if (pc != n - 1)
                fatal("kernel '%s': EXIT at %d is not the last instruction",
                      name_.c_str(), pc);
            break;
          default:
            break;
        }

        // Operand sanity.
        if (writesRegister(inst.op) &&
            (inst.dst == kNoReg || inst.dst >= numRegs_)) {
            fatal("kernel '%s': instruction %d (%s) writes register %d out "
                  "of range [0, %d)", name_.c_str(), pc,
                  opcodeName(inst.op), inst.dst, numRegs_);
        }
        if (writesPredicate(inst.op) && inst.pred >= numPreds_)
            fatal("kernel '%s': SETP at %d writes predicate %d out of "
                  "range [0, %d)", name_.c_str(), pc, inst.pred, numPreds_);
        for (Reg s : inst.src) {
            if (s != kNoReg && s >= numRegs_)
                fatal("kernel '%s': instruction %d (%s) reads register %d "
                      "out of range [0, %d)", name_.c_str(), pc,
                      opcodeName(inst.op), s, numRegs_);
        }
        // BRK inside its loop also needs a second lookup pass: map every
        // BRK to the ENDLOOP of the loop frame it sits in.
    }
    if (!stack.empty())
        fatal("kernel '%s': %zu unterminated control structures",
              name_.c_str(), stack.size());

    // Second pass: resolve BRK -> ENDLOOP now that loops are matched.
    std::vector<int> loop_stack;
    for (int pc = 0; pc < n; ++pc) {
        switch (instrs_[pc].op) {
          case Opcode::kLoop:
            loop_stack.push_back(pc);
            break;
          case Opcode::kEndloop:
            loop_stack.pop_back();
            break;
          case Opcode::kBrk:
            GPUPERF_ASSERT(!loop_stack.empty(), "BRK outside loop");
            endloopOf_[pc] = endloopOf_[loop_stack.back()];
            break;
          default:
            break;
        }
    }

    if (numRegs_ <= 0)
        fatal("kernel '%s': needs at least one register", name_.c_str());
}

int
Kernel::countStatic(Opcode op) const
{
    return static_cast<int>(std::count_if(
        instrs_.begin(), instrs_.end(),
        [op](const Instruction &i) { return i.op == op; }));
}

} // namespace isa
} // namespace gpuperf
