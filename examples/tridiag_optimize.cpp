/**
 * @file
 * Case study: optimizing the cyclic-reduction tridiagonal solver
 * (paper Section 5.2).
 *
 * The workflow the paper describes: the traditional model cannot
 * explain CR's performance; the quantitative model shows shared memory
 * is the bottleneck and that bank conflicts are the cause; it predicts
 * the benefit of removing them; applying the padding (CR-NBC) realizes
 * the predicted speedup — and the solution is verified against the
 * Thomas algorithm.
 */

#include <iostream>

#include "apps/tridiag/cyclic_reduction.h"
#include "common/table.h"
#include "model/roofline.h"
#include "model/session.h"
#include "model/whatif.h"

using namespace gpuperf;

int
main()
{
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    const int n = 512;
    const int systems = 512;
    model::AnalysisSession session(spec, "calibration_GTX_285.cache");

    std::cout << "Solving " << systems << " systems of " << n
              << " equations with cyclic reduction\n";

    // --- Step 1: the traditional model is stuck --------------------------
    funcsim::GlobalMemory g1(64 << 20);
    apps::TridiagProblem cr = apps::makeTridiagProblem(g1, n, systems,
                                                       false);
    funcsim::RunOptions run;
    run.homogeneous = true;
    model::Analysis a_cr = session.analyze(
        apps::makeCyclicReductionKernel(cr), cr.launch(), g1, run);

    model::RooflineAnalysis roof = model::analyzeRoofline(
        spec, cr.flops(), cr.globalBytes(), a_cr.measurement.seconds());
    printBanner(std::cout, "step 1: the traditional model");
    std::cout << Table::num(roof.sustainedFlops / 1e9, 1) << " GFLOPS ("
              << Table::num(100 * roof.computeFraction, 1)
              << "% of peak), "
              << Table::num(roof.sustainedBandwidth / 1e9, 1) << " GB/s ("
              << Table::num(100 * roof.memoryFraction, 1)
              << "% of peak) -> "
              << model::rooflineVerdictName(roof.verdict) << "\n";

    // --- Step 2: the quantitative model finds the bottleneck -------------
    printBanner(std::cout, "step 2: the quantitative model on CR");
    model::printPrediction(std::cout, a_cr.prediction,
                           &a_cr.measurement);
    std::cout << "\n";
    model::printMetrics(std::cout, a_cr.metrics);
    std::cout << "\ncause: the power-of-two strides serialize "
              << Table::num(a_cr.metrics.bankConflictFactor, 1)
              << "x in the 16 banks; if conflicts were removed the "
                 "bottleneck would shift to the "
              << model::componentName(a_cr.prediction.nextBottleneck)
              << "\n";

    // --- Step 2b: predict the optimization BEFORE implementing it -------
    printBanner(std::cout,
                "step 2b: what would removing the conflicts buy?");
    model::PerformanceModel what_if_model(session.calibrator());
    model::WhatIfResult wi =
        model::whatIfNoBankConflicts(what_if_model, a_cr.input);
    std::cout << "model predicts " << Table::num(wi.speedup(), 2)
              << "x from conflict-free shared accesses ("
              << Table::num(wi.before.milliseconds(), 3) << " -> "
              << Table::num(wi.after.milliseconds(), 3)
              << " ms), new bottleneck: "
              << model::componentName(wi.after.bottleneck)
              << " — worth the programming effort.\n";

    // --- Step 3: apply the padding optimization ----------------------------
    printBanner(std::cout, "step 3: CR-NBC (pad 1 element per 16)");
    funcsim::GlobalMemory g2(64 << 20);
    apps::TridiagProblem nbc =
        apps::makeTridiagProblem(g2, n, systems, true);
    model::Analysis a_nbc = session.analyze(
        apps::makeCyclicReductionKernel(nbc), nbc.launch(), g2, run);
    model::printPrediction(std::cout, a_nbc.prediction,
                           &a_nbc.measurement);

    const double speedup =
        a_cr.measurement.seconds() / a_nbc.measurement.seconds();
    std::cout << "\nmeasured speedup: " << Table::num(speedup, 2)
              << "x (paper: 1.6x)\n";

    // --- Step 4: verify numerics against the Thomas algorithm -----------
    funcsim::GlobalMemory g3(64 << 20);
    apps::TridiagProblem check = apps::makeTridiagProblem(g3, n, 8, true);
    session.device().funcSim().run(apps::makeCyclicReductionKernel(check),
                                   check.launch(), g3);
    const double err = apps::tridiagMaxError(g3, check);
    std::cout << "max relative error vs Thomas: " << err
              << (err < 5e-3 ? "  (OK)" : "  (TOO LARGE)") << "\n";
    return err < 5e-3 ? 0 : 1;
}
