/**
 * @file
 * Case study: optimizing the cyclic-reduction tridiagonal solver
 * (paper Section 5.2).
 *
 * The workflow the paper describes: the traditional model cannot
 * explain CR's performance; the quantitative model shows shared memory
 * is the bottleneck and that bank conflicts are the cause; it predicts
 * the benefit of removing them; applying the padding (CR-NBC) realizes
 * the predicted speedup — and the solution is verified against the
 * Thomas algorithm.
 *
 * Both kernels (CR and CR-NBC) and the remove-the-conflicts
 * hypothesis travel in ONE api::AnalysisRequest: the sweep's
 * no-bank-conflicts point IS the paper's step-2b what-if, evaluated
 * by the service and ranked in each cell's response.
 */

#include <iostream>

#include "api/request.h"
#include "api/service.h"
#include "apps/tridiag/cyclic_reduction.h"
#include "common/table.h"
#include "model/report.h"
#include "model/roofline.h"

using namespace gpuperf;

int
main()
{
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    const int n = 512;
    const int systems = 512;

    std::cout << "Solving " << systems << " systems of " << n
              << " equations with cyclic reduction\n";

    // One request: the unpadded and padded kernels, with the
    // conflict-removal hypothesis as the sweep.
    api::AnalysisRequest request;
    request.jobName = "tridiag-cr";
    request.specs.push_back(spec);
    request.store.storeDir = "gpuperf_store";
    request.sweep.noBankConflicts = true;

    funcsim::GlobalMemory g1(64 << 20);
    apps::TridiagProblem cr = apps::makeTridiagProblem(g1, n, systems,
                                                       false);
    funcsim::RunOptions run;
    run.homogeneous = true;
    request.kernels.push_back(api::KernelJob::fromInline(
        "cr", api::InlineLaunch::capture(
                  apps::makeCyclicReductionKernel(cr), cr.launch(), g1,
                  run)));

    funcsim::GlobalMemory g2(64 << 20);
    apps::TridiagProblem nbc =
        apps::makeTridiagProblem(g2, n, systems, true);
    request.kernels.push_back(api::KernelJob::fromInline(
        "cr-nbc", api::InlineLaunch::capture(
                      apps::makeCyclicReductionKernel(nbc),
                      nbc.launch(), g2, run)));

    api::AnalysisService service;
    const api::AnalysisResponse response = service.run(request);
    const driver::BatchResult &a_cr = response.cells.at(0);
    const driver::BatchResult &a_nbc = response.cells.at(1);
    if (!a_cr.ok || !a_nbc.ok) {
        std::cerr << "analysis failed: "
                  << (a_cr.ok ? a_nbc.error : a_cr.error) << "\n";
        return 1;
    }

    // --- Step 1: the traditional model is stuck --------------------------
    model::RooflineAnalysis roof = model::analyzeRoofline(
        spec, cr.flops(), cr.globalBytes(),
        a_cr.analysis.measurement.seconds());
    printBanner(std::cout, "step 1: the traditional model");
    std::cout << Table::num(roof.sustainedFlops / 1e9, 1) << " GFLOPS ("
              << Table::num(100 * roof.computeFraction, 1)
              << "% of peak), "
              << Table::num(roof.sustainedBandwidth / 1e9, 1) << " GB/s ("
              << Table::num(100 * roof.memoryFraction, 1)
              << "% of peak) -> "
              << model::rooflineVerdictName(roof.verdict) << "\n";

    // --- Step 2: the quantitative model finds the bottleneck -------------
    printBanner(std::cout, "step 2: the quantitative model on CR");
    model::printPrediction(std::cout, a_cr.analysis.prediction,
                           &a_cr.analysis.measurement);
    std::cout << "\n";
    model::printMetrics(std::cout, a_cr.analysis.metrics);
    std::cout << "\ncause: the power-of-two strides serialize "
              << Table::num(a_cr.analysis.metrics.bankConflictFactor, 1)
              << "x in the 16 banks; if conflicts were removed the "
                 "bottleneck would shift to the "
              << model::componentName(
                     a_cr.analysis.prediction.nextBottleneck)
              << "\n";

    // --- Step 2b: the prediction BEFORE implementing the padding ---------
    printBanner(std::cout,
                "step 2b: what would removing the conflicts buy?");
    const driver::RankedWhatIf &wi = a_cr.whatifs.at(0);
    std::cout << "model predicts " << Table::num(wi.speedup(), 2)
              << "x from conflict-free shared accesses ("
              << Table::num(wi.result.before.milliseconds(), 3) << " -> "
              << Table::num(wi.result.after.milliseconds(), 3)
              << " ms), new bottleneck: "
              << model::componentName(wi.result.after.bottleneck)
              << " — worth the programming effort.\n";

    // --- Step 3: the padding optimization, measured ----------------------
    printBanner(std::cout, "step 3: CR-NBC (pad 1 element per 16)");
    model::printPrediction(std::cout, a_nbc.analysis.prediction,
                           &a_nbc.analysis.measurement);

    const double speedup = a_cr.analysis.measurement.seconds() /
                           a_nbc.analysis.measurement.seconds();
    std::cout << "\nmeasured speedup: " << Table::num(speedup, 2)
              << "x (paper: 1.6x)\n";

    // --- Step 4: verify numerics against the Thomas algorithm -----------
    funcsim::GlobalMemory g3(64 << 20);
    apps::TridiagProblem check = apps::makeTridiagProblem(g3, n, 8, true);
    funcsim::FunctionalSimulator sim(spec);
    sim.run(apps::makeCyclicReductionKernel(check), check.launch(), g3);
    const double err = apps::tridiagMaxError(g3, check);
    std::cout << "max relative error vs Thomas: " << err
              << (err < 5e-3 ? "  (OK)" : "  (TOO LARGE)") << "\n";
    return err < 5e-3 ? 0 : 1;
}
