/**
 * @file
 * Batch what-if sweep quickstart: evaluate several kernels against
 * several machine variants concurrently, sharing one calibration per
 * machine, and print each analysis with its ranked what-if results —
 * the paper's "decide where to spend programming effort before
 * writing the optimization" workflow (Sections 3 and 6), at batch
 * scale.
 *
 * The kernel mix is chosen so different optimizations win: a
 * coalesced SAXPY (nothing to fix), a strided SAXPY (coalescing
 * wins), a bank-conflicted shared-memory kernel shaped like
 * unpadded cyclic reduction (conflict removal wins — and on the
 * prime-bank machine variant the conflicts vanish in hardware), and
 * a 3-point Jacobi stencil (tiled through shared memory with halo
 * loads; little to fix).
 *
 * The runner keeps a persistent store next to the binary: the first
 * run simulates and calibrates, reruns start warm and skip both.
 * Results are consumed through the streaming API: each cell prints
 * the moment the batch task graph completes it, then the ordered
 * summary tables follow.
 */

#include <iostream>
#include <vector>

#include "common/table.h"
#include "driver/batch_runner.h"
#include "driver/demo_cases.h"

using namespace gpuperf;

int
main()
{
    const std::vector<arch::GpuSpec> specs = {
        arch::GpuSpec::gtx285(),
        arch::GpuSpec::gtx285PrimeBanks(),
    };

    std::vector<driver::KernelCase> kernels;
    kernels.push_back(driver::makeSaxpyCase("saxpy", 32, 256, 2.0f));
    kernels.push_back(
        driver::makeStridedSaxpyCase("saxpy-strided", 16, 256, 8));
    kernels.push_back(
        driver::makeSharedConflictCase("cr-like-conflicted", 16, 128,
                                       8));
    kernels.push_back(driver::makeStencil1dCase("stencil1d", 32, 256));

    driver::BatchRunner::Options opts;
    // Persist profiles, calibrations and results: reruns skip the
    // functional simulations and the microbenchmark sweeps entirely.
    opts.storeDir = "batch_sweep_store";
    driver::BatchRunner runner(opts);

    std::cout << "Calibrating " << specs.size()
              << " machine variants and analyzing " << kernels.size()
              << " kernels on " << runner.numThreads()
              << " threads...\n\n";

    // Stream results as the task graph finishes them: each cell is
    // announced the moment it completes — long before the slowest
    // calibration or simulation drains — then collected by its
    // kernel-major index for the ordered tables below (exactly what
    // runner.run() would return).
    const driver::SweepSpec sweep =
        driver::SweepSpec::defaults(specs[0]);
    std::vector<driver::BatchResult> results(kernels.size() *
                                             specs.size());
    const auto stats = runner.runStream(
        kernels, specs, sweep,
        [&results](size_t index, driver::BatchResult r) {
            std::cout << "  finished: " << r.kernelName << " x "
                      << r.specName << (r.ok ? "" : "  (FAILED)")
                      << "\n";
            results[index] = std::move(r);
        });
    std::cout << "first result after "
              << Table::num(stats.firstResultSeconds, 2)
              << "s, batch drained in "
              << Table::num(stats.totalSeconds, 2) << "s\n";

    printBanner(std::cout, "batch analyses");
    Table summary({"kernel", "machine", "measured (ms)",
                   "predicted (ms)", "bottleneck", "best what-if",
                   "speedup"});
    for (const auto &r : results) {
        if (!r.ok) {
            summary.addRow({r.kernelName, r.specName, "-", "-",
                            "FAILED: " + r.error, "-", "-"});
            continue;
        }
        summary.addRow(
            {r.kernelName, r.specName,
             Table::num(r.analysis.measuredMs(), 3),
             Table::num(r.analysis.predictedMs(), 3),
             model::componentName(r.analysis.prediction.bottleneck),
             r.whatifs.empty() ? "-"
                               : r.whatifs.front().point.label(),
             Table::num(r.bestSpeedup(), 2) + "x"});
    }
    summary.print(std::cout);

    // Zoom in on the paper's decision: is padding the conflicted
    // kernel worth the effort on the stock machine?
    printBanner(std::cout,
                "ranked what-ifs: cr-like-conflicted on GTX 285");
    for (const auto &r : results) {
        if (r.kernelName != "cr-like-conflicted" ||
            r.specName != specs[0].name || !r.ok) {
            continue;
        }
        Table ranked({"rank", "what-if", "predicted speedup"});
        int rank = 1;
        for (const auto &w : r.whatifs) {
            ranked.addRow({std::to_string(rank++), w.point.label(),
                           Table::num(w.speedup(), 2) + "x"});
        }
        ranked.print(std::cout);
    }

    std::cout << "\nThe conflicted kernel's top what-if should be "
                 "bank-conflict removal on the stock machine, and "
                 "close to nothing on the 17-bank variant — the "
                 "paper's CR-padding and prime-banks stories.\n";
    return 0;
}
