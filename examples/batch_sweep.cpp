/**
 * @file
 * Batch what-if sweep quickstart: evaluate several kernels against
 * several machine variants concurrently, sharing one calibration per
 * machine, and print each analysis with its ranked what-if results —
 * the paper's "decide where to spend programming effort before
 * writing the optimization" workflow (Sections 3 and 6), at batch
 * scale.
 *
 * The kernel mix is chosen so different optimizations win: a
 * coalesced SAXPY (nothing to fix), a strided SAXPY (coalescing
 * wins), a bank-conflicted shared-memory kernel shaped like
 * unpadded cyclic reduction (conflict removal wins — and on the
 * prime-bank machine variant the conflicts vanish in hardware), and
 * a 3-point Jacobi stencil (tiled through shared memory with halo
 * loads; little to fix).
 *
 * The whole batch is ONE api::AnalysisRequest built from registry
 * case refs — the same wire-portable description `gpuperf-worker`
 * ships to spool workers — executed here in streaming mode: each
 * cell prints the moment the batch task graph completes it, then the
 * ordered summary tables follow. The request's store makes reruns
 * start warm and skip both simulation and calibration.
 */

#include <iostream>
#include <vector>

#include "api/request.h"
#include "api/service.h"
#include "common/table.h"
#include "model/perf_model.h"

using namespace gpuperf;

int
main()
{
    api::AnalysisRequest request;
    request.jobName = "batch-sweep";
    request.specs = {
        arch::GpuSpec::gtx285(),
        arch::GpuSpec::gtx285PrimeBanks(),
    };
    request.kernels = {
        api::KernelJob::fromRef(
            "saxpy", api::CaseRef{"saxpy", {32, 256}, {2.0}}),
        api::KernelJob::fromRef(
            "saxpy-strided",
            api::CaseRef{"saxpy-strided", {16, 256, 8}, {}}),
        api::KernelJob::fromRef(
            "cr-like-conflicted",
            api::CaseRef{"shared-conflict", {16, 128, 8}, {}}),
        api::KernelJob::fromRef(
            "stencil1d", api::CaseRef{"stencil1d", {32, 256}, {}}),
    };
    request.sweep =
        driver::SweepSpec::defaults(request.specs[0]);
    // Persist profiles, calibrations and results: reruns skip the
    // functional simulations and the microbenchmark sweeps entirely.
    request.store.storeDir = "batch_sweep_store";
    request.exec.delivery = api::ExecutionPolicy::Delivery::kStream;

    api::AnalysisService service;
    std::cout << "Calibrating " << request.specs.size()
              << " machine variants and analyzing "
              << request.kernels.size() << " kernels...\n\n";

    // Stream results as the task graph finishes them: each cell is
    // announced the moment it completes — long before the slowest
    // calibration or simulation drains — and the response still
    // collects every cell in kernel-major order for the tables below.
    api::StreamStats stats;
    const api::AnalysisResponse response = service.execute(
        request,
        [](size_t, const driver::BatchResult &r) {
            std::cout << "  finished: " << r.kernelName << " x "
                      << r.specName << (r.ok ? "" : "  (FAILED)")
                      << "\n";
        },
        &stats);
    std::cout << "first result after "
              << Table::num(stats.firstResultSeconds, 2)
              << "s, batch drained in "
              << Table::num(stats.totalSeconds, 2) << "s\n";

    printBanner(std::cout, "batch analyses");
    Table summary({"kernel", "machine", "measured (ms)",
                   "predicted (ms)", "bottleneck", "best what-if",
                   "speedup"});
    for (const auto &r : response.cells) {
        if (!r.ok) {
            summary.addRow({r.kernelName, r.specName, "-", "-",
                            "FAILED: " + r.error, "-", "-"});
            continue;
        }
        summary.addRow(
            {r.kernelName, r.specName,
             Table::num(r.analysis.measuredMs(), 3),
             Table::num(r.analysis.predictedMs(), 3),
             model::componentName(r.analysis.prediction.bottleneck),
             r.whatifs.empty() ? "-"
                               : r.whatifs.front().point.label(),
             Table::num(r.bestSpeedup(), 2) + "x"});
    }
    summary.print(std::cout);

    // Zoom in on the paper's decision: is padding the conflicted
    // kernel worth the effort on the stock machine?
    printBanner(std::cout,
                "ranked what-ifs: cr-like-conflicted on GTX 285");
    for (const auto &r : response.cells) {
        if (r.kernelName != "cr-like-conflicted" ||
            r.specName != request.specs[0].name || !r.ok) {
            continue;
        }
        Table ranked({"rank", "what-if", "predicted speedup"});
        int rank = 1;
        for (const auto &w : r.whatifs) {
            ranked.addRow({std::to_string(rank++), w.point.label(),
                           Table::num(w.speedup(), 2) + "x"});
        }
        ranked.print(std::cout);
    }

    std::cout << "\nThe conflicted kernel's top what-if should be "
                 "bank-conflict removal on the stock machine, and "
                 "close to nothing on the 17-bank variant — the "
                 "paper's CR-padding and prime-banks stories.\n";
    return 0;
}
