/**
 * @file
 * Quickstart: analyze a SAXPY kernel with the full workflow of the
 * paper's Figure 1 — write a kernel against the native-style ISA,
 * describe the job as one api::AnalysisRequest (the public API), let
 * api::AnalysisService run functional simulation, extraction,
 * calibrated prediction and the timing-simulator measurement, and
 * read everything back from the typed response. Numerical correctness
 * is then verified by running the functional simulator directly.
 */

#include <iostream>

#include "api/request.h"
#include "api/service.h"
#include "arch/instr_class.h"
#include "common/table.h"
#include "funcsim/interpreter.h"
#include "isa/builder.h"
#include "isa/disasm.h"
#include "model/report.h"

using namespace gpuperf;

namespace {

/** y[i] = a * x[i] + y[i] over n elements. */
isa::Kernel
makeSaxpy(uint64_t x_base, uint64_t y_base, int n, float a)
{
    isa::KernelBuilder b("saxpy");
    isa::Reg tid = b.reg();
    isa::Reg cta = b.reg();
    isa::Reg ntid = b.reg();
    isa::Reg gtid = b.reg();
    isa::Reg xa = b.reg();
    isa::Reg ya = b.reg();
    isa::Reg xv = b.reg();
    isa::Reg yv = b.reg();
    isa::Reg av = b.reg();
    isa::Pred p = b.pred();

    b.s2r(tid, isa::SpecialReg::kTid);
    b.s2r(cta, isa::SpecialReg::kCtaid);
    b.s2r(ntid, isa::SpecialReg::kNtid);
    b.imad(gtid, cta, ntid, tid);
    b.setpIImm(p, isa::CmpOp::kLt, gtid, n);
    b.beginIf(p);
    {
        b.shlImm(xa, gtid, 2);
        b.iaddImm(ya, xa, static_cast<int32_t>(y_base));
        b.iaddImm(xa, xa, static_cast<int32_t>(x_base));
        b.ldg(xv, xa);
        b.ldg(yv, ya);
        b.movImmF(av, a);
        b.fmad(yv, av, xv, yv);
        b.stg(ya, yv);
    }
    b.endIf();
    return b.build();
}

} // namespace

int
main()
{
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    std::cout << "Device: " << spec.name << " ("
              << spec.numSms << " SMs, "
              << arch::peakFlops(spec) / 1e9 << " peak GFLOPS, "
              << spec.peakGlobalBandwidth() / 1e9
              << " GB/s peak DRAM)\n";

    const int n = 1 << 20;
    funcsim::GlobalMemory gmem(32 << 20);
    const uint64_t x_base = gmem.alloc(static_cast<size_t>(n) * 4);
    const uint64_t y_base = gmem.alloc(static_cast<size_t>(n) * 4);
    for (int i = 0; i < n; ++i) {
        gmem.f32(x_base)[i] = 1.0f;
        gmem.f32(y_base)[i] = static_cast<float>(i % 7);
    }

    isa::Kernel kernel = makeSaxpy(x_base, y_base, n, 2.0f);
    std::cout << "\nKernel (native-style disassembly):\n";
    isa::disassemble(kernel, std::cout);

    const funcsim::LaunchConfig cfg{n / 256, 256};

    // One request describes the whole job: the kernel inline (with a
    // snapshot of the pristine input image), the machine, and where
    // to persist artifacts — reruns of this example start warm and
    // skip both calibration and functional simulation.
    api::AnalysisRequest request;
    request.jobName = "quickstart";
    request.kernels.push_back(api::KernelJob::fromInline(
        "saxpy", api::InlineLaunch::capture(kernel, cfg, gmem)));
    request.specs.push_back(spec);
    request.store.storeDir = "gpuperf_store";

    std::cout << "\nCalibrating the model against the device "
              << "(microbenchmark sweep; cached in "
              << request.store.storeDir << ")...\n";
    api::AnalysisService service;
    const api::AnalysisResponse response = service.run(request);
    const driver::BatchResult &cell = response.cells.at(0);
    if (!cell.ok) {
        std::cerr << "analysis failed: " << cell.error << "\n";
        return 1;
    }

    printBanner(std::cout, "performance analysis");
    model::printPrediction(std::cout, cell.analysis.prediction,
                           &cell.analysis.measurement);
    std::cout << "\n";
    model::printMetrics(std::cout, cell.analysis.metrics);

    // Verify the numerics while we are here: the service analyzed a
    // COPY of the input image, so run the functional simulator
    // directly on ours and check the output.
    funcsim::FunctionalSimulator sim(spec);
    sim.run(kernel, cfg, gmem);
    int errors = 0;
    for (int i = 0; i < n; ++i) {
        const float expect = 2.0f * 1.0f + static_cast<float>(i % 7);
        if (gmem.f32(y_base)[i] != expect)
            ++errors;
    }
    std::cout << "\nresult check: "
              << (errors == 0 ? "saxpy output correct"
                              : "SAXPY OUTPUT WRONG")
              << "\n";
    return errors == 0 ? 0 : 1;
}
