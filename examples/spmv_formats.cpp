/**
 * @file
 * Case study: choosing an SpMV storage format (paper Section 5.3).
 *
 * Uses the memory-transaction simulator to compare the bytes each
 * format really moves per matrix entry — including the gathered
 * vector entries, which the interleaved-vector (IMIV) layout packs
 * into fewer transactions — then measures all three kernels and
 * verifies them against the CPU reference.
 */

#include <iostream>

#include "apps/spmv/kernels.h"
#include "apps/spmv/traffic.h"
#include "common/table.h"
#include "model/session.h"

using namespace gpuperf;

int
main(int argc, char **argv)
{
    const int block_rows = (argc > 1 && std::string(argv[1]) == "--full")
                               ? 16384 : 2048;
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    model::AnalysisSession session(spec, "calibration_GTX_285.cache");

    apps::BlockSparseMatrix m =
        apps::makeBandedBlockMatrix(block_rows, 13, 24);
    std::cout << "QCD-like blocked sparse matrix: " << m.rows()
              << " rows, " << m.storedEntries() << " stored entries\n";

    // --- Transaction-level traffic analysis (no execution needed) -------
    printBanner(std::cout, "bytes per matrix entry (32 B transactions)");
    Table t({"format", "matrix", "col index", "vector", "total"});
    for (apps::SpmvFormat f :
         {apps::SpmvFormat::kEll, apps::SpmvFormat::kBell,
          apps::SpmvFormat::kBellIm, apps::SpmvFormat::kBellImIv}) {
        apps::TrafficBreakdown tb = apps::analyzeTraffic(m, f, 32);
        t.addRow({apps::spmvFormatName(f), Table::num(tb.matrixBytes, 2),
                  Table::num(tb.indexBytes, 2),
                  Table::num(tb.vectorBytes, 2),
                  Table::num(tb.total(), 2)});
    }
    t.print(std::cout);

    // --- Measure and verify the three kernels ----------------------------
    printBanner(std::cout, "measured performance and verification");
    Table perf({"kernel", "time (ms)", "GFLOPS", "bottleneck",
                "max error vs CPU"});
    const double flops = 2.0 * static_cast<double>(m.storedEntries());

    for (apps::SpmvFormat f :
         {apps::SpmvFormat::kEll, apps::SpmvFormat::kBellIm,
          apps::SpmvFormat::kBellImIv}) {
        funcsim::GlobalMemory gmem(256 << 20);
        apps::SpmvVectors v = apps::makeVectors(gmem, m);
        bool interleaved_y = false;
        isa::Kernel k = [&] {
            if (f == apps::SpmvFormat::kEll) {
                apps::EllDeviceMatrix ell = apps::buildEll(gmem, m);
                return apps::makeEllKernel(ell, v, false);
            }
            apps::BellDeviceMatrix bell = apps::buildBell(gmem, m, true);
            interleaved_y = f == apps::SpmvFormat::kBellImIv;
            return apps::makeBellKernel(bell, v, interleaved_y, false);
        }();
        const int work =
            f == apps::SpmvFormat::kEll ? m.rows() : m.blockRows;
        funcsim::LaunchConfig cfg{apps::spmvGridDim(work),
                                  apps::kSpmvBlockDim};
        model::Analysis a = session.analyze(k, cfg, gmem);
        const double err = apps::spmvMaxError(gmem, m, v, interleaved_y);
        perf.addRow({apps::spmvFormatName(f),
                     Table::num(a.measuredMs(), 3),
                     Table::num(flops / a.measurement.seconds() / 1e9, 1),
                     model::componentName(a.prediction.bottleneck),
                     Table::num(err, 6)});
        if (err > 1e-4) {
            std::cerr << "verification FAILED for "
                      << apps::spmvFormatName(f) << "\n";
            return 1;
        }
    }
    perf.print(std::cout);

    std::cout << "\nAll formats verify against the CPU reference; the "
                 "interleaved-vector layout moves the fewest bytes per "
                 "entry and is fastest (paper Section 5.3).\n";
    return 0;
}
