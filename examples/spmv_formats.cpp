/**
 * @file
 * Case study: choosing an SpMV storage format (paper Section 5.3).
 *
 * Uses the memory-transaction simulator to compare the bytes each
 * format really moves per matrix entry — including the gathered
 * vector entries, which the interleaved-vector (IMIV) layout packs
 * into fewer transactions — then analyzes all three kernels through
 * one api::AnalysisRequest and verifies each against the CPU
 * reference with a direct functional-simulator run.
 */

#include <iostream>

#include "api/request.h"
#include "api/service.h"
#include "apps/spmv/kernels.h"
#include "apps/spmv/traffic.h"
#include "common/table.h"
#include "model/perf_model.h"

using namespace gpuperf;

namespace {

/** One format's kernel with its own memory image and vectors. */
struct FormatCase
{
    apps::SpmvFormat format;
    std::unique_ptr<funcsim::GlobalMemory> gmem;
    apps::SpmvVectors vectors;
    bool interleavedY = false;
    std::unique_ptr<isa::Kernel> kernel;
    funcsim::LaunchConfig cfg;
};

FormatCase
buildFormat(const apps::BlockSparseMatrix &m, apps::SpmvFormat f)
{
    FormatCase fc;
    fc.format = f;
    fc.gmem = std::make_unique<funcsim::GlobalMemory>(256 << 20);
    fc.vectors = apps::makeVectors(*fc.gmem, m);
    if (f == apps::SpmvFormat::kEll) {
        apps::EllDeviceMatrix ell = apps::buildEll(*fc.gmem, m);
        fc.kernel = std::make_unique<isa::Kernel>(
            apps::makeEllKernel(ell, fc.vectors, false));
    } else {
        apps::BellDeviceMatrix bell = apps::buildBell(*fc.gmem, m, true);
        fc.interleavedY = f == apps::SpmvFormat::kBellImIv;
        fc.kernel = std::make_unique<isa::Kernel>(apps::makeBellKernel(
            bell, fc.vectors, fc.interleavedY, false));
    }
    const int work =
        f == apps::SpmvFormat::kEll ? m.rows() : m.blockRows;
    fc.cfg = funcsim::LaunchConfig{apps::spmvGridDim(work),
                                   apps::kSpmvBlockDim};
    return fc;
}

} // namespace

int
main(int argc, char **argv)
{
    const int block_rows = (argc > 1 && std::string(argv[1]) == "--full")
                               ? 16384 : 2048;
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();

    apps::BlockSparseMatrix m =
        apps::makeBandedBlockMatrix(block_rows, 13, 24);
    std::cout << "QCD-like blocked sparse matrix: " << m.rows()
              << " rows, " << m.storedEntries() << " stored entries\n";

    // --- Transaction-level traffic analysis (no execution needed) -------
    printBanner(std::cout, "bytes per matrix entry (32 B transactions)");
    Table t({"format", "matrix", "col index", "vector", "total"});
    for (apps::SpmvFormat f :
         {apps::SpmvFormat::kEll, apps::SpmvFormat::kBell,
          apps::SpmvFormat::kBellIm, apps::SpmvFormat::kBellImIv}) {
        apps::TrafficBreakdown tb = apps::analyzeTraffic(m, f, 32);
        t.addRow({apps::spmvFormatName(f), Table::num(tb.matrixBytes, 2),
                  Table::num(tb.indexBytes, 2),
                  Table::num(tb.vectorBytes, 2),
                  Table::num(tb.total(), 2)});
    }
    t.print(std::cout);

    // --- Analyze all three kernels through one request -------------------
    std::vector<FormatCase> cases;
    api::AnalysisRequest request;
    request.jobName = "spmv-formats";
    request.specs.push_back(spec);
    request.store.storeDir = "gpuperf_store";
    for (apps::SpmvFormat f :
         {apps::SpmvFormat::kEll, apps::SpmvFormat::kBellIm,
          apps::SpmvFormat::kBellImIv}) {
        cases.push_back(buildFormat(m, f));
        // Snapshot the PRISTINE image — the verification run below
        // mutates the local copy afterwards.
        request.kernels.push_back(api::KernelJob::fromInline(
            apps::spmvFormatName(f),
            api::InlineLaunch::capture(*cases.back().kernel,
                                       cases.back().cfg,
                                       *cases.back().gmem)));
    }

    api::AnalysisService service;
    const api::AnalysisResponse response = service.run(request);

    // --- Report and verify the three kernels -----------------------------
    printBanner(std::cout, "measured performance and verification");
    Table perf({"kernel", "time (ms)", "GFLOPS", "bottleneck",
                "max error vs CPU"});
    const double flops = 2.0 * static_cast<double>(m.storedEntries());

    funcsim::FunctionalSimulator sim(spec);
    for (size_t i = 0; i < cases.size(); ++i) {
        const driver::BatchResult &cell = response.cells.at(i);
        if (!cell.ok) {
            std::cerr << "analysis FAILED for " << cell.kernelName
                      << ": " << cell.error << "\n";
            return 1;
        }
        // Numerics: execute the kernel functionally on our local
        // image and compare against the CPU reference.
        FormatCase &fc = cases[i];
        sim.run(*fc.kernel, fc.cfg, *fc.gmem);
        const double err =
            apps::spmvMaxError(*fc.gmem, m, fc.vectors,
                               fc.interleavedY);
        perf.addRow(
            {cell.kernelName,
             Table::num(cell.analysis.measuredMs(), 3),
             Table::num(flops / cell.analysis.measurement.seconds() /
                        1e9, 1),
             model::componentName(cell.analysis.prediction.bottleneck),
             Table::num(err, 6)});
        if (err > 1e-4) {
            std::cerr << "verification FAILED for " << cell.kernelName
                      << "\n";
            return 1;
        }
    }
    perf.print(std::cout);

    std::cout << "\nAll formats verify against the CPU reference; the "
                 "interleaved-vector layout moves the fewest bytes per "
                 "entry and is fastest (paper Section 5.3).\n";
    return 0;
}
