/**
 * @file
 * Case study: why is the 16x16 sub-matrix the right tile size for
 * dense matrix multiply (paper Section 5.1)?
 *
 * Walks the paper's argument with the library: larger tiles raise
 * computational density and cut global traffic, but their register and
 * shared-memory appetite cuts occupancy — at 32x32 only 6 warps remain
 * per SM, too few to hide the shared-memory pipeline's latency, and
 * the bottleneck shifts from the instruction pipeline to shared
 * memory.
 */

#include <iostream>

#include "apps/matmul/gemm.h"
#include "arch/occupancy.h"
#include "common/table.h"
#include "model/session.h"

using namespace gpuperf;

int
main(int argc, char **argv)
{
    const int size = (argc > 1 && std::string(argv[1]) == "--full")
                         ? 1024 : 256;
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    model::AnalysisSession session(spec, "calibration_GTX_285.cache");

    std::cout << "Analyzing " << size << "x" << size
              << " dense matrix multiply on " << spec.name << "\n";

    for (int tile : {8, 16, 32}) {
        funcsim::GlobalMemory gmem(
            static_cast<size_t>(size) * size * 16 + (8 << 20));
        apps::GemmProblem p = apps::makeGemmProblem(gmem, size, tile);
        isa::Kernel k = apps::makeGemmKernel(p);

        printBanner(std::cout, "tile " + std::to_string(tile) + "x" +
                                   std::to_string(tile));

        arch::KernelResources res{k.numRegisters(), k.sharedBytes(),
                                  p.blockDim()};
        arch::Occupancy occ = arch::computeOccupancy(spec, res);
        std::cout << "occupancy: " << occ.residentBlocks
                  << " blocks / SM (" << occ.residentWarps
                  << " warps), bound by "
                  << arch::occupancyLimitName(occ.limit) << "\n";
        std::cout << "  at " << occ.residentWarps
                  << " warps the machine sustains "
                  << Table::num(session.calibrator().tables().lookupInstr(
                         arch::InstrType::TypeII,
                         occ.residentWarps) / 1e9, 2)
                  << " Ginstr/s and "
                  << Table::num(session.calibrator().tables()
                                    .sharedBandwidth(occ.residentWarps) /
                                1e9, 0)
                  << " GB/s of shared bandwidth\n\n";

        funcsim::RunOptions run;
        run.homogeneous = true;
        model::Analysis a = session.analyze(k, p.launch(), gmem, run);
        model::printPrediction(std::cout, a.prediction, &a.measurement);
        std::cout << "\n";
        model::printMetrics(std::cout, a.metrics);
        std::cout << "achieved "
                  << Table::num(p.flops() / a.measurement.seconds() /
                                1e9, 0)
                  << " GFLOPS ("
                  << Table::num(100.0 * p.flops() /
                                    a.measurement.seconds() /
                                    arch::peakFlops(spec), 1)
                  << "% of peak)\n";
    }

    std::cout << "\nConclusion (paper Section 5.1): 16x16 wins — 8x8 "
                 "pays too much bookkeeping and global traffic, 32x32 "
                 "starves the SM of warps and shifts the bottleneck to "
                 "shared memory.\n";
    return 0;
}
