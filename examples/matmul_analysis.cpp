/**
 * @file
 * Case study: why is the 16x16 sub-matrix the right tile size for
 * dense matrix multiply (paper Section 5.1)?
 *
 * Walks the paper's argument with the library: larger tiles raise
 * computational density and cut global traffic, but their register and
 * shared-memory appetite cuts occupancy — at 32x32 only 6 warps remain
 * per SM, too few to hide the shared-memory pipeline's latency, and
 * the bottleneck shifts from the instruction pipeline to shared
 * memory.
 *
 * All three tile sizes travel in ONE api::AnalysisRequest (three
 * inline kernels x one machine); the response's cells come back in
 * kernel order, and the calibration tables the narrative quotes come
 * from the same service.
 */

#include <iostream>

#include "api/request.h"
#include "api/service.h"
#include "apps/matmul/gemm.h"
#include "arch/instr_class.h"
#include "arch/occupancy.h"
#include "common/table.h"
#include "model/calibration.h"
#include "model/report.h"

using namespace gpuperf;

int
main(int argc, char **argv)
{
    const int size = (argc > 1 && std::string(argv[1]) == "--full")
                         ? 1024 : 256;
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();

    std::cout << "Analyzing " << size << "x" << size
              << " dense matrix multiply on " << spec.name << "\n";

    // Build one request carrying every tile size; each kernel gets
    // its own pristine memory image, captured inline.
    const int tiles[] = {8, 16, 32};
    api::AnalysisRequest request;
    request.jobName = "matmul-tiles";
    request.specs.push_back(spec);
    request.store.storeDir = "gpuperf_store";

    std::vector<apps::GemmProblem> problems;
    std::vector<isa::Kernel> kernels;
    for (int tile : tiles) {
        funcsim::GlobalMemory gmem(
            static_cast<size_t>(size) * size * 16 + (8 << 20));
        apps::GemmProblem p = apps::makeGemmProblem(gmem, size, tile);
        isa::Kernel k = apps::makeGemmKernel(p);
        funcsim::RunOptions run;
        run.homogeneous = true;
        request.kernels.push_back(api::KernelJob::fromInline(
            "gemm-" + std::to_string(tile),
            api::InlineLaunch::capture(k, p.launch(), gmem, run)));
        problems.push_back(p);
        kernels.push_back(std::move(k));
    }

    api::AnalysisService service;
    const auto tables = service.calibrationFor(request, spec);
    const api::AnalysisResponse response = service.run(request);

    for (size_t i = 0; i < response.cells.size(); ++i) {
        const int tile = tiles[i];
        const driver::BatchResult &cell = response.cells[i];
        printBanner(std::cout, "tile " + std::to_string(tile) + "x" +
                                   std::to_string(tile));
        if (!cell.ok) {
            std::cerr << "analysis failed: " << cell.error << "\n";
            return 1;
        }

        arch::KernelResources res{kernels[i].numRegisters(),
                                  kernels[i].sharedBytes(),
                                  problems[i].blockDim()};
        arch::Occupancy occ = arch::computeOccupancy(spec, res);
        std::cout << "occupancy: " << occ.residentBlocks
                  << " blocks / SM (" << occ.residentWarps
                  << " warps), bound by "
                  << arch::occupancyLimitName(occ.limit) << "\n";
        std::cout << "  at " << occ.residentWarps
                  << " warps the machine sustains "
                  << Table::num(tables->lookupInstr(
                         arch::InstrType::TypeII,
                         occ.residentWarps) / 1e9, 2)
                  << " Ginstr/s and "
                  << Table::num(tables->sharedBandwidth(
                                    occ.residentWarps) / 1e9, 0)
                  << " GB/s of shared bandwidth\n\n";

        model::printPrediction(std::cout, cell.analysis.prediction,
                               &cell.analysis.measurement);
        std::cout << "\n";
        model::printMetrics(std::cout, cell.analysis.metrics);
        std::cout << "achieved "
                  << Table::num(problems[i].flops() /
                                    cell.analysis.measurement.seconds() /
                                    1e9, 0)
                  << " GFLOPS ("
                  << Table::num(100.0 * problems[i].flops() /
                                    cell.analysis.measurement.seconds() /
                                    arch::peakFlops(spec), 1)
                  << "% of peak)\n";
    }

    std::cout << "\nConclusion (paper Section 5.1): 16x16 wins — 8x8 "
                 "pays too much bookkeeping and global traffic, 32x32 "
                 "starves the SM of warps and shifts the bottleneck to "
                 "shared memory.\n";
    return 0;
}
