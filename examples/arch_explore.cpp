/**
 * @file
 * Using the library as an architect (paper Section 6): evaluate a
 * hardware change against a real workload before building it. Here:
 * would a prime number of shared-memory banks remove the tridiagonal
 * solver's conflicts without software padding?
 */

#include <iostream>

#include "apps/tridiag/cyclic_reduction.h"
#include "common/table.h"
#include "model/device.h"

using namespace gpuperf;

namespace {

struct Row
{
    std::string machine;
    double ms;
    double conflictFactor;
};

Row
evaluate(const arch::GpuSpec &spec, bool padded)
{
    model::SimulatedDevice device(spec);
    funcsim::GlobalMemory gmem(64 << 20);
    apps::TridiagProblem p = apps::makeTridiagProblem(gmem, 512, 512,
                                                      padded);
    funcsim::RunOptions run;
    run.homogeneous = true;
    model::Measurement m = device.run(
        apps::makeCyclicReductionKernel(p), p.launch(), gmem, run);
    uint64_t xacts = 0;
    uint64_t ideal = 0;
    for (const auto &s : m.stats.stages) {
        xacts += s.sharedTransactions;
        ideal += s.sharedTransactionsIdeal;
    }
    return {spec.name + (padded ? " + software padding" : ""),
            m.milliseconds(),
            ideal ? static_cast<double>(xacts) / ideal : 1.0};
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "architect's view: shared-memory banking vs cyclic "
                "reduction (512 x 512 systems)");

    Table t({"machine / code", "time (ms)", "bank conflict factor"});
    for (const Row &row : {
             evaluate(arch::GpuSpec::gtx285(), false),
             evaluate(arch::GpuSpec::gtx285(), true),
             evaluate(arch::GpuSpec::gtx285PrimeBanks(), false),
             evaluate(arch::GpuSpec::gtx285PrimeBanks(), true),
         }) {
        t.addRow({row.machine, Table::num(row.ms, 3),
                  Table::num(row.conflictFactor, 2)});
    }
    t.print(std::cout);

    std::cout << "\nA 17-bank shared memory gives unmodified CR more "
                 "than the padding rewrite gives on 16 banks. Note the "
                 "last row: padding tuned for 16 banks BACKFIRES on "
                 "17-bank hardware — software optimizations encode "
                 "machine assumptions, which is exactly why the paper "
                 "argues architects should evaluate designs against "
                 "real application kernels.\n";
    return 0;
}
