/**
 * @file
 * Using the library as an architect (paper Section 6): evaluate a
 * hardware change against a real workload before building it. Here:
 * would a prime number of shared-memory banks remove the tridiagonal
 * solver's conflicts without software padding?
 *
 * The whole study is one api::AnalysisRequest — two kernels (the
 * unpadded and padded solvers) by two machines (stock and 17-bank
 * GTX 285) — and every measurement below reads from its response.
 */

#include <iostream>

#include "api/request.h"
#include "api/service.h"
#include "apps/tridiag/cyclic_reduction.h"
#include "common/table.h"

using namespace gpuperf;

namespace {

/** Conflict factor of one cell: real vs ideal shared transactions. */
double
conflictFactor(const driver::BatchResult &cell)
{
    uint64_t xacts = 0;
    uint64_t ideal = 0;
    for (const auto &s : cell.analysis.measurement.stats.stages) {
        xacts += s.sharedTransactions;
        ideal += s.sharedTransactionsIdeal;
    }
    return ideal ? static_cast<double>(xacts) / ideal : 1.0;
}

} // namespace

int
main()
{
    printBanner(std::cout,
                "architect's view: shared-memory banking vs cyclic "
                "reduction (512 x 512 systems)");

    api::AnalysisRequest request;
    request.jobName = "arch-explore-banks";
    request.specs.push_back(arch::GpuSpec::gtx285());
    request.specs.push_back(arch::GpuSpec::gtx285PrimeBanks());
    request.store.storeDir = "gpuperf_store";

    funcsim::RunOptions run;
    run.homogeneous = true;
    for (const bool padded : {false, true}) {
        funcsim::GlobalMemory gmem(64 << 20);
        apps::TridiagProblem p = apps::makeTridiagProblem(gmem, 512,
                                                          512, padded);
        request.kernels.push_back(api::KernelJob::fromInline(
            padded ? "cr + software padding" : "cr",
            api::InlineLaunch::capture(
                apps::makeCyclicReductionKernel(p), p.launch(), gmem,
                run)));
    }

    api::AnalysisService service;
    const api::AnalysisResponse response = service.run(request);

    // Rows grouped by machine (the architect's axis), cells arrive
    // kernel-major: cell(ki, si) = cells[ki * numSpecs + si].
    Table t({"machine / code", "time (ms)", "bank conflict factor"});
    for (size_t si = 0; si < request.specs.size(); ++si) {
        for (size_t ki = 0; ki < request.kernels.size(); ++ki) {
            const driver::BatchResult &cell =
                response.cells.at(ki * request.specs.size() + si);
            if (!cell.ok) {
                std::cerr << "analysis failed: " << cell.error << "\n";
                return 1;
            }
            t.addRow({cell.specName + (ki == 1 ? " + software padding"
                                               : ""),
                      Table::num(cell.analysis.measuredMs(), 3),
                      Table::num(conflictFactor(cell), 2)});
        }
    }
    t.print(std::cout);

    std::cout << "\nA 17-bank shared memory gives unmodified CR more "
                 "than the padding rewrite gives on 16 banks. Note the "
                 "last row: padding tuned for 16 banks BACKFIRES on "
                 "17-bank hardware — software optimizations encode "
                 "machine assumptions, which is exactly why the paper "
                 "argues architects should evaluate designs against "
                 "real application kernels.\n";
    return 0;
}
