/**
 * @file
 * Reproduces paper Figure 6: per-step simulated time breakdown of the
 * cyclic-reduction forward phase, for plain CR (a) and the padded
 * no-bank-conflict variant CR-NBC (b). One block fits per SM, so the
 * barrier-delimited steps serialize and each step has its own
 * bottleneck.
 */

#include "apps/tridiag/cyclic_reduction.h"
#include "bench_common.h"

using namespace gpuperf;

namespace {

void
printSteps(const bench::BenchOptions &opts, const model::Analysis &a,
           const char *title)
{
    printBanner(std::cout, title);
    Table t({"step", "warps", "t_global (ms)", "t_shared (ms)",
             "t_instr (ms)", "bottleneck"});
    const auto &stages = a.prediction.stages;
    for (size_t i = 0; i < stages.size(); ++i) {
        const auto &sp = stages[i];
        t.addRow({i == 0 ? "0 (load)" : std::to_string(i),
                  Table::num(sp.activeWarpsPerSm, 0),
                  Table::num(sp.tGlobal * 1e3, 4),
                  Table::num(sp.tShared * 1e3, 4),
                  Table::num(sp.tInstr * 1e3, 4),
                  model::componentName(sp.bottleneck)});
    }
    bench::emit(t, opts);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    const int n = 512;
    const int systems = opts.full ? 512 : 512;
    model::AnalysisSession session(
        spec, bench::cachedSessionConfig(spec));

    for (bool padded : {false, true}) {
        funcsim::GlobalMemory gmem(64 << 20);
        apps::TridiagProblem p =
            apps::makeTridiagProblem(gmem, n, systems, padded);
        isa::Kernel k =
            apps::makeCyclicReductionKernel(p, /*forward_only=*/true);
        funcsim::RunOptions run;
        run.homogeneous = true;  // systems are structurally identical
        model::Analysis a = session.analyze(k, p.launch(), gmem, run);
        printSteps(opts, a,
                   padded ? "Figure 6(b): CR-NBC forward phase, "
                            "512 x 512-equation systems"
                          : "Figure 6(a): CR forward phase, "
                            "512 x 512-equation systems");
        std::cout << "\n";
    }

    std::cout << "(Paper: CR is global-memory-bound in step 0, "
                 "instruction-bound in step 1, and shared-memory-bound "
                 "in all later steps as conflicts double; CR-NBC is "
                 "instruction-bound throughout, with step 1 made "
                 "heavier by the padding address arithmetic.)\n";
    return 0;
}
