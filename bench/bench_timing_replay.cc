/**
 * @file
 * Timing-replay throughput: event-driven engine vs the legacy scan
 * engine (the seed implementation), per-case.
 *
 * Each case is functionally simulated ONCE (the profile-sharing
 * pipeline's steady state, where the timing replay is the dominant
 * per-cell cost); the trace is then replayed repeatedly under both
 * engines. Results are checked bit-identical on every case before any
 * rate is reported — a faster engine that drifts would be a bug, not
 * a speedup.
 *
 * Gate: >= 2x replays/sec on the high-occupancy cases (stencil1d and
 * ELL SpMV, 24-32 resident warps per SM — where the legacy O(warps)
 * candidate scan hurts most). Low-occupancy cases are reported for
 * contrast but not gated. Set GPUPERF_REPLAY_GATE=report to log
 * instead of fail on machines with unusable clocks.
 *
 * Writes bench_timing_replay.json next to the binary so CI can
 * archive the perf trajectory.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "driver/demo_cases.h"
#include "funcsim/interpreter.h"
#include "timing/simulator.h"

using namespace gpuperf;

namespace {

struct ReplayCase
{
    driver::KernelCase kc;
    bool gated = false;  ///< part of the >= 2x high-occupancy gate
};

struct CaseResult
{
    std::string name;
    int residentWarps = 0;
    uint64_t ops = 0;
    double legacyPerSec = 0.0;
    double eventPerSec = 0.0;
    bool gated = false;

    double speedup() const { return eventPerSec / legacyPerSec; }
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Replays/sec of @p reps replays of @p trace. */
double
rate(const timing::TimingSimulator &sim,
     const funcsim::LaunchTrace &trace, int reps)
{
    const double start = now();
    for (int i = 0; i < reps; ++i)
        (void)sim.run(trace);
    const double elapsed = now() - start;
    return reps / elapsed;
}

CaseResult
runCase(const ReplayCase &rc, const arch::GpuSpec &spec)
{
    driver::PreparedLaunch launch = rc.kc.make();
    funcsim::FunctionalSimulator fsim(spec);
    funcsim::RunOptions opts = launch.options;
    opts.collectTrace = true;
    auto res = fsim.run(launch.kernel, launch.cfg, *launch.gmem, opts);

    const timing::TimingSimulator legacy(
        spec, timing::ReplayEngine::kLegacyScan);
    const timing::TimingSimulator event(
        spec, timing::ReplayEngine::kEventDriven);

    // Correctness first: a diverging engine reports no speedup.
    const timing::TimingResult lr = legacy.run(res.trace);
    const timing::TimingResult er = event.run(res.trace);
    if (er != lr) {
        std::cerr << rc.kc.name
                  << ": engines diverged — refusing to benchmark a "
                     "wrong result\n";
        std::exit(1);
    }

    // Size the repetition count off the slower (legacy) engine so
    // each measurement covers at least ~0.15 s.
    const double t0 = now();
    (void)legacy.run(res.trace);
    const double once = std::max(now() - t0, 1e-6);
    const int reps = static_cast<int>(
        std::min(2000.0, std::max(5.0, 0.15 / once)));

    CaseResult out;
    out.name = rc.kc.name;
    out.residentWarps = lr.occupancy.residentWarps;
    out.ops = lr.totalOps;
    out.gated = rc.gated;
    // Best of three interleaved trials per engine: scheduler noise on
    // a shared machine only ever slows a trial down, so the max is
    // the fairest estimate for both engines alike.
    for (int trial = 0; trial < 3; ++trial) {
        out.legacyPerSec =
            std::max(out.legacyPerSec, rate(legacy, res.trace, reps));
        out.eventPerSec =
            std::max(out.eventPerSec, rate(event, res.trace, reps));
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    const int scale = opts.full ? 4 : 1;

    printBanner(std::cout,
                "timing replay: event-driven vs legacy scan engine");

    // High-occupancy cases (gated): 24-32 resident warps per SM keep
    // the legacy candidate scan long. Low-occupancy contrast cases
    // are reported only.
    std::vector<ReplayCase> cases;
    cases.push_back({driver::makeStencil1dCase(
                         "stencil1d hi-occ", 240 * scale, 256),
                     true});
    // 10240 block rows = 240 thread blocks: fills all 8 resident
    // block slots of every SM (32 live warps each).
    cases.push_back({driver::makeSpmvEllCase(
                         "spmv-ell hi-occ", 10240 * scale, 9),
                     true});
    cases.push_back({driver::makeSharedConflictCase(
                         "conflict hi-occ", 120 * scale, 256, 4, 48),
                     true});
    // High occupancy but barrier-ladder bound (~2.0x, too close to
    // the line to gate): reported for the record.
    cases.push_back({driver::makeReductionCase(
                         "reduction hi-occ", 120 * scale, 256),
                     false});
    cases.push_back({driver::makeSaxpyCase(
                         "saxpy lo-occ", 30, 64, 2.0f),
                     false});

    Table t({"case", "warps/SM", "warp ops", "legacy/s", "event/s",
             "speedup"});
    std::vector<CaseResult> results;
    bool gate_ok = true;
    double worst_gated = 1e300;
    for (const ReplayCase &rc : cases) {
        CaseResult r = runCase(rc, spec);
        t.addRow({r.name, std::to_string(r.residentWarps),
                  std::to_string(r.ops), Table::num(r.legacyPerSec, 1),
                  Table::num(r.eventPerSec, 1),
                  Table::num(r.speedup(), 2) + "x" +
                      (r.gated ? "" : "  (not gated)")});
        if (r.gated) {
            worst_gated = std::min(worst_gated, r.speedup());
            gate_ok = gate_ok && r.speedup() >= 2.0;
        }
        results.push_back(std::move(r));
    }
    bench::emit(t, opts);

    std::cout << "\nworst gated speedup: " << Table::num(worst_gated, 2)
              << "x (gate: >= 2x on the high-occupancy cases)\n";
#ifndef NDEBUG
    // Debug builds cross-check every cached candidate against a
    // fresh recomputation (engine_event.cc), roughly doubling the
    // event engine's selection cost — a correctness harness, not the
    // shipped performance. Report, don't gate.
    if (!gate_ok) {
        std::cout << "replay gate in report-only mode (debug build "
                     "runs the per-issue candidate cross-check)\n";
        gate_ok = true;
    }
#endif
    if (const char *mode = std::getenv("GPUPERF_REPLAY_GATE");
        !gate_ok && mode && std::string(mode) == "report") {
        std::cout << "replay gate in report-only mode "
                     "(GPUPERF_REPLAY_GATE=report)\n";
        gate_ok = true;
    }

    // Machine-readable trajectory for CI artifacts.
    std::ofstream json("bench_timing_replay.json");
    json << "{\n  \"bench\": \"timing_replay\",\n  \"gate\": "
         << (gate_ok ? "\"pass\"" : "\"fail\"") << ",\n  \"cases\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const CaseResult &r = results[i];
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"resident_warps\": %d, "
                      "\"warp_ops\": %llu, \"legacy_per_sec\": %.3f, "
                      "\"event_per_sec\": %.3f, \"speedup\": %.3f, "
                      "\"gated\": %s}%s\n",
                      r.name.c_str(), r.residentWarps,
                      static_cast<unsigned long long>(r.ops),
                      r.legacyPerSec, r.eventPerSec, r.speedup(),
                      r.gated ? "true" : "false",
                      i + 1 < results.size() ? "," : "");
        json << buf;
    }
    json << "  ]\n}\n";

    if (!gate_ok) {
        std::cerr << "timing-replay gate FAILED\n";
        return 1;
    }
    return 0;
}
