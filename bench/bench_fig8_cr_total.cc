/**
 * @file
 * Reproduces paper Figure 8: measured and model-predicted execution
 * time of the full tridiagonal solve (forward + backward) for CR and
 * CR-NBC, with the per-component split — CR's time is dominated by
 * shared memory, CR-NBC's by instruction execution, and the padding
 * optimization buys roughly the paper's 1.6x.
 */

#include "apps/tridiag/cyclic_reduction.h"
#include "bench_common.h"
#include "model/roofline.h"

using namespace gpuperf;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    const int n = 512;
    const int systems = 512;
    model::AnalysisSession session(
        spec, bench::cachedSessionConfig(spec));

    printBanner(std::cout,
                "Figure 8: CR vs CR-NBC, measured and simulated "
                "(512 x 512-equation systems, full solve)");
    Table t({"solver", "measured (ms)", "simulated (ms)", "error",
             "t_shared (ms)", "t_global (ms)", "t_instr (ms)",
             "bottleneck"});

    double measured[2] = {0, 0};
    int idx = 0;
    for (bool padded : {false, true}) {
        funcsim::GlobalMemory gmem(64 << 20);
        apps::TridiagProblem p =
            apps::makeTridiagProblem(gmem, n, systems, padded);
        isa::Kernel k = apps::makeCyclicReductionKernel(p);
        funcsim::RunOptions run;
        run.homogeneous = true;
        model::Analysis a = session.analyze(k, p.launch(), gmem, run);
        measured[idx++] = a.measuredMs();
        t.addRow({padded ? "CR-NBC" : "CR",
                  Table::num(a.measuredMs(), 3),
                  Table::num(a.predictedMs(), 3),
                  Table::num(100.0 * a.errorFraction(), 1) + "%",
                  Table::num(a.prediction.tSharedTotal * 1e3, 3),
                  Table::num(a.prediction.tGlobalTotal * 1e3, 3),
                  Table::num(a.prediction.tInstrTotal * 1e3, 3),
                  model::componentName(a.prediction.bottleneck)});

        if (!padded) {
            // The paper opens Section 5.2 with the traditional model's
            // failure on this kernel: ~6 GFLOPS and ~7 GB/s.
            model::RooflineAnalysis roof = model::analyzeRoofline(
                spec, p.flops(), p.globalBytes(),
                a.measurement.seconds());
            std::cout << "traditional model on CR: "
                      << Table::num(roof.sustainedFlops / 1e9, 1)
                      << " GFLOPS, "
                      << Table::num(roof.sustainedBandwidth / 1e9, 1)
                      << " GB/s -> "
                      << model::rooflineVerdictName(roof.verdict)
                      << "\n\n";
        }
    }
    bench::emit(t, opts);
    std::cout << "\nspeedup from removing bank conflicts: "
              << Table::num(measured[0] / measured[1], 2)
              << "x (paper: 1.6x; paper times 0.757 ms -> 0.468 ms "
                 "measured, 7% model error)\n";
    return 0;
}
