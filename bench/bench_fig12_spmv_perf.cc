/**
 * @file
 * Reproduces paper Figure 12: SpMV GFLOPS for ELL, BELL+IM and
 * BELL+IMIV, each with and without routing the gathered vector loads
 * through the texture cache. The paper's contribution, BELL+IMIV,
 * beats the prior best (BELL+IM+Cache) even without the cache and by
 * ~18% with it.
 */

#include "apps/spmv/kernels.h"
#include "apps/spmv/traffic.h"
#include "bench_common.h"
#include "model/device.h"

using namespace gpuperf;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const int block_rows = opts.full ? 16384 : 4096;

    apps::BlockSparseMatrix m = apps::makeBandedBlockMatrix(
        block_rows, /*blocks_per_row=*/13, /*half_band=*/24);
    const double flops = 2.0 * static_cast<double>(m.storedEntries());

    printBanner(std::cout, "Figure 12: SpMV performance, single "
                           "precision (" +
                               std::to_string(m.rows()) + " rows)");
    Table t({"variant", "GFLOPS", "time (ms)"});

    struct Variant
    {
        apps::SpmvFormat format;
        bool cache;
        const char *label;
    };
    const Variant variants[] = {
        {apps::SpmvFormat::kEll, false, "ELL"},
        {apps::SpmvFormat::kBellIm, false, "BELL+IM"},
        {apps::SpmvFormat::kEll, true, "ELL+Cache"},
        {apps::SpmvFormat::kBellIm, true, "BELL+IM+Cache"},
        {apps::SpmvFormat::kBellImIv, false, "BELL+IMIV"},
        {apps::SpmvFormat::kBellImIv, true, "BELL+IMIV+Cache"},
    };

    double best_prior = 0.0;   // BELL+IM+Cache (Choi et al.)
    double ours_cache = 0.0;   // BELL+IMIV+Cache
    double ours_plain = 0.0;

    for (const Variant &variant : variants) {
        arch::GpuSpec spec = arch::GpuSpec::gtx285();
        spec.textureCacheEnabled = variant.cache;
        model::SimulatedDevice device(spec);

        funcsim::GlobalMemory gmem(256 << 20);
        apps::SpmvVectors v = apps::makeVectors(gmem, m);
        isa::Kernel k = [&] {
            if (variant.format == apps::SpmvFormat::kEll) {
                apps::EllDeviceMatrix ell = apps::buildEll(gmem, m);
                return apps::makeEllKernel(ell, v, variant.cache);
            }
            apps::BellDeviceMatrix bell = apps::buildBell(gmem, m, true);
            return apps::makeBellKernel(
                bell, v,
                variant.format == apps::SpmvFormat::kBellImIv,
                variant.cache);
        }();
        const int work = variant.format == apps::SpmvFormat::kEll
                             ? m.rows()
                             : m.blockRows;
        funcsim::LaunchConfig cfg{apps::spmvGridDim(work),
                                  apps::kSpmvBlockDim};
        model::Measurement meas = device.run(k, cfg, gmem);
        const double gflops = flops / meas.seconds() / 1e9;
        t.addRow({variant.label, Table::num(gflops, 1),
                  Table::num(meas.milliseconds(), 3)});

        if (std::string(variant.label) == "BELL+IM+Cache")
            best_prior = gflops;
        if (std::string(variant.label) == "BELL+IMIV")
            ours_plain = gflops;
        if (std::string(variant.label) == "BELL+IMIV+Cache")
            ours_cache = gflops;
    }
    bench::emit(t, opts);

    std::cout << "\nBELL+IMIV vs prior best (BELL+IM+Cache): "
              << Table::num(ours_plain / best_prior, 2) << "x\n";
    std::cout << "BELL+IMIV+Cache vs prior best:            "
              << Table::num(ours_cache / best_prior, 2)
              << "x (paper: 1.18x — 37.7 vs 32.0 GFLOPS)\n";
    std::cout << "(Paper series: ELL 15.9, BELL+IM 23.4, ELL+Cache "
                 "23.4, BELL+IM+Cache 32.0, BELL+IMIV 33.7, "
                 "BELL+IMIV+Cache 37.7 GFLOPS.)\n";
    return 0;
}
