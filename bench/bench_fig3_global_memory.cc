/**
 * @file
 * Reproduces paper Figure 3: global-memory throughput versus the
 * number of blocks for eight (threads/block, transactions/thread)
 * configurations. Shows the linear latency-bound region, saturation,
 * and the sawtooth of period 10 caused by the 10 SM clusters sharing
 * memory pipelines.
 */

#include "bench_common.h"

using namespace gpuperf;

namespace {

struct Config
{
    int threads;
    int requests;
    const char *label;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    model::AnalysisSession session(
        spec, bench::cachedSessionConfig(spec));
    model::Calibrator &cal = session.calibrator();

    // The paper's eight legend entries (T = threads, M = transactions
    // per thread). --full uses the paper's 256M; the default trims the
    // large request counts to keep runtime small (the curves saturate
    // identically).
    const int big = opts.full ? 256 : 96;
    const int mid = opts.full ? 128 : 48;
    const Config configs[] = {
        {512, big, "512T,256M"}, {256, big, "256T,256M"},
        {256, mid, "256T,128M"}, {128, big, "128T,256M"},
        {128, mid, "128T,128M"}, {64, big, "64T,256M"},
        {512, 2, "512T,2M"},     {256, 2, "256T,2M"},
    };

    printBanner(std::cout,
                "Figure 3: global memory throughput vs number of blocks");
    std::vector<std::string> headers{"blocks"};
    for (const auto &c : configs)
        headers.push_back(c.label);
    Table t(headers);

    const int max_blocks = 56;
    const int step = opts.full ? 1 : 1;
    for (int blocks = 1; blocks <= max_blocks; blocks += step) {
        std::vector<std::string> row{std::to_string(blocks)};
        for (const auto &c : configs) {
            auto res = cal.runGlobalBench(blocks, c.threads, c.requests);
            row.push_back(Table::num(res.bandwidth / 1e9, 1));
        }
        t.addRow(row);
    }
    bench::emit(t, opts);

    std::cout << "\n(GB/s of requested bytes; theoretical peak "
              << Table::num(spec.peakGlobalBandwidth() / 1e9, 0)
              << " GB/s. Expect: near-linear growth while latency-"
                 "bound, saturation around 30-40 blocks, best "
                 "throughput at multiples of 10 blocks — one block "
                 "per cluster — and shrinking fluctuation as the "
                 "block count grows.)\n";
    return 0;
}
