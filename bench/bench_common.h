/**
 * @file
 * Shared helpers for the table/figure regeneration harnesses.
 *
 * Each bench binary reproduces one table or figure of the paper and
 * prints the same rows/series the paper reports. Binaries accept:
 *   --full   paper-scale problem sizes (slower)
 *   --csv    machine-readable output
 */

#ifndef GPUPERF_BENCH_BENCH_COMMON_H
#define GPUPERF_BENCH_BENCH_COMMON_H

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "model/session.h"

namespace gpuperf {
namespace bench {

/** Parsed command-line options. */
struct BenchOptions
{
    bool full = false;
    bool csv = false;
};

inline BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            opts.full = true;
        } else if (std::strcmp(argv[i], "--csv") == 0) {
            opts.csv = true;
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::cout << "usage: " << argv[0] << " [--full] [--csv]\n"
                      << "  --full  paper-scale problem sizes\n"
                      << "  --csv   machine-readable output\n";
            std::exit(0);
        } else {
            std::cerr << "unknown option " << argv[i] << "\n";
            std::exit(2);
        }
    }
    return opts;
}

/** Print a table honoring --csv. */
inline void
emit(const Table &t, const BenchOptions &opts)
{
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
}

/**
 * Nearest-rank percentile of @p samples (unsorted is fine; 0.0 on an
 * empty set). One definition for every bench, so p50/p99 columns in
 * different bench_*.json files are comparable.
 */
inline double
percentileMs(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(idx, samples.size() - 1)];
}

/** {"count": N, "p50": X, "p99": Y} for one latency sample set. */
inline std::string
latencyClassJson(const std::vector<double> &ms)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "{\"count\": %zu, \"p50\": %.2f, \"p99\": %.2f}",
                  ms.size(), percentileMs(ms, 0.50),
                  percentileMs(ms, 0.99));
    return buf;
}

/**
 * Per-size-class latency recorder: mixed-load benches tag each
 * request small or large and report the tails separately — a combined
 * p99 hides exactly the thing scheduling policies change (how long
 * SMALL work waits behind big work).
 */
struct LatencyBreakdown
{
    std::vector<double> smallMs;
    std::vector<double> largeMs;

    void add(bool large, double ms)
    {
        (large ? largeMs : smallMs).push_back(ms);
    }

    std::vector<double> all() const
    {
        std::vector<double> both = smallMs;
        both.insert(both.end(), largeMs.begin(), largeMs.end());
        return both;
    }

    /** {"all": {...}, "small": {...}, "large": {...}} */
    std::string json() const
    {
        return "{\"all\": " + latencyClassJson(all()) +
               ", \"small\": " + latencyClassJson(smallMs) +
               ", \"large\": " + latencyClassJson(largeMs) + "}";
    }
};

/** Calibration cache file for a spec (shared across binaries). */
inline std::string
calibrationCacheFile(const arch::GpuSpec &spec)
{
    std::string name = "calibration";
    for (char c : spec.name) {
        name.push_back(
            (std::isalnum(static_cast<unsigned char>(c))) ? c : '_');
    }
    return name + ".cache";
}

/** Session config wired to the spec's shared calibration cache. */
inline model::SessionConfig
cachedSessionConfig(const arch::GpuSpec &spec)
{
    model::SessionConfig config;
    config.calibrationCache = calibrationCacheFile(spec);
    return config;
}

} // namespace bench
} // namespace gpuperf

#endif // GPUPERF_BENCH_BENCH_COMMON_H
