/**
 * @file
 * Shared helpers for the table/figure regeneration harnesses.
 *
 * Each bench binary reproduces one table or figure of the paper and
 * prints the same rows/series the paper reports. Binaries accept:
 *   --full   paper-scale problem sizes (slower)
 *   --csv    machine-readable output
 */

#ifndef GPUPERF_BENCH_BENCH_COMMON_H
#define GPUPERF_BENCH_BENCH_COMMON_H

#include <cstring>
#include <iostream>
#include <string>

#include "common/table.h"
#include "model/session.h"

namespace gpuperf {
namespace bench {

/** Parsed command-line options. */
struct BenchOptions
{
    bool full = false;
    bool csv = false;
};

inline BenchOptions
parseArgs(int argc, char **argv)
{
    BenchOptions opts;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            opts.full = true;
        } else if (std::strcmp(argv[i], "--csv") == 0) {
            opts.csv = true;
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::cout << "usage: " << argv[0] << " [--full] [--csv]\n"
                      << "  --full  paper-scale problem sizes\n"
                      << "  --csv   machine-readable output\n";
            std::exit(0);
        } else {
            std::cerr << "unknown option " << argv[i] << "\n";
            std::exit(2);
        }
    }
    return opts;
}

/** Print a table honoring --csv. */
inline void
emit(const Table &t, const BenchOptions &opts)
{
    if (opts.csv)
        t.printCsv(std::cout);
    else
        t.print(std::cout);
}

/** Calibration cache file for a spec (shared across binaries). */
inline std::string
calibrationCacheFile(const arch::GpuSpec &spec)
{
    std::string name = "calibration";
    for (char c : spec.name) {
        name.push_back(
            (std::isalnum(static_cast<unsigned char>(c))) ? c : '_');
    }
    return name + ".cache";
}

/** Session config wired to the spec's shared calibration cache. */
inline model::SessionConfig
cachedSessionConfig(const arch::GpuSpec &spec)
{
    model::SessionConfig config;
    config.calibrationCache = calibrationCacheFile(spec);
    return config;
}

} // namespace bench
} // namespace gpuperf

#endif // GPUPERF_BENCH_BENCH_COMMON_H
