/**
 * @file
 * Functional-simulation throughput: the data-oriented vectorized
 * interpreter vs the retained scalar-reference core, per-case. This is
 * the one authoritative funcsim benchmark (it subsumes the old
 * bench_sim_speed single-mode harness): the metric is warp-level
 * instructions interpreted per second, with trace collection on — the
 * exact configuration profileKernel() runs, since the profile pass is
 * what the speedup buys down.
 *
 * Every case is first checked bit-identical between the two cores
 * (per-stage stats, interned warp traces, final memory digest); a
 * faster interpreter that drifts would be a bug, not a speedup, so
 * divergence aborts the benchmark.
 *
 * Gate: >= 2x warp-instrs/sec on the large high-occupancy cases
 * (full 256-thread blocks: stencil1d, ELL SpMV, reduction and
 * histogram — the mix the paper's workloads are built from). The
 * low-occupancy saxpy contrast case is reported but not gated.
 * Set GPUPERF_FUNCSIM_GATE=report to log instead of fail on machines
 * with unusable clocks; debug builds report only (the -O0 scalar and
 * vector cores pay very different interpretation overheads, so the
 * ratio is meaningless there).
 *
 * Writes bench_funcsim.json next to the binary so CI can archive the
 * perf trajectory.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "driver/demo_cases.h"
#include "funcsim/interpreter.h"

using namespace gpuperf;

namespace {

struct FuncsimCase
{
    driver::KernelCase kc;
    bool gated = false;  ///< part of the >= 2x high-occupancy gate
};

struct CaseResult
{
    std::string name;
    uint64_t warpInstrs = 0;   ///< per launch
    double scalarPerSec = 0.0; ///< warp-instrs/sec, scalar reference
    double vecPerSec = 0.0;    ///< warp-instrs/sec, vectorized core
    bool gated = false;

    double speedup() const { return vecPerSec / scalarPerSec; }
};

double
now()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/**
 * Abort unless the two cores produced byte-identical results. The
 * launch-shape fields are covered by the stage-stats comparison; the
 * trace pools and block indices pin the interning decisions too.
 */
void
requireIdentical(const std::string &name, const funcsim::RunResult &a,
                 const funcsim::RunResult &b, uint64_t mem_a,
                 uint64_t mem_b)
{
    bool same = a.stats.stages.size() == b.stats.stages.size() &&
                a.stats.barriersPerBlock == b.stats.barriersPerBlock &&
                a.trace.pool.size() == b.trace.pool.size() &&
                a.trace.blocks.size() == b.trace.blocks.size() &&
                mem_a == mem_b;
    for (size_t i = 0; same && i < a.stats.stages.size(); ++i)
        same = a.stats.stages[i] == b.stats.stages[i];
    for (size_t i = 0; same && i < a.trace.pool.size(); ++i)
        same = a.trace.pool[i] == b.trace.pool[i];
    for (size_t i = 0; same && i < a.trace.blocks.size(); ++i)
        same = a.trace.blocks[i].warpTraceIdx ==
               b.trace.blocks[i].warpTraceIdx;
    if (!same) {
        std::cerr << name
                  << ": execution cores diverged — refusing to "
                     "benchmark a wrong result\n";
        std::exit(1);
    }
}

/** Warp-instrs/sec over @p reps launches of the prepared case. */
double
rate(funcsim::FunctionalSimulator &sim, const driver::PreparedLaunch &l,
     funcsim::GlobalMemory &gmem, const funcsim::RunOptions &opts,
     uint64_t warp_instrs, int reps)
{
    const double start = now();
    for (int i = 0; i < reps; ++i)
        (void)sim.run(l.kernel, l.cfg, gmem, opts);
    const double elapsed = now() - start;
    return reps * static_cast<double>(warp_instrs) / elapsed;
}

CaseResult
runCase(const FuncsimCase &fc, const arch::GpuSpec &spec)
{
    driver::PreparedLaunch launch = fc.kc.make();
    funcsim::RunOptions opts = launch.options;
    opts.collectTrace = true;  // what profileKernel() always runs

    funcsim::FunctionalSimulator scalar(
        spec, funcsim::ExecMode::kScalarReference);
    funcsim::FunctionalSimulator vec(spec,
                                     funcsim::ExecMode::kVectorized);

    // Correctness first, on copies of the pristine image.
    funcsim::GlobalMemory memScalar = *launch.gmem;
    funcsim::GlobalMemory memVec = *launch.gmem;
    auto rs = scalar.run(launch.kernel, launch.cfg, memScalar, opts);
    auto rv = vec.run(launch.kernel, launch.cfg, memVec, opts);
    requireIdentical(fc.kc.name, rs, rv, memScalar.contentHash(),
                     memVec.contentHash());

    // Size the repetition count off the slower (scalar) core so each
    // measurement covers at least ~0.12 s. Timing reuses the mutated
    // images: every case's address streams are input-driven, so the
    // interpreted instruction mix is identical from rep to rep.
    const double t0 = now();
    (void)scalar.run(launch.kernel, launch.cfg, memScalar, opts);
    const double once = std::max(now() - t0, 1e-6);
    const int reps = static_cast<int>(
        std::min(2000.0, std::max(3.0, 0.12 / once)));

    CaseResult out;
    out.name = fc.kc.name;
    out.warpInstrs = rs.stats.totalWarpInstrs();
    out.gated = fc.gated;
    // Best of three interleaved trials per core: scheduler noise on a
    // shared machine only ever slows a trial down, so the max is the
    // fairest estimate for both cores alike.
    for (int trial = 0; trial < 3; ++trial) {
        out.scalarPerSec = std::max(
            out.scalarPerSec, rate(scalar, launch, memScalar, opts,
                                   out.warpInstrs, reps));
        out.vecPerSec =
            std::max(out.vecPerSec, rate(vec, launch, memVec, opts,
                                         out.warpInstrs, reps));
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    const int scale = opts.full ? 4 : 1;

    printBanner(std::cout,
                "funcsim throughput: vectorized vs scalar-reference "
                "core");

    // Large high-occupancy cases (gated): full 256-thread blocks and
    // wide grids, the shape of the paper's workloads — dense warps
    // where the whole-warp dispatch amortizes best. The low-occupancy
    // saxpy contrast case (2 warps per block) is reported only.
    std::vector<FuncsimCase> cases;
    cases.push_back({driver::makeStencil1dCase(
                         "stencil1d hi-occ", 64 * scale, 256),
                     true});
    cases.push_back({driver::makeSpmvEllCase(
                         "spmv-ell hi-occ", 2560 * scale, 9),
                     true});
    cases.push_back({driver::makeReductionCase(
                         "reduction hi-occ", 64 * scale, 256),
                     true});
    cases.push_back({driver::makeHistogramCase(
                         "histogram hi-occ", 32 * scale, 256, 16, 8),
                     true});
    cases.push_back({driver::makeSaxpyCase(
                         "saxpy lo-occ", 30, 64, 2.0f),
                     false});

    Table t({"case", "warp instrs", "scalar wi/s", "vec wi/s",
             "speedup"});
    std::vector<CaseResult> results;
    bool gate_ok = true;
    double worst_gated = 1e300;
    for (const FuncsimCase &fc : cases) {
        CaseResult r = runCase(fc, spec);
        t.addRow({r.name, std::to_string(r.warpInstrs),
                  Table::num(r.scalarPerSec, 0),
                  Table::num(r.vecPerSec, 0),
                  Table::num(r.speedup(), 2) + "x" +
                      (r.gated ? "" : "  (not gated)")});
        if (r.gated) {
            worst_gated = std::min(worst_gated, r.speedup());
            gate_ok = gate_ok && r.speedup() >= 2.0;
        }
        results.push_back(std::move(r));
    }
    bench::emit(t, opts);

    std::cout << "\nworst gated speedup: " << Table::num(worst_gated, 2)
              << "x (gate: >= 2x on the high-occupancy cases)\n";
#ifndef NDEBUG
    // Debug builds interpret both cores at -O0 (and run the
    // homogeneous-sampling validation), so the ratio does not reflect
    // the shipped performance. Report, don't gate.
    if (!gate_ok) {
        std::cout << "funcsim gate in report-only mode (debug build)\n";
        gate_ok = true;
    }
#endif
    if (const char *mode = std::getenv("GPUPERF_FUNCSIM_GATE");
        !gate_ok && mode && std::string(mode) == "report") {
        std::cout << "funcsim gate in report-only mode "
                     "(GPUPERF_FUNCSIM_GATE=report)\n";
        gate_ok = true;
    }

    // Machine-readable trajectory for CI artifacts.
    std::ofstream json("bench_funcsim.json");
    json << "{\n  \"bench\": \"funcsim\",\n  \"gate\": "
         << (gate_ok ? "\"pass\"" : "\"fail\"") << ",\n  \"cases\": [\n";
    for (size_t i = 0; i < results.size(); ++i) {
        const CaseResult &r = results[i];
        char buf[256];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"warp_instrs\": %llu, "
                      "\"scalar_per_sec\": %.0f, \"vec_per_sec\": %.0f, "
                      "\"speedup\": %.3f, \"gated\": %s}%s\n",
                      r.name.c_str(),
                      static_cast<unsigned long long>(r.warpInstrs),
                      r.scalarPerSec, r.vecPerSec, r.speedup(),
                      r.gated ? "true" : "false",
                      i + 1 < results.size() ? "," : "");
        json << buf;
    }
    json << "  ]\n}\n";

    if (!gate_ok) {
        std::cerr << "funcsim gate FAILED\n";
        return 1;
    }
    return 0;
}
