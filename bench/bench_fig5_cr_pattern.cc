/**
 * @file
 * Reproduces paper Figure 5: the communication pattern of cyclic
 * reduction's forward phase and the resulting bank-conflict degrees
 * (2-way, 4-way, 8-way, ... as the stride doubles each step),
 * computed by the bank-conflict analyzer on the real shared-memory
 * addresses the kernel issues.
 */

#include "apps/tridiag/cyclic_reduction.h"
#include "bench_common.h"
#include "funcsim/interpreter.h"

using namespace gpuperf;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    const int n = opts.full ? 512 : 512;

    printBanner(std::cout,
                "Figure 5: cyclic reduction communication pattern (n=" +
                    std::to_string(n) + ")");

    // Walk the forward phase and report, per step: active threads,
    // access stride, and the measured conflict factor of the step's
    // shared traffic (transactions / conflict-free transactions).
    funcsim::GlobalMemory g1(16 << 20);
    funcsim::GlobalMemory g2(16 << 20);
    apps::TridiagProblem cr = apps::makeTridiagProblem(g1, n, 1, false);
    apps::TridiagProblem nbc = apps::makeTridiagProblem(g2, n, 1, true);
    funcsim::FunctionalSimulator sim(spec);
    auto rcr = sim.run(apps::makeCyclicReductionKernel(cr, true),
                       cr.launch(), g1);
    auto rnbc = sim.run(apps::makeCyclicReductionKernel(nbc, true),
                        nbc.launch(), g2);

    Table t({"step", "active threads", "stride (words)",
             "conflict factor (CR)", "conflict factor (CR-NBC)"});
    const int steps = static_cast<int>(rcr.stats.stages.size()) - 1;
    for (int step = 1; step <= steps; ++step) {
        const auto &s = rcr.stats.stages[step];
        const auto &sn = rnbc.stats.stages[step];
        const double f =
            s.sharedTransactionsIdeal
                ? static_cast<double>(s.sharedTransactions) /
                      s.sharedTransactionsIdeal
                : 1.0;
        const double fn =
            sn.sharedTransactionsIdeal
                ? static_cast<double>(sn.sharedTransactions) /
                      sn.sharedTransactionsIdeal
                : 1.0;
        t.addRow({std::to_string(step), std::to_string(n >> step),
                  std::to_string(1 << step), Table::num(f, 2),
                  Table::num(fn, 2)});
    }
    bench::emit(t, opts);

    std::cout << "\n(Paper Figure 5: 2-way conflicts in step one, "
                 "4-way in step two, 8-way in step three, capped by "
                 "the 16 banks / active lanes; padding redirects the "
                 "conflicting accesses to free banks.)\n";
    return 0;
}
