/**
 * @file
 * Batch-analysis throughput, two studies:
 *
 * 1. Analyses per second versus worker count for a 64-point batch (a
 *    mix of coalesced, strided, bank-conflicted and stencil kernel
 *    cases, each a full functional-sim -> extraction -> prediction ->
 *    what-if workflow). Calibration happens once, outside the timed
 *    region, and is shared by every worker. Gate: >= 2x analyses/sec
 *    at 4 threads over 1 thread (enforced with >= 4 hardware threads).
 *
 * 2. Profile sharing and the persistent store on an N x M spec-variant
 *    grid (the paper's Section 5 what-if studies): the PR 1 per-cell
 *    pipeline re-simulates every cell; profile sharing runs N
 *    functional sims for N x M cells; a warm store skips them
 *    entirely across process restarts. Gate: warm-store analyses/sec
 *    >= 3x the per-cell pipeline at M >= 4 variants (results are
 *    bit-identical either way — pinned by test_profile/test_store).
 *
 * 3. Streaming delivery: on a two-spec batch whose cold calibrations
 *    cost very differently, runStream() must hand over the first
 *    finished cell while the slower spec's microbenchmark sweep is
 *    still running. Gate: time-to-first-result < time of the last
 *    calibration completing (a blocking run() delivers only at batch
 *    drain). Reported in bench_batch_throughput.json ("streaming").
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "bench/bench_common.h"
#include "common/thread_pool.h"
#include "driver/batch_runner.h"
#include "driver/demo_cases.h"
#include "store/profile_store.h"
#include "store/result_store.h"

using namespace gpuperf;

namespace {

std::vector<driver::KernelCase>
makeBatch(int points, bool full)
{
    const int scale = full ? 4 : 1;
    std::vector<driver::KernelCase> cases;
    cases.reserve(static_cast<size_t>(points));
    for (int i = 0; i < points; ++i) {
        const std::string tag = "#" + std::to_string(i);
        // Vary the per-case parameters with v = i/5, which is
        // independent of the i%5 case selector — every family keeps a
        // spread of distinct kernels (distinct profiles) within the
        // batch. Each formula stays injective through v = 12, i.e. up
        // to 64 points (the largest batch the studies request).
        const int v = i / 5;
        switch (i % 5) {
          case 0:
            cases.push_back(driver::makeSaxpyCase(
                "saxpy" + tag, (16 + 8 * v) * scale, 256, 2.0f));
            break;
          case 1:
            // Power-of-two grid sizes keep n a power of two, as the
            // strided case requires.
            cases.push_back(driver::makeStridedSaxpyCase(
                "strided" + tag, (16 << (v / 4)) * scale, 256,
                1 << (1 + v % 4)));
            break;
          case 2:
            cases.push_back(driver::makeSharedConflictCase(
                "conflict" + tag, 8 * scale, 128, 2 << (v % 4),
                48 + 16 * (v / 4)));
            break;
          case 3:
            cases.push_back(driver::makeStencil1dCase(
                "stencil" + tag, (12 + 4 * v) * scale, 256));
            break;
          default:
            cases.push_back(driver::makeReductionCase(
                "reduce" + tag, (8 + 4 * v) * scale, 256));
            break;
        }
    }
    return cases;
}

/**
 * M spec variants differing only in timing/occupancy fields, so all
 * of them share one funcsim fingerprint (the favourable case profile
 * sharing is built for; a variant like gtx285PrimeBanks() would
 * simply recompute under its own fingerprint).
 */
std::vector<arch::GpuSpec>
makeSpecGrid()
{
    std::vector<arch::GpuSpec> specs;
    specs.push_back(arch::GpuSpec::gtx285());
    specs.push_back(arch::GpuSpec::gtx285MoreBlocks());
    specs.push_back(arch::GpuSpec::gtx285BigResources());
    arch::GpuSpec oc = arch::GpuSpec::gtx285();
    oc.name = "GTX 285 + 25% core clock";
    oc.coreClockHz *= 1.25;
    specs.push_back(oc);
    arch::GpuSpec slow = arch::GpuSpec::gtx285();
    slow.name = "GTX 285 + 2x memory latency";
    slow.globalLatencyCycles *= 2;
    specs.push_back(slow);
    arch::GpuSpec deep = arch::GpuSpec::gtx285();
    deep.name = "GTX 285 + deeper ALU pipeline";
    deep.aluDepCycles += 12;
    specs.push_back(deep);
    return specs;
}

/** Time one full batch; returns analyses/sec, exits on any failure. */
double
timedRun(driver::BatchRunner &runner,
         const std::vector<driver::KernelCase> &cases,
         const std::vector<arch::GpuSpec> &specs,
         const driver::SweepSpec &sweep)
{
    const auto start = std::chrono::steady_clock::now();
    const auto results = runner.run(cases, specs, sweep);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    for (const auto &r : results) {
        if (!r.ok) {
            std::cerr << "failing analysis: " << r.kernelName << " x "
                      << r.specName << ": " << r.error << "\n";
            std::exit(1);
        }
    }
    return static_cast<double>(results.size()) / elapsed.count();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    const int points = 64;

    printBanner(std::cout, "batch-analysis throughput vs threads");

    // Calibrate once, outside the timed region; every runner below
    // adopts this one table set.
    std::cout << "calibrating " << spec.name
              << " (cached across bench runs)...\n";
    model::AnalysisSession calibration_session(spec);
    calibration_session.calibrator().setCacheFile(
        bench::calibrationCacheFile(spec));
    const auto tables = calibration_session.shareCalibration();

    driver::SweepSpec sweep;
    sweep.noBankConflicts = true;
    sweep.coalescingFractions = {1.0};

    const auto cases = makeBatch(points, opts.full);

    Table t({"threads", "analyses", "seconds", "analyses/sec",
             "speedup vs 1T"});
    double base_rate = 0.0;
    double rate_at_4 = 0.0;
    for (int threads : {1, 2, 4, 8}) {
        driver::BatchRunner::Options ropts;
        ropts.numThreads = threads;
        driver::BatchRunner runner(ropts);
        runner.adoptCalibration(spec, tables);

        const auto start = std::chrono::steady_clock::now();
        const auto results = runner.run(cases, {spec}, sweep);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;

        int ok = 0;
        for (const auto &r : results)
            ok += r.ok ? 1 : 0;
        if (ok != points) {
            std::cerr << "batch had " << points - ok
                      << " failing analyses\n";
            return 1;
        }

        const double rate = points / elapsed.count();
        if (threads == 1)
            base_rate = rate;
        if (threads == 4)
            rate_at_4 = rate;
        t.addRow({std::to_string(threads), std::to_string(points),
                  Table::num(elapsed.count(), 3), Table::num(rate, 1),
                  Table::num(rate / base_rate, 2) + "x"});
    }
    bench::emit(t, opts);

    const double scaling = rate_at_4 / base_rate;
    const int hw_threads = ThreadPool::resolveThreads(0);
    std::cout << "\n4-thread scaling: " << Table::num(scaling, 2)
              << "x on " << hw_threads
              << " hardware threads (gate: >= 2x with >= 4 hardware "
                 "threads)\n";
    bool thread_gate_ok = scaling >= 2.0;
    if (hw_threads < 4) {
        std::cout << "thread gate not applicable: this machine cannot "
                     "run 4 analyses concurrently\n";
        thread_gate_ok = true;
    } else if (const char *mode = std::getenv("GPUPERF_THREAD_GATE");
               mode && std::string(mode) == "report") {
        // Shared CI runners report 4 vCPUs that are really 2 noisy
        // SMT cores; scaling there is not a property of this code.
        // CI sets report-only mode; the gate stays enforced locally.
        std::cout << "thread gate in report-only mode "
                     "(GPUPERF_THREAD_GATE=report)\n";
        thread_gate_ok = true;
    }

    // ---------------------------------------------------------------
    // Study 2: profile sharing + persistent store on an N x M grid.
    // ---------------------------------------------------------------
    const auto specs = makeSpecGrid();
    const auto grid_cases = makeBatch(opts.full ? 32 : 16, opts.full);
    printBanner(std::cout,
                "profile sharing & store (" +
                    std::to_string(grid_cases.size()) + " kernels x " +
                    std::to_string(specs.size()) + " spec variants)");

    const std::string store_dir = "batch_store_bench";
    (void)std::system(("rm -rf " + store_dir).c_str());

    auto make_runner = [&](bool share, const std::string &dir,
                           bool reuse_results) {
        driver::BatchRunner::Options ropts;
        ropts.shareProfiles = share;
        ropts.storeDir = dir;
        ropts.reuseStoredResults = reuse_results;
        auto runner = std::make_unique<driver::BatchRunner>(ropts);
        for (const auto &s : specs)
            runner->adoptCalibration(s, tables);
        return runner;
    };

    Table grid_table({"mode", "analyses", "analyses/sec",
                      "speedup vs per-cell"});
    // PR 1 pipeline: every cell re-runs the functional simulator.
    auto percell = make_runner(false, "", false);
    const double percell_rate =
        timedRun(*percell, grid_cases, specs, sweep);
    // Profile sharing, cold store: N functional sims for N x M cells,
    // profiles written to disk as a side effect.
    auto cold = make_runner(true, store_dir, false);
    const double cold_rate = timedRun(*cold, grid_cases, specs, sweep);
    // Warm store, fresh runner (a "process restart"): profiles load
    // from disk, zero functional simulation.
    auto warm = make_runner(true, store_dir, false);
    const double warm_rate = timedRun(*warm, grid_cases, specs, sweep);
    const uint64_t warm_hits = warm->profileStore()->hits();
    // Warm result store: whole cells served from disk.
    auto result_warm = make_runner(true, store_dir, true);
    const double result_warm_rate =
        timedRun(*result_warm, grid_cases, specs, sweep);

    const size_t cells = grid_cases.size() * specs.size();
    auto add_row = [&](const char *mode, double rate) {
        grid_table.addRow({mode, std::to_string(cells),
                           Table::num(rate, 1),
                           Table::num(rate / percell_rate, 2) + "x"});
    };
    add_row("per-cell (PR 1)", percell_rate);
    add_row("shared, cold store", cold_rate);
    add_row("shared, warm store", warm_rate);
    add_row("warm result store", result_warm_rate);
    bench::emit(grid_table, opts);

    if (warm_hits != grid_cases.size()) {
        std::cerr << "warm run loaded " << warm_hits
                  << " profiles, expected " << grid_cases.size() << "\n";
        return 1;
    }
    const double share_speedup = warm_rate / percell_rate;
    std::cout << "\nwarm-store speedup: " << Table::num(share_speedup, 2)
              << "x over the per-cell pipeline at " << specs.size()
              << " spec variants (gate: >= 3x, cold "
              << Table::num(cold_rate / percell_rate, 2)
              << "x, warm results "
              << Table::num(result_warm_rate / percell_rate, 2)
              << "x)\n";
    const bool share_gate_ok = share_speedup >= 3.0;

    // ---------------------------------------------------------------
    // Study 3: streaming delivery — time to first result. Two specs
    // whose COLD calibrations cost very differently: the task graph
    // must stream the quick spec's finished cells out while the slow
    // spec's microbenchmark sweep is still running, so the first
    // result lands before the last calibration completes (a blocking
    // run() delivers nothing until the whole batch drains).
    // ---------------------------------------------------------------
    printBanner(std::cout,
                "streaming delivery (time to first result, cold "
                "calibrations)");

    arch::GpuSpec quick = arch::GpuSpec::gtx285();
    quick.name = "GTX tiny (quick calibration)";
    quick.numSms = 3;
    quick.maxWarpsPerSm = 8;
    quick.maxThreadsPerSm = 256;
    quick.maxThreadsPerBlock = 256;
    quick.validate();
    arch::GpuSpec slow_cal = arch::GpuSpec::gtx285();
    slow_cal.name = "GTX mid (slow calibration)";
    slow_cal.numSms = 15;
    slow_cal.maxWarpsPerSm = 16;
    slow_cal.maxThreadsPerSm = 512;
    slow_cal.validate();

    const auto stream_cases = makeBatch(6, false);
    driver::BatchRunner::Options stream_opts;
    stream_opts.numThreads = 4;
    driver::BatchRunner streamer(stream_opts); // cold: no adopt, no store
    size_t stream_ok = 0;
    const auto stream_stats = streamer.runStream(
        stream_cases, {quick, slow_cal}, sweep,
        [&stream_ok](size_t, driver::BatchResult r) {
            stream_ok += r.ok ? 1 : 0;
        });
    if (stream_ok != stream_cases.size() * 2) {
        std::cerr << "streaming study had failing analyses\n";
        return 1;
    }

    // run() is runStream + reorder: its time-to-first-result IS the
    // drain time, so the same run yields the blocking baseline.
    Table stream_table({"delivery", "first result (s)",
                        "last calibration (s)", "batch total (s)"});
    stream_table.addRow({"streaming (runStream)",
                         Table::num(stream_stats.firstResultSeconds, 3),
                         Table::num(stream_stats.lastCalibrationSeconds,
                                    3),
                         Table::num(stream_stats.totalSeconds, 3)});
    stream_table.addRow({"blocking (run)",
                         Table::num(stream_stats.totalSeconds, 3), "-",
                         Table::num(stream_stats.totalSeconds, 3)});
    bench::emit(stream_table, opts);

    const bool stream_gate_ok = stream_stats.firstResultSeconds <
                                stream_stats.lastCalibrationSeconds;
    std::cout << "\ntime to first result: "
              << Table::num(stream_stats.firstResultSeconds, 3)
              << "s streaming vs "
              << Table::num(stream_stats.totalSeconds, 3)
              << "s blocking — "
              << Table::num(stream_stats.totalSeconds /
                                stream_stats.firstResultSeconds,
                            1)
              << "x earlier (gate: first result before the slowest "
                 "calibration finishes at "
              << Table::num(stream_stats.lastCalibrationSeconds, 3)
              << "s)\n";

    // Machine-readable trajectory for CI artifacts.
    {
        std::ofstream json("bench_batch_throughput.json");
        char buf[768];
        std::snprintf(
            buf, sizeof(buf),
            "{\n  \"bench\": \"batch_throughput\",\n"
            "  \"gate\": \"%s\",\n  \"scaling_4t\": %.3f,\n"
            "  \"hardware_threads\": %d,\n  \"grid\": {\"kernels\": %zu, "
            "\"specs\": %zu},\n  \"analyses_per_sec\": "
            "{\"per_cell\": %.1f, \"shared_cold\": %.1f, "
            "\"shared_warm\": %.1f, \"warm_results\": %.1f},\n"
            "  \"streaming\": {\"first_result_sec\": %.3f, "
            "\"last_calibration_sec\": %.3f, \"total_sec\": %.3f, "
            "\"blocking_first_result_sec\": %.3f}\n}\n",
            share_gate_ok && thread_gate_ok && stream_gate_ok
                ? "pass"
                : "fail",
            scaling, hw_threads, grid_cases.size(), specs.size(),
            percell_rate, cold_rate, warm_rate, result_warm_rate,
            stream_stats.firstResultSeconds,
            stream_stats.lastCalibrationSeconds,
            stream_stats.totalSeconds, stream_stats.totalSeconds);
        json << buf;
    }

    if (!share_gate_ok)
        std::cerr << "profile-sharing gate FAILED\n";
    if (!thread_gate_ok)
        std::cerr << "thread-scaling gate FAILED\n";
    if (!stream_gate_ok)
        std::cerr << "streaming time-to-first-result gate FAILED\n";
    return share_gate_ok && thread_gate_ok && stream_gate_ok ? 0 : 1;
}
