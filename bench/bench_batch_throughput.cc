/**
 * @file
 * Batch-analysis throughput through the public AnalysisService API,
 * three studies:
 *
 * 1. Analyses per second versus worker count for a 64-point batch (a
 *    mix of coalesced, strided, bank-conflicted, stencil, reduction
 *    and histogram kernel cases, each a full functional-sim ->
 *    extraction -> prediction -> what-if workflow). Calibration
 *    happens once, outside the timed region, and is adopted by every
 *    executor. Gate: >= 2x analyses/sec at 4 threads over 1 thread
 *    (enforced with >= 4 hardware threads).
 *
 * 2. Profile sharing and the persistent store on an N x M spec-variant
 *    grid (the paper's Section 5 what-if studies): the per-cell
 *    reference pipeline re-simulates every cell; profile sharing runs
 *    N functional sims for N x M cells; a warm store skips them
 *    entirely across process restarts (service.reset() plays the
 *    restart). Gate: warm-store analyses/sec >= 3x the per-cell
 *    pipeline at M >= 4 variants (results are bit-identical either
 *    way — pinned by test_profile/test_store/test_api).
 *
 * 3. Streaming delivery: on a two-spec batch whose cold calibrations
 *    cost very differently, a streamed request must hand over the
 *    first finished cell while the slower spec's microbenchmark sweep
 *    is still running. Gate: time-to-first-result < time of the last
 *    calibration completing. Reported in bench_batch_throughput.json
 *    ("streaming").
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "api/request.h"
#include "api/service.h"
#include "bench/bench_common.h"
#include "common/thread_pool.h"
#include "store/profile_store.h"
#include "store/stats.h"

using namespace gpuperf;

namespace {

/**
 * The batch as wire-portable case refs — the same KernelJobs a spool
 * submitter would serialize. Six families (histogram included), with
 * v = i/6 varying each family's parameters injectively through the
 * 64-point batch.
 */
std::vector<api::KernelJob>
makeBatch(int points, bool full)
{
    const int scale = full ? 4 : 1;
    std::vector<api::KernelJob> jobs;
    jobs.reserve(static_cast<size_t>(points));
    for (int i = 0; i < points; ++i) {
        const std::string tag = "#" + std::to_string(i);
        const int64_t v = i / 6;
        switch (i % 6) {
          case 0:
            jobs.push_back(api::KernelJob::fromRef(
                "saxpy" + tag,
                api::CaseRef{
                    "saxpy", {(16 + 8 * v) * scale, 256}, {2.0}}));
            break;
          case 1:
            // Power-of-two grid sizes keep n a power of two, as the
            // strided case requires.
            jobs.push_back(api::KernelJob::fromRef(
                "strided" + tag,
                api::CaseRef{"saxpy-strided",
                             {(int64_t{16} << (v / 4)) * scale, 256,
                              int64_t{1} << (1 + v % 4)},
                             {}}));
            break;
          case 2:
            jobs.push_back(api::KernelJob::fromRef(
                "conflict" + tag,
                api::CaseRef{"shared-conflict",
                             {8 * scale, 128, int64_t{2} << (v % 4),
                              48 + 16 * (v / 4)},
                             {}}));
            break;
          case 3:
            jobs.push_back(api::KernelJob::fromRef(
                "stencil" + tag,
                api::CaseRef{"stencil1d",
                             {(12 + 4 * v) * scale, 256},
                             {}}));
            break;
          case 4:
            jobs.push_back(api::KernelJob::fromRef(
                "reduce" + tag,
                api::CaseRef{"reduction",
                             {(8 + 4 * v) * scale, 256},
                             {}}));
            break;
          default:
            jobs.push_back(api::KernelJob::fromRef(
                "hist" + tag,
                api::CaseRef{"histogram",
                             {(6 + 2 * v) * scale, 128, 8, 4},
                             {}}));
            break;
        }
    }
    return jobs;
}

/**
 * M spec variants differing only in timing/occupancy fields, so all
 * of them share one funcsim fingerprint (the favourable case profile
 * sharing is built for; a variant like gtx285PrimeBanks() would
 * simply recompute under its own fingerprint).
 */
std::vector<arch::GpuSpec>
makeSpecGrid()
{
    std::vector<arch::GpuSpec> specs;
    specs.push_back(arch::GpuSpec::gtx285());
    specs.push_back(arch::GpuSpec::gtx285MoreBlocks());
    specs.push_back(arch::GpuSpec::gtx285BigResources());
    arch::GpuSpec oc = arch::GpuSpec::gtx285();
    oc.name = "GTX 285 + 25% core clock";
    oc.coreClockHz *= 1.25;
    specs.push_back(oc);
    arch::GpuSpec slow = arch::GpuSpec::gtx285();
    slow.name = "GTX 285 + 2x memory latency";
    slow.globalLatencyCycles *= 2;
    specs.push_back(slow);
    arch::GpuSpec deep = arch::GpuSpec::gtx285();
    deep.name = "GTX 285 + deeper ALU pipeline";
    deep.aluDepCycles += 12;
    specs.push_back(deep);
    return specs;
}

/** Time one request; returns analyses/sec, exits on any failure. */
double
timedRun(api::AnalysisService &service, const api::AnalysisRequest &req)
{
    const auto start = std::chrono::steady_clock::now();
    const api::AnalysisResponse resp = service.run(req);
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    for (const auto &r : resp.cells) {
        if (!r.ok) {
            std::cerr << "failing analysis: " << r.kernelName << " x "
                      << r.specName << ": " << r.error << "\n";
            std::exit(1);
        }
    }
    return static_cast<double>(resp.cells.size()) / elapsed.count();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    const int points = 64;

    printBanner(std::cout, "batch-analysis throughput vs threads");

    api::AnalysisService service;

    // Calibrate once, outside the timed region, via a cache-backed
    // policy; every executor below adopts this one table set.
    std::cout << "calibrating " << spec.name
              << " (cached across bench runs)...\n";
    api::AnalysisRequest cal_req;
    cal_req.jobName = "bench-calibration";
    cal_req.store.calibrationCacheDir = ".";
    const auto tables = service.calibrationFor(cal_req, spec);

    api::AnalysisRequest base;
    base.jobName = "bench-batch-throughput";
    base.sweep.noBankConflicts = true;
    base.sweep.coalescingFractions = {1.0};
    base.kernels = makeBatch(points, opts.full);
    base.specs = {spec};

    Table t({"threads", "analyses", "seconds", "analyses/sec",
             "speedup vs 1T"});
    double base_rate = 0.0;
    double rate_at_4 = 0.0;
    for (int threads : {1, 2, 4, 8}) {
        api::AnalysisRequest req = base;
        req.exec.numThreads = threads;
        service.adoptCalibration(req, spec, tables);

        const auto start = std::chrono::steady_clock::now();
        const api::AnalysisResponse resp = service.run(req);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;

        int ok = 0;
        for (const auto &r : resp.cells)
            ok += r.ok ? 1 : 0;
        if (ok != points) {
            std::cerr << "batch had " << points - ok
                      << " failing analyses\n";
            return 1;
        }

        const double rate = points / elapsed.count();
        if (threads == 1)
            base_rate = rate;
        if (threads == 4)
            rate_at_4 = rate;
        t.addRow({std::to_string(threads), std::to_string(points),
                  Table::num(elapsed.count(), 3), Table::num(rate, 1),
                  Table::num(rate / base_rate, 2) + "x"});
    }
    bench::emit(t, opts);

    const double scaling = rate_at_4 / base_rate;
    const int hw_threads = ThreadPool::resolveThreads(0);
    std::cout << "\n4-thread scaling: " << Table::num(scaling, 2)
              << "x on " << hw_threads
              << " hardware threads (gate: >= 2x with >= 4 hardware "
                 "threads)\n";
    bool thread_gate_ok = scaling >= 2.0;
    if (hw_threads < 4) {
        std::cout << "thread gate not applicable: this machine cannot "
                     "run 4 analyses concurrently\n";
        thread_gate_ok = true;
    } else if (const char *mode = std::getenv("GPUPERF_THREAD_GATE");
               mode && std::string(mode) == "report") {
        // Shared CI runners report 4 vCPUs that are really 2 noisy
        // SMT cores; scaling there is not a property of this code.
        // CI sets report-only mode; the gate stays enforced locally.
        std::cout << "thread gate in report-only mode "
                     "(GPUPERF_THREAD_GATE=report)\n";
        thread_gate_ok = true;
    }

    // ---------------------------------------------------------------
    // Study 2: profile sharing + persistent store on an N x M grid.
    // ---------------------------------------------------------------
    const auto specs = makeSpecGrid();
    api::AnalysisRequest grid = base;
    grid.kernels = makeBatch(opts.full ? 32 : 16, opts.full);
    grid.specs = specs;
    grid.exec.numThreads = 0;
    printBanner(std::cout,
                "profile sharing & store (" +
                    std::to_string(grid.kernels.size()) +
                    " kernels x " + std::to_string(specs.size()) +
                    " spec variants)");

    const std::string store_dir = "batch_store_bench";
    (void)std::system(("rm -rf " + store_dir).c_str());

    const auto policy_run = [&](api::ExecutionPolicy::Pipeline pipeline,
                                const std::string &dir,
                                bool reuse_results) {
        api::AnalysisRequest req = grid;
        req.exec.pipeline = pipeline;
        req.store.storeDir = dir;
        req.store.reuseStoredResults = reuse_results;
        for (const auto &s : specs)
            service.adoptCalibration(req, s, tables);
        return req;
    };

    Table grid_table({"mode", "analyses", "analyses/sec",
                      "speedup vs per-cell"});
    // Reference pipeline: every cell re-runs the functional simulator.
    const double percell_rate = timedRun(
        service,
        policy_run(api::ExecutionPolicy::Pipeline::kPerCell, "",
                   false));
    // Profile sharing, cold store: N functional sims for N x M cells,
    // profiles written to disk as a side effect.
    const double cold_rate = timedRun(
        service, policy_run(api::ExecutionPolicy::Pipeline::kShared,
                            store_dir, false));
    // Warm store after a "process restart" (reset() drops every
    // executor and its in-memory memos): profiles load from disk,
    // zero functional simulation.
    service.reset();
    const api::AnalysisRequest warm_req =
        policy_run(api::ExecutionPolicy::Pipeline::kShared, store_dir,
                   false);
    const double warm_rate = timedRun(service, warm_req);
    const uint64_t warm_hits =
        service.executorFor(warm_req).profileStore()->hits();
    // Warm result store: whole cells served from disk.
    service.reset();
    const double result_warm_rate = timedRun(
        service, policy_run(api::ExecutionPolicy::Pipeline::kShared,
                            store_dir, true));

    const size_t cells = grid.kernels.size() * specs.size();
    auto add_row = [&](const char *mode, double rate) {
        grid_table.addRow({mode, std::to_string(cells),
                           Table::num(rate, 1),
                           Table::num(rate / percell_rate, 2) + "x"});
    };
    add_row("per-cell (reference)", percell_rate);
    add_row("shared, cold store", cold_rate);
    add_row("shared, warm store", warm_rate);
    add_row("warm result store", result_warm_rate);
    bench::emit(grid_table, opts);

    if (warm_hits != grid.kernels.size()) {
        std::cerr << "warm run loaded " << warm_hits
                  << " profiles, expected " << grid.kernels.size()
                  << "\n";
        return 1;
    }
    const double share_speedup = warm_rate / percell_rate;
    std::cout << "\nwarm-store speedup: " << Table::num(share_speedup, 2)
              << "x over the per-cell pipeline at " << specs.size()
              << " spec variants (gate: >= 3x, cold "
              << Table::num(cold_rate / percell_rate, 2)
              << "x, warm results "
              << Table::num(result_warm_rate / percell_rate, 2)
              << "x)\n";
    const bool share_gate_ok = share_speedup >= 3.0;

    // ---------------------------------------------------------------
    // Study 3: streaming delivery — time to first result. Two specs
    // whose COLD calibrations cost very differently: the task graph
    // must stream the quick spec's finished cells out while the slow
    // spec's microbenchmark sweep is still running, so the first
    // result lands before the last calibration completes (a blocking
    // run delivers nothing until the whole batch drains).
    // ---------------------------------------------------------------
    printBanner(std::cout,
                "streaming delivery (time to first result, cold "
                "calibrations)");

    arch::GpuSpec quick = arch::GpuSpec::gtx285();
    quick.name = "GTX tiny (quick calibration)";
    quick.numSms = 3;
    quick.maxWarpsPerSm = 8;
    quick.maxThreadsPerSm = 256;
    quick.maxThreadsPerBlock = 256;
    quick.validate();
    arch::GpuSpec slow_cal = arch::GpuSpec::gtx285();
    slow_cal.name = "GTX mid (slow calibration)";
    slow_cal.numSms = 15;
    slow_cal.maxWarpsPerSm = 16;
    slow_cal.maxThreadsPerSm = 512;
    slow_cal.validate();

    api::AnalysisRequest stream_req = base;
    stream_req.jobName = "bench-streaming";
    stream_req.kernels = makeBatch(6, false);
    stream_req.specs = {quick, slow_cal};
    stream_req.exec.numThreads = 4;
    stream_req.exec.delivery = api::ExecutionPolicy::Delivery::kStream;

    // A fresh service: the streaming study measures COLD calibration
    // overlap, so nothing may be adopted or memoized.
    api::AnalysisService cold_service;
    size_t stream_ok = 0;
    api::StreamStats stream_stats;
    cold_service.execute(
        stream_req,
        [&stream_ok](size_t, const driver::BatchResult &r) {
            stream_ok += r.ok ? 1 : 0;
        },
        &stream_stats);
    if (stream_ok != stream_req.kernels.size() * 2) {
        std::cerr << "streaming study had failing analyses\n";
        return 1;
    }

    // A blocking run is runStream + reorder: its time-to-first-result
    // IS the drain time, so the same run yields the blocking baseline.
    Table stream_table({"delivery", "first result (s)",
                        "last calibration (s)", "batch total (s)"});
    stream_table.addRow({"streaming (kStream)",
                         Table::num(stream_stats.firstResultSeconds, 3),
                         Table::num(stream_stats.lastCalibrationSeconds,
                                    3),
                         Table::num(stream_stats.totalSeconds, 3)});
    stream_table.addRow({"blocking (kCollect)",
                         Table::num(stream_stats.totalSeconds, 3), "-",
                         Table::num(stream_stats.totalSeconds, 3)});
    bench::emit(stream_table, opts);

    const bool stream_gate_ok = stream_stats.firstResultSeconds <
                                stream_stats.lastCalibrationSeconds;
    std::cout << "\ntime to first result: "
              << Table::num(stream_stats.firstResultSeconds, 3)
              << "s streaming vs "
              << Table::num(stream_stats.totalSeconds, 3)
              << "s blocking — "
              << Table::num(stream_stats.totalSeconds /
                                stream_stats.firstResultSeconds,
                            1)
              << "x earlier (gate: first result before the slowest "
                 "calibration finishes at "
              << Table::num(stream_stats.lastCalibrationSeconds, 3)
              << "s)\n";

    // Machine-readable trajectory for CI artifacts.
    {
        std::ofstream json("bench_batch_throughput.json");
        char buf[768];
        std::snprintf(
            buf, sizeof(buf),
            "{\n  \"bench\": \"batch_throughput\",\n"
            "  \"gate\": \"%s\",\n  \"scaling_4t\": %.3f,\n"
            "  \"hardware_threads\": %d,\n  \"grid\": {\"kernels\": %zu, "
            "\"specs\": %zu},\n  \"analyses_per_sec\": "
            "{\"per_cell\": %.1f, \"shared_cold\": %.1f, "
            "\"shared_warm\": %.1f, \"warm_results\": %.1f},\n"
            "  \"streaming\": {\"first_result_sec\": %.3f, "
            "\"last_calibration_sec\": %.3f, \"total_sec\": %.3f, "
            "\"blocking_first_result_sec\": %.3f},\n",
            share_gate_ok && thread_gate_ok && stream_gate_ok
                ? "pass"
                : "fail",
            scaling, hw_threads, grid.kernels.size(), specs.size(),
            percell_rate, cold_rate, warm_rate, result_warm_rate,
            stream_stats.firstResultSeconds,
            stream_stats.lastCalibrationSeconds,
            stream_stats.totalSeconds, stream_stats.totalSeconds);
        json << buf;
        // Store cache-health counters across every study above (the
        // warm legs show up as hits, the cold legs as misses+writes).
        json << "  \"store\": "
             << store::storeLayerStatsJson(service.storeStats(), "  ")
             << "\n}\n";
    }

    if (!share_gate_ok)
        std::cerr << "profile-sharing gate FAILED\n";
    if (!thread_gate_ok)
        std::cerr << "thread-scaling gate FAILED\n";
    if (!stream_gate_ok)
        std::cerr << "streaming time-to-first-result gate FAILED\n";
    return share_gate_ok && thread_gate_ok && stream_gate_ok ? 0 : 1;
}
