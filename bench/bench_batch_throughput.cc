/**
 * @file
 * Batch-analysis throughput: analyses per second versus worker count
 * for a 64-point batch (a mix of coalesced, strided and
 * bank-conflicted kernel cases, each a full functional-sim ->
 * extraction -> prediction -> what-if workflow). Calibration happens
 * once, outside the timed region, and is shared by every worker —
 * the point of the batch driver.
 *
 * The scaling gate this repo's CI cares about: >= 2x analyses/sec at
 * 4 threads over 1 thread. The gate is enforced when the machine has
 * at least 4 hardware threads; on smaller machines (e.g. single-core
 * CI containers) thread scaling is physically impossible, so the
 * bench still prints the table but reports the gate as not
 * applicable.
 */

#include <chrono>

#include "bench/bench_common.h"
#include "common/thread_pool.h"
#include "driver/batch_runner.h"
#include "driver/demo_cases.h"

using namespace gpuperf;

namespace {

std::vector<driver::KernelCase>
makeBatch(int points, bool full)
{
    const int scale = full ? 4 : 1;
    std::vector<driver::KernelCase> cases;
    cases.reserve(static_cast<size_t>(points));
    for (int i = 0; i < points; ++i) {
        const std::string tag = "#" + std::to_string(i);
        switch (i % 3) {
          case 0:
            cases.push_back(driver::makeSaxpyCase(
                "saxpy" + tag, (16 + 8 * (i % 4)) * scale, 256, 2.0f));
            break;
          case 1:
            cases.push_back(driver::makeStridedSaxpyCase(
                "strided" + tag, 16 * scale, 256, 1 << (1 + i % 4)));
            break;
          default:
            cases.push_back(driver::makeSharedConflictCase(
                "conflict" + tag, 8 * scale, 128, 2 << (i % 3), 48));
            break;
        }
    }
    return cases;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    const int points = 64;

    printBanner(std::cout, "batch-analysis throughput vs threads");

    // Calibrate once, outside the timed region; every runner below
    // adopts this one table set.
    std::cout << "calibrating " << spec.name
              << " (cached across bench runs)...\n";
    model::AnalysisSession calibration_session(spec);
    calibration_session.calibrator().setCacheFile(
        bench::calibrationCacheFile(spec));
    const auto tables = calibration_session.shareCalibration();

    driver::SweepSpec sweep;
    sweep.noBankConflicts = true;
    sweep.coalescingFractions = {1.0};

    const auto cases = makeBatch(points, opts.full);

    Table t({"threads", "analyses", "seconds", "analyses/sec",
             "speedup vs 1T"});
    double base_rate = 0.0;
    double rate_at_4 = 0.0;
    for (int threads : {1, 2, 4, 8}) {
        driver::BatchRunner::Options ropts;
        ropts.numThreads = threads;
        driver::BatchRunner runner(ropts);
        runner.adoptCalibration(spec, tables);

        const auto start = std::chrono::steady_clock::now();
        const auto results = runner.run(cases, {spec}, sweep);
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;

        int ok = 0;
        for (const auto &r : results)
            ok += r.ok ? 1 : 0;
        if (ok != points) {
            std::cerr << "batch had " << points - ok
                      << " failing analyses\n";
            return 1;
        }

        const double rate = points / elapsed.count();
        if (threads == 1)
            base_rate = rate;
        if (threads == 4)
            rate_at_4 = rate;
        t.addRow({std::to_string(threads), std::to_string(points),
                  Table::num(elapsed.count(), 3), Table::num(rate, 1),
                  Table::num(rate / base_rate, 2) + "x"});
    }
    bench::emit(t, opts);

    const double scaling = rate_at_4 / base_rate;
    const int hw_threads = ThreadPool::resolveThreads(0);
    std::cout << "\n4-thread scaling: " << Table::num(scaling, 2)
              << "x on " << hw_threads
              << " hardware threads (gate: >= 2x with >= 4 hardware "
                 "threads)\n";
    if (hw_threads < 4) {
        std::cout << "gate not applicable: this machine cannot run 4 "
                     "analyses concurrently\n";
        return 0;
    }
    return scaling >= 2.0 ? 0 : 1;
}
