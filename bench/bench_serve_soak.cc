/**
 * @file
 * Soak the gpuperf-serve socket server: one in-process daemon with a
 * Unix-domain and a TCP listener, >= 8 concurrent clients split
 * across the two transports, each firing a stream of framed
 * AnalysisRequests at the shared AnalysisService. Calibration is
 * adopted up front (the transport is the subject, not the
 * microbenchmarks).
 *
 * Gates (reported in bench_serve_soak.json):
 *  - every response from every client over both transports is
 *    bit-identical (api::responsesEqual) to in-process execution of
 *    the same request;
 *  - zero transport errors (no disconnects, no rejections, every
 *    request answered).
 * Latency p50/p99 and requests/sec are reported per transport for
 * trend tracking; they gate nothing (CI machines vary too much).
 */

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/client.h"
#include "api/codecs.h"
#include "api/server.h"
#include "bench/bench_common.h"

using namespace gpuperf;

namespace {

model::CalibrationTables
fakeTables()
{
    model::CalibrationTables t;
    t.maxWarps = 32;
    t.bytesPerPass = 64;
    for (int type = 0; type < arch::kNumInstrTypes; ++type) {
        t.instrThroughput[type].assign(33, 0.0);
        for (int w = 1; w <= 32; ++w)
            t.instrThroughput[type][w] = 1e10 * std::min(1.0, w / 8.0);
    }
    t.sharedPassThroughput.assign(33, 0.0);
    for (int w = 1; w <= 32; ++w)
        t.sharedPassThroughput[w] = 2e10 * std::min(1.0, w / 8.0);
    return t;
}

api::AnalysisRequest
soakRequest()
{
    api::AnalysisRequest req;
    req.jobName = "serve-soak";
    req.kernels.push_back(api::KernelJob::fromRef(
        "saxpy", api::CaseRef{"saxpy", {8, 128}, {2.0}}));
    req.kernels.push_back(api::KernelJob::fromRef(
        "conflicted",
        api::CaseRef{"shared-conflict", {8, 128, 8, 32}, {}}));
    req.kernels.push_back(api::KernelJob::fromRef(
        "hist", api::CaseRef{"histogram", {6, 128, 8, 4}, {}}));
    req.specs.push_back(arch::GpuSpec::gtx285());
    req.specs.push_back(arch::GpuSpec::gtx285MoreBlocks());
    req.sweep.noBankConflicts = true;
    req.sweep.warpsPerSm = {8.0, 32.0};
    req.sweep.coalescingFractions = {1.0};
    req.exec.numThreads = 2;
    return req;
}

/** The small half of the mixed load: one kernel instead of three. */
api::AnalysisRequest
smallRequest(const api::AnalysisRequest &full)
{
    api::AnalysisRequest req = full;
    req.kernels.resize(1);
    return req;
}

struct ClientResult
{
    bench::LatencyBreakdown latencies;
    size_t mismatches = 0;
    std::string error;
};

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const int clients = opts.full ? 16 : 8;
    const int requests_per_client = opts.full ? 12 : 4;

    const std::string sock_path = "/tmp/gpuperf-soak-" +
                                  std::to_string(::getpid()) + ".sock";
    api::Server server(std::vector<api::Endpoint>{
        api::Endpoint::parse("unix:" + sock_path,
                             api::Endpoint::Role::kServer),
        api::Endpoint::parse("tcp:127.0.0.1:0", // ephemeral
                             api::Endpoint::Role::kServer)});
    server.start();

    const api::AnalysisRequest req = soakRequest();
    const auto tables =
        std::make_shared<const model::CalibrationTables>(fakeTables());
    for (const arch::GpuSpec &spec : req.specs)
        server.service().adoptCalibration(req, spec, tables);

    // The mixed load: clients alternate the full three-kernel batch
    // with a one-kernel request, so the small/large latency classes
    // in the report describe genuinely different work.
    const api::AnalysisRequest small_req = smallRequest(req);

    // The in-process references every served response must match.
    api::AnalysisService reference;
    for (const arch::GpuSpec &spec : req.specs)
        reference.adoptCalibration(req, spec, tables);
    const api::AnalysisResponse want = reference.run(req);
    const api::AnalysisResponse want_small = reference.run(small_req);

    std::vector<ClientResult> results(clients);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            ClientResult &out = results[c];
            try {
                // Even clients speak Unix, odd ones TCP.
                api::ServeClient client =
                    (c % 2 == 0)
                        ? api::ServeClient::overUnix(
                              sock_path)
                        : api::ServeClient::overTcp(
                              "127.0.0.1", server.tcpPort());
                for (int r = 0; r < requests_per_client; ++r) {
                    const bool large = r % 2 == 0;
                    const auto start =
                        std::chrono::steady_clock::now();
                    const api::AnalysisResponse got =
                        client.run(large ? req : small_req);
                    const std::chrono::duration<double, std::milli>
                        ms = std::chrono::steady_clock::now() - start;
                    out.latencies.add(large, ms.count());
                    if (!api::responsesEqual(
                            got, large ? want : want_small))
                        ++out.mismatches;
                }
            } catch (const std::exception &e) {
                out.error = e.what();
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - t0;

    size_t answered = 0, mismatches = 0, errors = 0;
    std::vector<double> unix_ms, tcp_ms;
    bench::LatencyBreakdown by_size;
    for (int c = 0; c < clients; ++c) {
        const std::vector<double> client_ms =
            results[c].latencies.all();
        answered += client_ms.size();
        mismatches += results[c].mismatches;
        if (!results[c].error.empty()) {
            ++errors;
            std::cerr << "client " << c << ": " << results[c].error
                      << "\n";
        }
        auto &bucket = (c % 2 == 0) ? unix_ms : tcp_ms;
        bucket.insert(bucket.end(), client_ms.begin(),
                      client_ms.end());
        for (double ms : results[c].latencies.smallMs)
            by_size.add(false, ms);
        for (double ms : results[c].latencies.largeMs)
            by_size.add(true, ms);
    }
    const size_t expected_answers =
        static_cast<size_t>(clients) * requests_per_client;
    const double rps = static_cast<double>(answered) / wall.count();
    const api::ServerStats stats = server.stats();
    server.stop();
    std::remove(sock_path.c_str());

    const bool gate_ok = answered == expected_answers &&
                         mismatches == 0 && errors == 0 &&
                         stats.disconnects == 0;

    std::cout << "gpuperf-serve soak: " << clients << " clients x "
              << requests_per_client << " requests, "
              << want.cells.size() << " cells each\n";
    Table t({"transport", "requests", "p50 ms", "p99 ms"});
    t.addRow({"unix", Table::num(unix_ms.size(), 0),
              Table::num(bench::percentileMs(unix_ms, 0.50), 1),
              Table::num(bench::percentileMs(unix_ms, 0.99), 1)});
    t.addRow({"tcp", Table::num(tcp_ms.size(), 0),
              Table::num(bench::percentileMs(tcp_ms, 0.50), 1),
              Table::num(bench::percentileMs(tcp_ms, 0.99), 1)});
    bench::emit(t, opts);
    std::cout << "\n"
              << answered << "/" << expected_answers
              << " requests answered, " << mismatches
              << " mismatches, " << Table::num(rps, 1)
              << " requests/sec overall — gate "
              << (gate_ok ? "PASS" : "FAIL") << "\n";

    {
        std::ofstream json("bench_serve_soak.json");
        char buf[768];
        std::snprintf(
            buf, sizeof(buf),
            "{\n  \"bench\": \"serve_soak\",\n  \"gate\": \"%s\",\n"
            "  \"clients\": %d,\n  \"requests_per_client\": %d,\n"
            "  \"answered\": %zu,\n  \"mismatches\": %zu,\n"
            "  \"client_errors\": %zu,\n  \"disconnects\": %llu,\n"
            "  \"requests_per_sec\": %.1f,\n"
            "  \"latency_ms\": {\"unix\": {\"p50\": %.2f, "
            "\"p99\": %.2f}, \"tcp\": {\"p50\": %.2f, "
            "\"p99\": %.2f}},\n",
            gate_ok ? "pass" : "fail", clients, requests_per_client,
            answered, mismatches, errors,
            static_cast<unsigned long long>(stats.disconnects), rps,
            bench::percentileMs(unix_ms, 0.50),
            bench::percentileMs(unix_ms, 0.99),
            bench::percentileMs(tcp_ms, 0.50),
            bench::percentileMs(tcp_ms, 0.99));
        json << buf;
        json << "  \"latency_by_size\": " << by_size.json() << "\n}\n";
    }
    return gate_ok ? 0 : 1;
}
