/**
 * @file
 * Reproduces paper Figure 2 (right): shared-memory bandwidth as a
 * function of warps per SM, measured by the shared-copy
 * microbenchmark. Shared memory has a longer pipeline than the ALU,
 * so it needs more warps to saturate.
 */

#include "bench_common.h"

using namespace gpuperf;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    model::AnalysisSession session(
        spec, bench::cachedSessionConfig(spec));
    const model::CalibrationTables &tables = session.calibrator().tables();

    printBanner(std::cout,
                "Figure 2 (right): shared memory bandwidth vs warps/SM");
    Table t({"warps/SM", "bandwidth (GB/s)", "fraction of peak"});
    const double peak = spec.peakSharedBandwidth();
    for (int w = 1; w <= tables.maxWarps; ++w) {
        const double bw = tables.sharedBandwidth(w);
        t.addRow({std::to_string(w), Table::num(bw / 1e9, 0),
                  Table::num(bw / peak, 3)});
    }
    bench::emit(t, opts);

    std::cout << "\n(Theoretical peak "
              << Table::num(peak / 1e9, 0)
              << " GB/s; the paper measured ~870 GB/s at 6 warps, "
                 "~1112 at 16, ~1165 at 32 — saturation arrives later "
                 "than the instruction pipeline's.)\n";
    return 0;
}
