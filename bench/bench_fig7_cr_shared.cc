/**
 * @file
 * Reproduces paper Figure 7: (a) the sustained shared-memory
 * bandwidth of each forward-reduction step under its warp-level
 * parallelism, and (b) the number of shared-memory transactions per
 * step with and without bank conflicts — conflicts double per step
 * while the work halves, so the transaction count stays flat.
 */

#include "apps/tridiag/cyclic_reduction.h"
#include "bench_common.h"

using namespace gpuperf;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    const int n = 512;
    const int systems = 512;
    model::AnalysisSession session(
        spec, bench::cachedSessionConfig(spec));

    funcsim::GlobalMemory gmem(64 << 20);
    apps::TridiagProblem p =
        apps::makeTridiagProblem(gmem, n, systems, false);
    isa::Kernel k = apps::makeCyclicReductionKernel(p, true);
    funcsim::RunOptions run;
    run.homogeneous = true;
    model::Analysis a = session.analyze(k, p.launch(), gmem, run);

    printBanner(std::cout,
                "Figure 7(a): sustained shared bandwidth per step");
    Table bw({"step", "warps/SM", "shared bandwidth (GB/s)"});
    double bw_sum = 0.0;
    int bw_count = 0;
    const auto &stages = a.prediction.stages;
    for (size_t i = 1; i < stages.size(); ++i) {
        bw.addRow({std::to_string(i),
                   Table::num(stages[i].activeWarpsPerSm, 0),
                   Table::num(stages[i].sharedBandwidth / 1e9, 0)});
        bw_sum += stages[i].sharedBandwidth;
        ++bw_count;
    }
    bench::emit(bw, opts);
    std::cout << "average: " << Table::num(bw_sum / bw_count / 1e9, 0)
              << " GB/s (paper: 1029, 723, 470, 330 for steps 1-3 and "
                 "4+, average 397)\n";

    printBanner(std::cout,
                "Figure 7(b): shared transactions per step");
    Table tx({"step", "with bank conflicts", "no bank conflicts"});
    const auto &st = a.measurement.stats.stages;
    for (size_t i = 1; i < st.size(); ++i) {
        tx.addRow({std::to_string(i),
                   Table::big(static_cast<long long>(
                       st[i].sharedTransactions)),
                   Table::big(static_cast<long long>(
                       st[i].sharedTransactionsIdeal))});
    }
    bench::emit(tx, opts);
    std::cout << "\n(Paper: with conflicts the count stays at 139,264 "
                 "for steps 1-4 while the conflict-free count halves "
                 "each step: 139,264 / 69,632 / 34,816 / 17,408.)\n";
    return 0;
}
