/**
 * @file
 * Scheduling-policy fairness bench: a two-worker fleet under a mixed
 * load — a "bulk" client flooding expensive requests while an
 * "interactive" client trickles cheap ones — run once per scheduling
 * policy (fifo, biggest-first, sjf, fair-share) on an otherwise
 * identical rig. Worker time per cell is pinned by an onJob sleep
 * (bulk cells ~25x dearer than interactive ones), so queueing — the
 * thing the policies differ on — dominates measured latency.
 *
 * Gates (reported in bench_sched_fairness.json):
 *  - every response under every policy is bit-identical
 *    (api::responsesEqual) to the FIFO run — policies reorder WORK,
 *    never results;
 *  - the interactive client's p99 latency under sjf beats FIFO by
 *    >= kSjfGateFactor, and under fair-share by >= kFairGateFactor
 *    (small jobs stop waiting out the flood; fair-share trades a
 *    little of sjf's tail for bulk progress, hence the lower bar).
 * The latency gate is report-only in debug builds (and with
 * GPUPERF_SCHED_GATE=report), like bench_funcsim's speedup gate.
 */

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/client.h"
#include "api/codecs.h"
#include "api/dispatch.h"
#include "api/registry.h"
#include "api/server.h"
#include "bench/bench_common.h"

using namespace gpuperf;

namespace {

constexpr double kSjfGateFactor = 1.5;
constexpr double kFairGateFactor = 1.2;

model::CalibrationTables
fakeTables()
{
    model::CalibrationTables t;
    t.maxWarps = 32;
    t.bytesPerPass = 64;
    for (int type = 0; type < arch::kNumInstrTypes; ++type) {
        t.instrThroughput[type].assign(33, 0.0);
        for (int w = 1; w <= 32; ++w)
            t.instrThroughput[type][w] = 1e10 * std::min(1.0, w / 8.0);
    }
    t.sharedPassThroughput.assign(33, 0.0);
    for (int w = 1; w <= 32; ++w)
        t.sharedPassThroughput[w] = 2e10 * std::min(1.0, w / 8.0);
    return t;
}

/**
 * The bulk client's request: three cells whose big launches make the
 * static cost model price them far above the interactive cells even
 * before any observations land.
 */
api::AnalysisRequest
bulkRequest()
{
    api::AnalysisRequest req;
    req.jobName = "bulk";
    req.clientId = "bulk";
    req.kernels.push_back(api::KernelJob::fromRef(
        "saxpy-big", api::CaseRef{"saxpy", {16, 256}, {2.0}}));
    req.kernels.push_back(api::KernelJob::fromRef(
        "conflicted-big",
        api::CaseRef{"shared-conflict", {16, 256, 8, 32}, {}}));
    req.kernels.push_back(api::KernelJob::fromRef(
        "hist-big", api::CaseRef{"histogram", {12, 256, 8, 4}, {}}));
    req.specs.push_back(arch::GpuSpec::gtx285());
    req.sweep.noBankConflicts = true;
    req.sweep.warpsPerSm = {8.0};
    req.sweep.coalescingFractions = {1.0};
    req.exec.numThreads = 2;
    return req;
}

/** The interactive client's request: one tiny-launch cell. */
api::AnalysisRequest
interactiveRequest()
{
    api::AnalysisRequest req;
    req.jobName = "interactive";
    req.clientId = "interactive";
    req.kernels.push_back(api::KernelJob::fromRef(
        "saxpy-small", api::CaseRef{"saxpy", {2, 64}, {2.0}}));
    req.specs.push_back(arch::GpuSpec::gtx285());
    req.sweep.noBankConflicts = true;
    req.sweep.warpsPerSm = {8.0};
    req.sweep.coalescingFractions = {1.0};
    req.exec.numThreads = 2;
    return req;
}

void
adoptBothShapes(api::AnalysisService &service,
                const api::AnalysisRequest &req)
{
    static const auto tables =
        std::make_shared<const model::CalibrationTables>(fakeTables());
    api::AnalysisRequest cell_shaped = req;
    cell_shaped.exec.numThreads = 1;
    for (const arch::GpuSpec &spec : req.specs) {
        service.adoptCalibration(req, spec, tables);
        service.adoptCalibration(cell_shaped, spec, tables);
    }
}

struct PolicyResult
{
    std::string policy;
    std::vector<double> interactiveMs;
    std::vector<api::AnalysisResponse> bulkResponses;
    std::vector<api::AnalysisResponse> interactiveResponses;
    size_t queueDepthPeak = 0;
    std::string error;

    double p99() const
    {
        return bench::percentileMs(interactiveMs, 0.99);
    }
};

/**
 * One full mixed-load pass under @p policy: 3 bulk flooder threads x
 * @p bulkPerFlooder requests against 2 workers (inflight 1), with
 * @p interactiveCount sequential interactive requests timed once the
 * flood's backlog is demonstrably queued.
 */
PolicyResult
runPolicy(const std::string &policy, int bulkPerFlooder,
          int interactiveCount)
{
    PolicyResult out;
    out.policy = policy;

    const std::string sock = "/tmp/gpuperf-sched-fair-" +
                             std::to_string(::getpid()) + "-" + policy +
                             ".sock";
    api::Server server(api::Endpoint::parse(
        "unix:" + sock + "?worker-inflight=1&sched=" + policy,
        api::Endpoint::Role::kServer));
    server.start();

    const api::AnalysisRequest bulk_req = bulkRequest();
    const api::AnalysisRequest inter_req = interactiveRequest();
    adoptBothShapes(server.service(), bulk_req);
    adoptBothShapes(server.service(), inter_req);

    // Two in-thread workers. The onJob sleep pins per-cell service
    // time: queueing policy, not model throughput, decides latency.
    api::AnalysisService worker_service;
    adoptBothShapes(worker_service, bulk_req);
    adoptBothShapes(worker_service, inter_req);
    std::vector<std::thread> workers;
    for (int w = 0; w < 2; ++w) {
        workers.emplace_back([&server, &worker_service, &sock, w] {
            api::WorkerLoopOptions opts;
            opts.name = "worker-" + std::to_string(w);
            opts.onJob = [](const api::AnalysisRequest &cell) {
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(
                        cell.clientId == "bulk" ? 40 : 1));
            };
            api::workerServe(
                api::Endpoint::parse("unix:" + sock,
                                     api::Endpoint::Role::kWorker),
                worker_service, nullptr, opts);
            (void)server;
        });
    }
    const auto reg_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (server.dispatcher().liveWorkers() < 2 &&
           std::chrono::steady_clock::now() < reg_deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));

    constexpr int kFlooders = 3;
    std::vector<std::vector<api::AnalysisResponse>> bulk_got(kFlooders);
    std::vector<std::string> bulk_err(kFlooders);
    std::vector<std::thread> flooders;
    for (int f = 0; f < kFlooders; ++f) {
        flooders.emplace_back([&, f] {
            try {
                api::ServeClient client =
                    api::ServeClient::overUnix(sock);
                for (int r = 0; r < bulkPerFlooder; ++r)
                    bulk_got[f].push_back(client.run(bulk_req));
            } catch (const std::exception &e) {
                bulk_err[f] = e.what();
            }
        });
    }

    // Start timing the interactive client only once the flood has a
    // real backlog queued — that backlog is the experiment.
    const auto queue_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (server.dispatcher().stats().queueDepth < 6 &&
           std::chrono::steady_clock::now() < queue_deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));

    try {
        api::ServeClient client = api::ServeClient::overUnix(sock);
        for (int r = 0; r < interactiveCount; ++r) {
            const auto start = std::chrono::steady_clock::now();
            out.interactiveResponses.push_back(client.run(inter_req));
            const std::chrono::duration<double, std::milli> ms =
                std::chrono::steady_clock::now() - start;
            out.interactiveMs.push_back(ms.count());
        }
    } catch (const std::exception &e) {
        out.error = e.what();
    }

    for (std::thread &t : flooders)
        t.join();
    for (int f = 0; f < kFlooders; ++f) {
        if (!bulk_err[f].empty() && out.error.empty())
            out.error = bulk_err[f];
        for (auto &resp : bulk_got[f])
            out.bulkResponses.push_back(std::move(resp));
    }
    out.queueDepthPeak = server.dispatcher().stats().queueDepthPeak;

    server.stop();
    for (std::thread &t : workers)
        t.join();
    std::remove(sock.c_str());
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const int bulk_per_flooder = opts.full ? 5 : 3;
    const int interactive_count = opts.full ? 16 : 10;

    const std::vector<std::string> policies = {
        "fifo", "biggest-first", "sjf", "fair-share"};
    std::vector<PolicyResult> results;
    for (const std::string &p : policies)
        results.push_back(
            runPolicy(p, bulk_per_flooder, interactive_count));
    const PolicyResult &fifo = results[0];

    // Identity pin: every policy's every response, bulk and
    // interactive, is bit-identical to the FIFO run's.
    size_t mismatches = 0, errors = 0;
    for (const PolicyResult &r : results) {
        if (!r.error.empty()) {
            ++errors;
            std::cerr << r.policy << ": " << r.error << "\n";
            continue;
        }
        if (r.bulkResponses.size() != fifo.bulkResponses.size() ||
            r.interactiveResponses.size() !=
                fifo.interactiveResponses.size()) {
            ++mismatches;
            continue;
        }
        for (const api::AnalysisResponse &resp : r.bulkResponses)
            if (!api::responsesEqual(resp, fifo.bulkResponses[0]))
                ++mismatches;
        for (const api::AnalysisResponse &resp : r.interactiveResponses)
            if (!api::responsesEqual(resp,
                                     fifo.interactiveResponses[0]))
                ++mismatches;
    }

    // Latency gate: the interactive p99 under sjf and fair-share must
    // beat FIFO by each policy's factor. biggest-first is reported
    // only (it is the adversarial baseline — bulk first — and may be
    // WORSE).
    bool latency_ok = true;
    const double fifo_p99 = fifo.p99();
    for (const PolicyResult &r : results) {
        if (r.policy == "sjf")
            latency_ok =
                latency_ok && r.p99() * kSjfGateFactor <= fifo_p99;
        else if (r.policy == "fair-share")
            latency_ok =
                latency_ok && r.p99() * kFairGateFactor <= fifo_p99;
    }

    bool latency_gated = true;
#ifndef NDEBUG
    // Debug builds time unoptimized code on shared CI machines; the
    // ordering experiment still runs, the tail gate only reports.
    latency_gated = false;
#endif
    if (const char *mode = std::getenv("GPUPERF_SCHED_GATE");
        mode && std::string(mode) == "report")
        latency_gated = false;

    const bool gate_ok = mismatches == 0 && errors == 0 &&
                         (latency_ok || !latency_gated);

    std::cout << "gpuperf sched fairness: 3 bulk flooders x "
              << bulk_per_flooder << " requests vs "
              << interactive_count
              << " interactive requests, 2 workers, per policy\n";
    Table t({"policy", "interactive p50 ms", "interactive p99 ms",
             "vs fifo", "queue peak"});
    for (const PolicyResult &r : results) {
        const double p99 = r.p99();
        t.addRow({r.policy,
                  Table::num(bench::percentileMs(r.interactiveMs, 0.50),
                             1),
                  Table::num(p99, 1),
                  r.policy == "fifo"
                      ? "-"
                      : Table::num(p99 > 0.0 ? fifo_p99 / p99 : 0.0, 2) +
                            "x",
                  Table::num(static_cast<double>(r.queueDepthPeak), 0)});
    }
    bench::emit(t, opts);
    std::cout << "\n"
              << mismatches << " response mismatches vs fifo, "
              << errors << " errors; interactive p99 gate (>= "
              << Table::num(kSjfGateFactor, 1) << "x sjf, >= "
              << Table::num(kFairGateFactor, 1)
              << "x fair-share vs fifo"
              << (latency_gated ? ") " : ", report-only) ")
              << ((latency_ok || !latency_gated) &&
                          mismatches == 0 && errors == 0
                      ? "PASS"
                      : "FAIL")
              << "\n";
    if (!latency_ok && !latency_gated)
        std::cout << "sched latency gate in report-only mode\n";

    {
        std::ofstream json("bench_sched_fairness.json");
        json << "{\n  \"bench\": \"sched_fairness\",\n  \"gate\": \""
             << (gate_ok ? "pass" : "fail") << "\",\n"
             << "  \"latency_gated\": "
             << (latency_gated ? "true" : "false") << ",\n"
             << "  \"gate_factor_sjf\": " << kSjfGateFactor << ",\n"
             << "  \"gate_factor_fair_share\": " << kFairGateFactor
             << ",\n"
             << "  \"mismatches\": " << mismatches << ",\n"
             << "  \"errors\": " << errors << ",\n  \"policies\": [";
        for (size_t i = 0; i < results.size(); ++i) {
            const PolicyResult &r = results[i];
            char buf[256];
            std::snprintf(
                buf, sizeof(buf),
                "%s\n    {\"policy\": \"%s\", \"interactive_p50\": "
                "%.2f, \"interactive_p99\": %.2f, "
                "\"speedup_vs_fifo\": %.2f, \"queue_peak\": %zu}",
                i ? "," : "", r.policy.c_str(),
                bench::percentileMs(r.interactiveMs, 0.50), r.p99(),
                r.p99() > 0.0 ? fifo_p99 / r.p99() : 0.0,
                r.queueDepthPeak);
            json << buf;
        }
        json << "\n  ]\n}\n";
    }
    return gate_ok ? 0 : 1;
}
