/**
 * @file
 * Simulator-throughput microbenchmarks (google-benchmark): how fast
 * the functional interpreter and the timing replayer run, in simulated
 * warp-instructions per second. Useful for tracking regressions in the
 * simulators themselves.
 */

#include <benchmark/benchmark.h>

#include "apps/matmul/gemm.h"
#include "apps/tridiag/cyclic_reduction.h"
#include "funcsim/interpreter.h"
#include "timing/simulator.h"

using namespace gpuperf;

namespace {

void
BM_FunctionalGemm(benchmark::State &state)
{
    const int size = static_cast<int>(state.range(0));
    arch::GpuSpec spec = arch::GpuSpec::gtx285();
    funcsim::FunctionalSimulator sim(spec);
    uint64_t ops = 0;
    for (auto _ : state) {
        funcsim::GlobalMemory gmem(
            static_cast<size_t>(size) * size * 16 + (8 << 20));
        apps::GemmProblem p = apps::makeGemmProblem(gmem, size, 16);
        auto res = sim.run(apps::makeGemmKernel(p), p.launch(), gmem);
        ops += res.stats.totalWarpInstrs();
        benchmark::DoNotOptimize(res.stats.totalMads());
    }
    state.counters["warp_instrs/s"] = benchmark::Counter(
        static_cast<double>(ops), benchmark::Counter::kIsRate);
}

void
BM_TimingReplayGemm(benchmark::State &state)
{
    const int size = static_cast<int>(state.range(0));
    arch::GpuSpec spec = arch::GpuSpec::gtx285();
    funcsim::FunctionalSimulator fsim(spec);
    funcsim::GlobalMemory gmem(
        static_cast<size_t>(size) * size * 16 + (8 << 20));
    apps::GemmProblem p = apps::makeGemmProblem(gmem, size, 16);
    funcsim::RunOptions opts;
    opts.homogeneous = true;
    opts.collectTrace = true;
    auto res = fsim.run(apps::makeGemmKernel(p), p.launch(), gmem, opts);
    timing::TimingSimulator tsim(spec);
    uint64_t ops = 0;
    for (auto _ : state) {
        auto tr = tsim.run(res.trace);
        ops += tr.totalOps;
        benchmark::DoNotOptimize(tr.cycles);
    }
    state.counters["trace_ops/s"] = benchmark::Counter(
        static_cast<double>(ops), benchmark::Counter::kIsRate);
}

void
BM_FunctionalCyclicReduction(benchmark::State &state)
{
    arch::GpuSpec spec = arch::GpuSpec::gtx285();
    funcsim::FunctionalSimulator sim(spec);
    uint64_t ops = 0;
    for (auto _ : state) {
        funcsim::GlobalMemory gmem(16 << 20);
        apps::TridiagProblem p =
            apps::makeTridiagProblem(gmem, 512, 4, false);
        auto res =
            sim.run(apps::makeCyclicReductionKernel(p), p.launch(), gmem);
        ops += res.stats.totalWarpInstrs();
    }
    state.counters["warp_instrs/s"] = benchmark::Counter(
        static_cast<double>(ops), benchmark::Counter::kIsRate);
}

BENCHMARK(BM_FunctionalGemm)->Arg(128)->Arg(256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TimingReplayGemm)->Arg(256)->Arg(512)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FunctionalCyclicReduction)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
