/**
 * @file
 * Reproduces paper Table 1 (instruction types and functional-unit
 * counts) and the Section 4 peak-throughput derivations: the
 * theoretical peak throughput of each type and the 710.4 GFLOPS
 * single-precision peak of the GTX 285.
 */

#include "bench_common.h"

using namespace gpuperf;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();

    printBanner(std::cout, "Table 1: instruction types");
    Table t({"Instruction type", "Number of functional units",
             "Example instructions", "Peak throughput (Ginstr/s)"});
    for (arch::InstrType type : arch::kAllInstrTypes) {
        t.addRow({arch::instrTypeName(type),
                  std::to_string(arch::functionalUnits(spec, type)),
                  arch::instrTypeExamples(type),
                  Table::num(arch::peakThroughput(spec, type) / 1e9, 2)});
    }
    bench::emit(t, opts);

    std::cout << "\nDerived peaks (paper Section 4):\n";
    std::cout << "  MAD throughput: "
              << Table::num(arch::peakThroughput(
                     spec, arch::InstrType::TypeII) / 1e9, 2)
              << " Ginstr/s (paper: 11.1)\n";
    std::cout << "  single-precision peak: "
              << Table::num(arch::peakFlops(spec) / 1e9, 1)
              << " GFLOPS (paper: 710.4)\n";
    std::cout << "  shared memory peak:    "
              << Table::num(spec.peakSharedBandwidth() / 1e9, 0)
              << " GB/s (paper: 1420)\n";
    std::cout << "  global memory peak:    "
              << Table::num(spec.peakGlobalBandwidth() / 1e9, 0)
              << " GB/s (paper: 160)\n";
    return 0;
}
