/**
 * @file
 * Reproduces paper Table 2: per-thread resource usage of the tiled
 * dense matrix multiply and the resulting resident blocks/warps per
 * SM for sub-matrix sizes 8x8, 16x16, and 32x32.
 */

#include "apps/matmul/gemm.h"
#include "arch/occupancy.h"
#include "bench_common.h"

using namespace gpuperf;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    const int size = opts.full ? 1024 : 256;

    printBanner(std::cout,
                "Table 2: GEMM resource usage and occupancy");
    Table t({"sub-matrix", "register", "smem (B)", "# blocks (register)",
             "# blocks (smem)", "# blocks", "# active warps",
             "binding limit"});

    for (int tile : {8, 16, 32}) {
        funcsim::GlobalMemory gmem(static_cast<size_t>(size) * size * 16 +
                                   (4 << 20));
        apps::GemmProblem p = apps::makeGemmProblem(gmem, size, tile);
        isa::Kernel k = apps::makeGemmKernel(p);
        arch::KernelResources res{k.numRegisters(), k.sharedBytes(),
                                  p.blockDim()};
        arch::Occupancy occ = arch::computeOccupancy(spec, res);
        t.addRow({std::to_string(tile) + "x" + std::to_string(tile),
                  std::to_string(k.numRegisters()),
                  std::to_string(k.sharedBytes()),
                  std::to_string(occ.blocksByRegisters),
                  std::to_string(occ.blocksBySharedMem),
                  std::to_string(occ.residentBlocks),
                  std::to_string(occ.residentWarps),
                  arch::occupancyLimitName(occ.limit)});
    }
    bench::emit(t, opts);

    std::cout << "\n(Paper Table 2: 8x8 and 16x16 run 8 blocks = 16 "
                 "warps; 32x32 is cut to min(regs, smem, 8) = 3 blocks "
                 "= 6 warps. Our register counts match the paper's "
                 "compiler output (16/30/58) within 3 registers, and "
                 "the occupancy regimes match exactly.)\n";
    return 0;
}
