/**
 * @file
 * The traditional algorithmic-level model (paper Section 3) applied to
 * the three case studies — the baseline our instruction-level model
 * improves on. GEMM is correctly called compute-bound and SpMV
 * memory-bound, but cyclic reduction lands far from both peaks and
 * the traditional model cannot explain it (paper Section 5.2).
 */

#include "apps/matmul/gemm.h"
#include "apps/spmv/kernels.h"
#include "apps/tridiag/cyclic_reduction.h"
#include "bench_common.h"
#include "model/roofline.h"

using namespace gpuperf;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    model::SimulatedDevice device(spec);

    printBanner(std::cout,
                "Traditional compute-vs-memory-bound analysis");
    Table t({"application", "GFLOPS", "GB/s", "% compute peak",
             "% memory peak", "traditional verdict"});

    auto add = [&](const char *name, double flops, double bytes,
                   double seconds) {
        model::RooflineAnalysis r =
            model::analyzeRoofline(spec, flops, bytes, seconds);
        t.addRow({name, Table::num(r.sustainedFlops / 1e9, 1),
                  Table::num(r.sustainedBandwidth / 1e9, 1),
                  Table::num(100.0 * r.computeFraction, 1),
                  Table::num(100.0 * r.memoryFraction, 1),
                  model::rooflineVerdictName(r.verdict)});
    };

    {
        const int size = opts.full ? 1024 : 512;
        funcsim::GlobalMemory gmem(
            static_cast<size_t>(size) * size * 16 + (8 << 20));
        apps::GemmProblem p = apps::makeGemmProblem(gmem, size, 16);
        funcsim::RunOptions run;
        run.homogeneous = true;
        model::Measurement m =
            device.run(apps::makeGemmKernel(p), p.launch(), gmem, run);
        // Algorithmic traffic: read A and B, write C once.
        add("dense matrix multiply (16x16)", p.flops(),
            3.0 * size * static_cast<double>(size) * 4, m.seconds());
    }
    {
        funcsim::GlobalMemory gmem(64 << 20);
        apps::TridiagProblem p =
            apps::makeTridiagProblem(gmem, 512, 512, false);
        funcsim::RunOptions run;
        run.homogeneous = true;
        model::Measurement m = device.run(
            apps::makeCyclicReductionKernel(p), p.launch(), gmem, run);
        add("tridiagonal solver (CR)", p.flops(), p.globalBytes(),
            m.seconds());
    }
    {
        apps::BlockSparseMatrix mat = apps::makeBandedBlockMatrix(
            opts.full ? 16384 : 4096, 13, 24);
        funcsim::GlobalMemory gmem(256 << 20);
        apps::SpmvVectors v = apps::makeVectors(gmem, mat);
        apps::BellDeviceMatrix bell = apps::buildBell(gmem, mat, true);
        isa::Kernel k = apps::makeBellKernel(bell, v, true, false);
        model::Measurement m = device.run(
            k, {apps::spmvGridDim(mat.blockRows), apps::kSpmvBlockDim},
            gmem);
        const double flops = 2.0 * mat.storedEntries();
        // Algorithmic traffic: matrix + indices + x + y once.
        const double bytes =
            mat.storedEntries() * 4.0 +
            mat.storedEntries() / 9.0 * 4.0 + mat.rows() * 8.0;
        add("SpMV (BELL+IMIV)", flops, bytes, m.seconds());
    }

    bench::emit(t, opts);
    std::cout << "\n(Paper Section 5.2: CR runs at ~6 GFLOPS and "
                 "~7 GB/s — the traditional model calls it neither "
                 "compute- nor memory-bound; the instruction-level "
                 "model identifies shared memory as the real "
                 "bottleneck.)\n";
    return 0;
}
