/**
 * @file
 * Reproduces paper Figure 4: dense matrix multiply across sub-matrix
 * sizes 8x8, 16x16, 32x32.
 *
 *  (a) dynamic counts: total instructions, MADs, shared-memory
 *      transactions, global-memory transactions;
 *  (b) measured time vs. the model's per-component breakdown
 *      (instruction / shared / global), GFLOPS, and the bottleneck
 *      shift from the instruction pipeline (8x8, 16x16) to shared
 *      memory (32x32).
 */

#include "apps/matmul/gemm.h"
#include "bench_common.h"

using namespace gpuperf;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    const int size = opts.full ? 1024 : 512;
    model::AnalysisSession session(
        spec, bench::cachedSessionConfig(spec));

    Table counts({"sub-matrix", "instructions", "MAD", "shared xacts",
                  "global xacts", "active warps/SM"});
    Table times({"sub-matrix", "t_instr (ms)", "t_shared (ms)",
                 "t_global (ms)", "predicted (ms)", "measured (ms)",
                 "error", "GFLOPS", "bottleneck"});

    for (int tile : {8, 16, 32}) {
        funcsim::GlobalMemory gmem(
            static_cast<size_t>(size) * size * 16 + (8 << 20));
        apps::GemmProblem p = apps::makeGemmProblem(gmem, size, tile);
        isa::Kernel k = apps::makeGemmKernel(p);
        funcsim::RunOptions run;
        run.homogeneous = true;  // every block runs an identical stream
        model::Analysis a = session.analyze(k, p.launch(), gmem, run);

        const auto &st = a.measurement.stats;
        counts.addRow({std::to_string(tile) + "x" + std::to_string(tile),
                       Table::big(static_cast<long long>(
                           st.totalWarpInstrs())),
                       Table::big(static_cast<long long>(st.totalMads())),
                       Table::big(static_cast<long long>(
                           st.totalSharedTransactions())),
                       Table::big(static_cast<long long>(
                           st.totalGlobalTransactions())),
                       Table::num(a.input.stages.front().activeWarpsPerSm,
                                  0)});

        const double gflops =
            p.flops() / a.measurement.seconds() / 1e9;
        times.addRow(
            {std::to_string(tile) + "x" + std::to_string(tile),
             Table::num(a.prediction.tInstrTotal * 1e3, 2),
             Table::num(a.prediction.tSharedTotal * 1e3, 2),
             Table::num(a.prediction.tGlobalTotal * 1e3, 2),
             Table::num(a.predictedMs(), 2),
             Table::num(a.measuredMs(), 2),
             Table::num(100.0 * a.errorFraction(), 1) + "%",
             Table::num(gflops, 0),
             model::componentName(a.prediction.bottleneck)});
    }

    printBanner(std::cout, "Figure 4(a): dynamic counts, " +
                               std::to_string(size) + "x" +
                               std::to_string(size) + " matrices");
    bench::emit(counts, opts);
    std::cout << "\n(Paper at 1024: MADs constant at 33.55M; total "
                 "instructions and global transactions fall as the "
                 "tile grows; shared transactions stay flat.)\n";

    printBanner(std::cout,
                "Figure 4(b): measured vs simulated breakdown");
    bench::emit(times, opts);
    std::cout << "\n(Paper: 8x8/16x16 are instruction-pipeline-bound; "
                 "32x32 shifts to shared memory because 6 resident "
                 "warps cannot hide the shared pipeline's latency; "
                 "16x16 is fastest at 399 GFLOPS = 56% of peak.)\n";
    return 0;
}
