/**
 * @file
 * Soak the fleet dispatcher end to end with REAL worker processes:
 * one in-process gpuperf-serve core on a Unix socket, four forked
 * `gpuperf-worker serve --via unix:...` children registered against
 * it, and a mixed client load hammering the endpoint while one worker
 * is SIGKILLed mid-run. The dispatcher must steal the dead worker's
 * cells back, re-dispatch them, and keep every response bit-identical
 * to in-process execution — a lost or doubled cell anywhere fails the
 * gate.
 *
 * Gates (reported in bench_fleet_soak.json):
 *  - every client request is answered, bit-identical
 *    (api::responsesEqual) to the in-process reference;
 *  - the SIGKILL is observed (workerDeaths >= 1) and the fleet keeps
 *    working (>= 2 surviving workers executed cells).
 * Latency p50/p99 and the per-worker cell counts are reported for
 * trend tracking; they gate nothing (CI machines vary too much).
 *
 * The worker binary is resolved from GPUPERF_WORKER_BIN, defaulting
 * to ./gpuperf-worker (the bench runs from the build directory).
 */

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/client.h"
#include "api/codecs.h"
#include "api/registry.h"
#include "api/server.h"
#include "bench/bench_common.h"

using namespace gpuperf;

namespace {

/**
 * The demo-sized request: three registry cases on a scaled-down spec
 * whose calibration is quick and, through the shared store, runs only
 * once across the whole fleet. Result reuse is off so every request
 * genuinely exercises dispatch.
 */
api::AnalysisRequest
soakRequest()
{
    api::AnalysisRequest req;
    req.jobName = "fleet-soak";
    req.kernels.push_back(api::KernelJob::fromRef(
        "saxpy", api::CaseRef{"saxpy", {16, 128}, {2.0}}));
    req.kernels.push_back(api::KernelJob::fromRef(
        "conflicted",
        api::CaseRef{"shared-conflict", {8, 128, 8, 32}, {}}));
    req.kernels.push_back(api::KernelJob::fromRef(
        "hist", api::CaseRef{"histogram", {8, 128, 8, 4}, {}}));

    arch::GpuSpec tiny = arch::GpuSpec::gtx285();
    tiny.name = "GTX tiny (fleet)";
    tiny.numSms = 3;
    tiny.maxWarpsPerSm = 8;
    tiny.maxThreadsPerSm = 256;
    tiny.maxThreadsPerBlock = 256;
    tiny.validate();
    req.specs.push_back(tiny);

    req.sweep.noBankConflicts = true;
    req.sweep.warpsPerSm = {8.0};
    req.sweep.coalescingFractions = {1.0};
    req.store.reuseStoredResults = false;
    req.exec.numThreads = 2;
    return req;
}

pid_t
spawnWorker(const std::string &bin, const std::string &uri)
{
    const pid_t pid = ::fork();
    if (pid != 0)
        return pid;
    // Child: silence it (the parent's table is the report).
    const int null_fd = ::open("/dev/null", O_WRONLY);
    if (null_fd >= 0) {
        ::dup2(null_fd, 1);
        ::dup2(null_fd, 2);
        ::close(null_fd);
    }
    ::execl(bin.c_str(), "gpuperf-worker", "serve", "--via",
            uri.c_str(), static_cast<char *>(nullptr));
    _exit(127); // exec failed
}

/** The small half of the mixed load: one kernel instead of three. */
api::AnalysisRequest
smallRequest(const api::AnalysisRequest &full)
{
    api::AnalysisRequest req = full;
    req.kernels.resize(1);
    return req;
}

struct ClientResult
{
    bench::LatencyBreakdown latencies;
    size_t mismatches = 0;
    std::string error;
};

} // namespace

int
main(int argc, char **argv)
{
    const bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const int clients = opts.full ? 8 : 6;
    const int requests_per_client = opts.full ? 8 : 4;
    constexpr int kWorkers = 4;

    const std::string root =
        "/tmp/gpuperf-fleet-soak-" + std::to_string(::getpid());
    ::mkdir(root.c_str(), 0755);
    ::mkdir((root + "/store").c_str(), 0755);
    const std::string sock_path = root + "/serve.sock";

    // One fleet endpoint: every request is forced onto the shared
    // store so the whole fleet calibrates once.
    api::Server server(api::Endpoint::parse(
        "unix:" + sock_path + "?store=" + root + "/store",
        api::Endpoint::Role::kServer));
    server.start();

    const api::AnalysisRequest req = soakRequest();

    // The in-process reference (and the calibration warm-up: running
    // it against the same store keeps the fleet's first requests from
    // racing a cold microbenchmark sweep).
    api::AnalysisService reference;
    api::AnalysisRequest ref_req = req;
    ref_req.store.storeDir = root + "/store";
    const api::AnalysisResponse want = reference.run(ref_req);
    // The mixed load's small half (one kernel), with its own
    // reference: small/large latency classes describe real size
    // differences, not labels on identical requests.
    const api::AnalysisRequest small_req = smallRequest(req);
    const api::AnalysisResponse want_small =
        reference.run(smallRequest(ref_req));

    const char *bin_env = std::getenv("GPUPERF_WORKER_BIN");
    const std::string worker_bin =
        bin_env ? bin_env : "./gpuperf-worker";
    std::vector<pid_t> workers;
    for (int w = 0; w < kWorkers; ++w)
        workers.push_back(spawnWorker(worker_bin, "unix:" + sock_path));

    // Wait for the whole fleet to register.
    const auto reg_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (server.dispatcher().liveWorkers() <
               static_cast<size_t>(kWorkers) &&
           std::chrono::steady_clock::now() < reg_deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (server.dispatcher().liveWorkers() <
        static_cast<size_t>(kWorkers)) {
        std::cerr << "fleet soak: workers failed to register (is "
                  << worker_bin << " the right binary?)\n";
        for (pid_t pid : workers)
            ::kill(pid, SIGKILL);
        return 1;
    }

    std::vector<ClientResult> results(clients);
    std::atomic<size_t> answered_so_far{0};
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
        threads.emplace_back([&, c] {
            ClientResult &out = results[c];
            try {
                api::ServeClient client =
                    api::ServeClient::overUnix(sock_path);
                for (int r = 0; r < requests_per_client; ++r) {
                    const bool large = r % 2 == 0;
                    const auto start =
                        std::chrono::steady_clock::now();
                    const api::AnalysisResponse got =
                        client.run(large ? req : small_req);
                    const std::chrono::duration<double, std::milli>
                        ms = std::chrono::steady_clock::now() - start;
                    out.latencies.add(large, ms.count());
                    if (!api::responsesEqual(
                            got, large ? want : want_small))
                        ++out.mismatches;
                    ++answered_so_far;
                }
            } catch (const std::exception &e) {
                out.error = e.what();
            }
        });
    }

    // Mid-run, murder one worker outright: SIGKILL, no goodbye frame.
    // The dispatcher must steal whatever it held and re-dispatch.
    const auto kill_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (answered_so_far.load() == 0 &&
           std::chrono::steady_clock::now() < kill_deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
    ::kill(workers[0], SIGKILL);
    ::waitpid(workers[0], nullptr, 0);

    for (std::thread &t : threads)
        t.join();
    const std::chrono::duration<double> wall =
        std::chrono::steady_clock::now() - t0;

    size_t answered = 0, mismatches = 0, errors = 0;
    bench::LatencyBreakdown by_size;
    for (int c = 0; c < clients; ++c) {
        answered += results[c].latencies.all().size();
        mismatches += results[c].mismatches;
        if (!results[c].error.empty()) {
            ++errors;
            std::cerr << "client " << c << ": " << results[c].error
                      << "\n";
        }
        for (double ms : results[c].latencies.smallMs)
            by_size.add(false, ms);
        for (double ms : results[c].latencies.largeMs)
            by_size.add(true, ms);
    }
    const std::vector<double> all_ms = by_size.all();
    const size_t expected_answers =
        static_cast<size_t>(clients) * requests_per_client;

    const api::ServerStats stats = server.stats();
    server.stop();
    for (size_t w = 1; w < workers.size(); ++w) {
        ::kill(workers[w], SIGTERM);
        ::waitpid(workers[w], nullptr, 0);
    }

    size_t survivors_with_cells = 0;
    for (const api::WorkerStat &w : stats.fleet.workers)
        if (w.cellsDone > 0 && w.id != 1)
            ++survivors_with_cells;

    const bool gate_ok = answered == expected_answers &&
                         mismatches == 0 && errors == 0 &&
                         stats.fleet.workerDeaths >= 1 &&
                         survivors_with_cells >= 2;

    std::cout << "gpuperf fleet soak: " << clients << " clients x "
              << requests_per_client << " requests over " << kWorkers
              << " workers (1 SIGKILLed mid-run), "
              << want.cells.size() << " cells each\n";
    Table t({"worker", "live", "cells done"});
    for (const api::WorkerStat &w : stats.fleet.workers)
        t.addRow({w.name, w.live ? "yes" : "no",
                  Table::num(static_cast<double>(w.cellsDone), 0)});
    bench::emit(t, opts);
    std::cout << "\n"
              << answered << "/" << expected_answers
              << " requests answered, " << mismatches
              << " mismatches, " << stats.fleet.workerDeaths
              << " worker death(s), " << stats.fleet.cellsRedispatched
              << " re-dispatched cell(s), "
              << stats.fleet.cellsLocal
              << " locally-recovered cell(s) — gate "
              << (gate_ok ? "PASS" : "FAIL") << "\n";

    {
        std::ofstream json("bench_fleet_soak.json");
        char buf[768];
        std::snprintf(
            buf, sizeof(buf),
            "{\n  \"bench\": \"fleet_soak\",\n  \"gate\": \"%s\",\n"
            "  \"clients\": %d,\n  \"requests_per_client\": %d,\n"
            "  \"workers\": %d,\n  \"answered\": %zu,\n"
            "  \"mismatches\": %zu,\n  \"client_errors\": %zu,\n"
            "  \"worker_deaths\": %llu,\n"
            "  \"cells_redispatched\": %llu,\n"
            "  \"cells_local\": %llu,\n"
            "  \"wall_seconds\": %.2f,\n"
            "  \"latency_ms\": {\"p50\": %.2f, \"p99\": %.2f},\n",
            gate_ok ? "pass" : "fail", clients, requests_per_client,
            kWorkers, answered, mismatches, errors,
            static_cast<unsigned long long>(stats.fleet.workerDeaths),
            static_cast<unsigned long long>(
                stats.fleet.cellsRedispatched),
            static_cast<unsigned long long>(stats.fleet.cellsLocal),
            wall.count(), bench::percentileMs(all_ms, 0.50),
            bench::percentileMs(all_ms, 0.99));
        json << buf;
        json << "  \"latency_by_size\": " << by_size.json() << ",\n"
             << "  \"cells_per_worker\": [";
        for (size_t w = 0; w < stats.fleet.workers.size(); ++w) {
            const api::WorkerStat &ws = stats.fleet.workers[w];
            std::snprintf(buf, sizeof(buf),
                          "%s\n    {\"name\": \"%s\", \"cells\": %llu}",
                          w ? "," : "", ws.name.c_str(),
                          static_cast<unsigned long long>(ws.cellsDone));
            json << buf;
        }
        json << "\n  ]\n}\n";
    }
    return gate_ok ? 0 : 1;
}
