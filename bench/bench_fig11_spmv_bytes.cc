/**
 * @file
 * Reproduces paper Figure 11:
 *  (a) average bytes fetched per processed matrix entry, split into
 *      matrix values / column indices / vector entries, for ELL,
 *      BELL+IM and BELL+IMIV at 32/16/4 B transaction granularity;
 *  (b) measured time and the model's component breakdown for the
 *      three kernels on the QCD-like blocked matrix.
 */

#include "apps/spmv/kernels.h"
#include "apps/spmv/traffic.h"
#include "bench_common.h"

using namespace gpuperf;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    const int block_rows = opts.full ? 16384 : 4096;
    model::AnalysisSession session(
        spec, bench::cachedSessionConfig(spec));

    apps::BlockSparseMatrix m = apps::makeBandedBlockMatrix(
        block_rows, /*blocks_per_row=*/13, /*half_band=*/24);

    printBanner(std::cout,
                "Figure 11(a): bytes per matrix entry "
                "(QCD-like, " + std::to_string(m.rows()) + " rows, " +
                    Table::big(static_cast<long long>(
                        m.storedEntries())) + " entries)");
    Table ta({"format", "granularity (B)", "matrix entry", "col index",
              "vector entry", "total"});
    const apps::SpmvFormat formats[] = {apps::SpmvFormat::kEll,
                                        apps::SpmvFormat::kBellIm,
                                        apps::SpmvFormat::kBellImIv};
    for (apps::SpmvFormat f : formats) {
        for (int gran : {32, 16, 4}) {
            apps::TrafficBreakdown tb = apps::analyzeTraffic(m, f, gran);
            ta.addRow({apps::spmvFormatName(f), std::to_string(gran),
                       Table::num(tb.matrixBytes, 2),
                       Table::num(tb.indexBytes, 2),
                       Table::num(tb.vectorBytes, 2),
                       Table::num(tb.total(), 2)});
        }
    }
    bench::emit(ta, opts);
    std::cout << "\n(Paper at 32 B: vector entry 6.69 for ELL, 4.55 at "
                 "16 B; BELL cuts the column index to 4/9 = 0.44; "
                 "interleaving the vector cuts the gather overfetch "
                 "toward the ideal 4 B.)\n";

    printBanner(std::cout,
                "Figure 11(b): measured and simulated breakdown");
    Table tbl({"format", "measured (ms)", "predicted (ms)", "error",
               "t_global (ms)", "t_instr (ms)", "t_shared (ms)",
               "bottleneck"});
    for (apps::SpmvFormat f : formats) {
        funcsim::GlobalMemory gmem(256 << 20);
        apps::SpmvVectors v = apps::makeVectors(gmem, m);
        isa::Kernel k = [&] {
            if (f == apps::SpmvFormat::kEll) {
                apps::EllDeviceMatrix ell = apps::buildEll(gmem, m);
                return apps::makeEllKernel(ell, v, false);
            }
            apps::BellDeviceMatrix bell = apps::buildBell(gmem, m, true);
            return apps::makeBellKernel(
                bell, v, f == apps::SpmvFormat::kBellImIv, false);
        }();
        const int work = f == apps::SpmvFormat::kEll ? m.rows()
                                                     : m.blockRows;
        funcsim::LaunchConfig cfg{apps::spmvGridDim(work),
                                  apps::kSpmvBlockDim};
        model::Analysis a = session.analyze(k, cfg, gmem);
        tbl.addRow({apps::spmvFormatName(f),
                    Table::num(a.measuredMs(), 3),
                    Table::num(a.predictedMs(), 3),
                    Table::num(100.0 * a.errorFraction(), 1) + "%",
                    Table::num(a.prediction.tGlobalTotal * 1e3, 3),
                    Table::num(a.prediction.tInstrTotal * 1e3, 3),
                    Table::num(a.prediction.tSharedTotal * 1e3, 3),
                    model::componentName(a.prediction.bottleneck)});
    }
    bench::emit(tbl, opts);
    std::cout << "\n(Paper: all three formats are global-memory-bound; "
                 "the bottleneck-component model error is within 5%; "
                 "if global time shrank further, the instruction "
                 "pipeline would be next — with computational density "
                 "near 1/10, far from peak GFLOPS.)\n";
    return 0;
}
