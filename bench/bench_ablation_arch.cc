/**
 * @file
 * Architectural what-if studies — the improvements the paper's
 * analysis suggests (Sections 5.1-5.3), evaluated by re-running the
 * applications on modified machine descriptions:
 *
 *  1. raise the resident-block ceiling from 8 to 16 (GEMM 8x8/16x16
 *     gain warps and instruction/shared throughput);
 *  2. double registers and shared memory (GEMM 32x32 regains
 *     occupancy while keeping its higher computational density);
 *  3. a prime number (17) of shared-memory banks (removes CR's
 *     power-of-two conflicts without code changes);
 *  4. smaller global-memory transaction granularity (SpMV's gathered
 *     vector entries waste less bandwidth).
 */

#include "apps/matmul/gemm.h"
#include "apps/spmv/kernels.h"
#include "apps/tridiag/cyclic_reduction.h"
#include "bench_common.h"
#include "model/device.h"

using namespace gpuperf;

namespace {

double
runGemm(const arch::GpuSpec &spec, int size, int tile)
{
    model::SimulatedDevice device(spec);
    funcsim::GlobalMemory gmem(
        static_cast<size_t>(size) * size * 16 + (8 << 20));
    apps::GemmProblem p = apps::makeGemmProblem(gmem, size, tile);
    funcsim::RunOptions run;
    run.homogeneous = true;
    return device.run(apps::makeGemmKernel(p), p.launch(), gmem, run)
        .milliseconds();
}

double
runCr(const arch::GpuSpec &spec)
{
    model::SimulatedDevice device(spec);
    funcsim::GlobalMemory gmem(64 << 20);
    apps::TridiagProblem p =
        apps::makeTridiagProblem(gmem, 512, 512, false);
    funcsim::RunOptions run;
    run.homogeneous = true;
    return device
        .run(apps::makeCyclicReductionKernel(p), p.launch(), gmem, run)
        .milliseconds();
}

double
runSpmvEll(const arch::GpuSpec &spec, int block_rows)
{
    model::SimulatedDevice device(spec);
    apps::BlockSparseMatrix m =
        apps::makeBandedBlockMatrix(block_rows, 13, 24);
    funcsim::GlobalMemory gmem(256 << 20);
    apps::SpmvVectors v = apps::makeVectors(gmem, m);
    apps::EllDeviceMatrix ell = apps::buildEll(gmem, m);
    isa::Kernel k = apps::makeEllKernel(ell, v, false);
    return device
        .run(k, {apps::spmvGridDim(ell.rows), apps::kSpmvBlockDim}, gmem)
        .milliseconds();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const int gemm_size = opts.full ? 1024 : 512;
    const int spmv_rows = opts.full ? 16384 : 4096;

    printBanner(std::cout, "Architectural what-if studies");
    Table t({"workload", "architecture change", "baseline (ms)",
             "variant (ms)", "speedup"});

    auto add = [&](const char *work, const char *change, double base,
                   double variant) {
        t.addRow({work, change, Table::num(base, 3),
                  Table::num(variant, 3), Table::num(base / variant, 2)});
    };

    const arch::GpuSpec base = arch::GpuSpec::gtx285();
    {
        const double b = runGemm(base, gemm_size, 16);
        const double v =
            runGemm(arch::GpuSpec::gtx285MoreBlocks(), gemm_size, 16);
        // On our kernels the 16x16 tile is register-bound at 8 blocks,
        // so raising the block ceiling alone does not add warps — the
        // occupancy calculator shows which ceiling binds.
        add("GEMM 16x16", "max resident blocks 8 -> 16", b, v);
    }
    {
        const double b = runGemm(base, gemm_size, 32);
        const double v =
            runGemm(arch::GpuSpec::gtx285BigResources(), gemm_size, 32);
        add("GEMM 32x32", "2x registers and shared memory", b, v);
    }
    {
        const double b = runCr(base);
        const double v = runCr(arch::GpuSpec::gtx285PrimeBanks());
        add("CR tridiagonal", "16 -> 17 shared banks", b, v);
    }
    {
        const double b = runSpmvEll(base, spmv_rows);
        const double v16 =
            runSpmvEll(arch::GpuSpec::gtx285SmallSegments(16), spmv_rows);
        const double v4 =
            runSpmvEll(arch::GpuSpec::gtx285SmallSegments(4), spmv_rows);
        add("SpMV ELL", "32 B -> 16 B transactions", b, v16);
        add("SpMV ELL", "32 B -> 4 B transactions", b, v4);
        // Smaller transactions trade bytes for per-transaction
        // overhead; only a memory system whose per-transaction cost
        // also shrinks realizes the paper's full projection.
        arch::GpuSpec ideal = arch::GpuSpec::gtx285SmallSegments(4);
        ideal.transactionOverheadCycles = 0;
        const double vi = runSpmvEll(ideal, spmv_rows);
        add("SpMV ELL", "4 B + no per-transaction overhead", b, vi);
    }
    bench::emit(t, opts);

    std::cout << "\n(Each row re-runs the unchanged program binary on "
                 "the modified machine. The paper argues for all four "
                 "changes qualitatively; the prime-bank variant is the "
                 "hardware analogue of the CR-NBC padding, and the "
                 "16 B granularity corresponds to Figure 11's middle "
                 "columns. Note two substrate-specific findings: the "
                 "16x16 GEMM tile is register-bound at 8 blocks, so "
                 "raising the block ceiling alone adds no warps; and "
                 "smaller transactions only pay off if the "
                 "per-transaction overhead shrinks with them.)\n";
    return 0;
}
