/**
 * @file
 * Reproduces paper Figure 2 (left): instruction throughput of each
 * type as a function of warps per SM, measured by dependent-chain
 * microbenchmarks on the simulated device.
 */

#include "bench_common.h"

using namespace gpuperf;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    model::AnalysisSession session(
        spec, bench::cachedSessionConfig(spec));
    const model::CalibrationTables &tables = session.calibrator().tables();

    printBanner(std::cout,
                "Figure 2 (left): instruction throughput vs warps/SM");
    Table t({"warps/SM", "Type I", "Type II", "Type III", "Type IV"});
    for (int w = 1; w <= tables.maxWarps; ++w) {
        std::vector<std::string> row{std::to_string(w)};
        for (arch::InstrType type : arch::kAllInstrTypes) {
            row.push_back(Table::num(
                tables.lookupInstr(type, w) / 1e9, 2));
        }
        t.addRow(row);
    }
    bench::emit(t, opts);

    std::cout << "\n(Giga warp-instructions per second. Paper "
                 "reference points for Type II: ~8.39 at 6 warps, "
                 "~9.05 at 16, ~9.33 at 32; theoretical peak "
              << Table::num(arch::peakThroughput(
                     spec, arch::InstrType::TypeII) / 1e9, 1)
              << ". The knee near 6 warps reflects the ~6-stage "
                 "pipeline the paper infers.)\n";
    return 0;
}
