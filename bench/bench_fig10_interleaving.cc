/**
 * @file
 * Reproduces paper Figure 10: the toy illustration of why vector
 * interleaving helps. Using the paper's simplified machine — memory
 * transactions of 8 bytes, issue granularity of 2 threads — it counts
 * how many transactions the gathered vector entries of a 12x12
 * 3x3-blocked matrix need under straightforward vs. interleaved
 * vector storage.
 */

#include "apps/spmv/matrix.h"
#include "bench_common.h"
#include "memxact/coalescing.h"

using namespace gpuperf;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseArgs(argc, argv);

    // A 12x12 matrix of 3x3 blocks (4 block rows), banded like the
    // paper's Figure 9(a) example.
    apps::BlockSparseMatrix m =
        apps::makeBandedBlockMatrix(/*block_rows=*/4, /*blocks_per_row=*/2,
                                    /*half_band=*/2, /*seed=*/3);

    // The toy machine of Figure 10.
    memxact::CoalescingSimulator sim(/*min=*/8, /*max=*/8, /*group=*/2);

    printBanner(std::cout,
                "Figure 10: vector-gather transactions on the toy "
                "machine (8 B transactions, 2-thread issue groups)");

    Table t({"storage", "vector transactions", "bytes moved",
             "useful bytes"});
    for (bool interleaved : {false, true}) {
        uint64_t xacts = 0;
        uint64_t bytes = 0;
        uint64_t useful = 0;
        // 4 threads, one per block-row; issue groups of 2.
        for (int g = 0; g < m.blockRows; g += 2) {
            for (size_t blk = 0; blk < m.blockCols[g].size(); ++blk) {
                for (int e = 0; e < m.blockSize; ++e) {
                    std::vector<memxact::Request> reqs(2);
                    for (int l = 0; l < 2; ++l) {
                        const int r = g + l;
                        const auto &cols = m.blockCols[r];
                        const int c =
                            cols[std::min(blk, cols.size() - 1)];
                        reqs[l].active = true;
                        reqs[l].address =
                            interleaved
                                ? (static_cast<uint64_t>(e) *
                                       m.blockRows + c) * 4
                                : (static_cast<uint64_t>(c) *
                                       m.blockSize + e) * 4;
                    }
                    auto list = sim.coalesce(reqs, 4);
                    xacts += list.size();
                    bytes +=
                        memxact::CoalescingSimulator::totalBytes(list);
                    useful += 2 * 4;
                }
            }
        }
        t.addRow({interleaved ? "interleaved vector (Fig 10b)"
                              : "straightforward vector (Fig 10a)",
                  std::to_string(xacts), std::to_string(bytes),
                  std::to_string(useful)});
    }
    bench::emit(t, opts);

    std::cout << "\n(Interleaving packs same-position entries of "
                 "neighboring block columns three times closer, so "
                 "more gathers share one 8 B transaction — the paper's "
                 "example shows 6 shared transactions appearing after "
                 "interleaving.)\n";
    return 0;
}
