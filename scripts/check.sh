#!/usr/bin/env bash
# One-command verification gate: configure, build, and run the full
# gtest suite. Fails on any compile error or test failure. Future PRs
# run this before merging.
#
# Usage: scripts/check.sh [--sanitize] [build-dir] [build-type]
#   --sanitize  ASan+UBSan run: Debug build with
#               -fsanitize=address,undefined, leak detection on, tests
#               only (the perf gates measure nothing useful under a
#               sanitizer). The suite includes the task-graph executor
#               and streaming-batch tests (test_task_graph,
#               test_batch, test_store), which exercise the
#               scheduler's locking under the sanitizers. Defaults
#               build-dir to build-asan. This is exactly what the CI
#               sanitize job executes.
#   build-dir   default: build (build-asan with --sanitize)
#   build-type  Debug | Release | RelWithDebInfo | ... (default: the
#               build dir's existing type, or CMake's default).
#               Debug additionally exercises the debug-only
#               homogeneous-sampling validation in the funcsim and the
#               timing engine's cached-candidate cross-checks.

set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE=0
if [[ "${1:-}" == "--sanitize" ]]; then
    SANITIZE=1
    shift
fi

if [[ "$SANITIZE" == 1 ]]; then
    BUILD_DIR="${1:-build-asan}"
    BUILD_TYPE="${2:-Debug}"
else
    BUILD_DIR="${1:-build}"
    BUILD_TYPE="${2:-}"
fi
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

CMAKE_ARGS=()
if [[ -n "$BUILD_TYPE" ]]; then
    CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE="$BUILD_TYPE")
fi
if [[ "$SANITIZE" == 1 ]]; then
    CMAKE_ARGS+=(-DGPUPERF_SANITIZE=address,undefined)
    export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
    export UBSAN_OPTIONS="print_stacktrace=1"
else
    # Pin the cache variable off: reusing a previously sanitized
    # build dir must not silently run the perf gates on instrumented
    # binaries.
    CMAKE_ARGS+=(-DGPUPERF_SANITIZE=)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

if [[ "$SANITIZE" == 1 ]]; then
    echo "check.sh: sanitizer run green (perf gates skipped)"
    exit 0
fi

# Throughput gates, skipped under sanitizers:
#  - batch scaling (self-skips on <4 hardware threads), the >=3x
#    warm-store profile-sharing speedup, and the streaming
#    time-to-first-result gate (first cell delivered before the
#    slowest calibration completes);
#  - the >=2x event-driven vs legacy-scan timing-replay speedup on
#    the high-occupancy cases.
# The main calibration is cached in the build dir, so reruns are
# cheap; the streaming study calibrates two small specs cold on
# purpose (that overlap is what it measures).
(cd "$BUILD_DIR" && ./bench_batch_throughput)
(cd "$BUILD_DIR" && ./bench_timing_replay)

echo "check.sh: all green"
