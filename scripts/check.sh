#!/usr/bin/env bash
# One-command verification gate: configure, build, and run the full
# gtest suite. Fails on any compile error or test failure. Future PRs
# run this before merging.
#
# Usage: scripts/check.sh [build-dir] [build-type]
#   build-dir   default: build
#   build-type  Debug | Release | RelWithDebInfo | ... (default: the
#               build dir's existing type, or CMake's default).
#               Debug additionally exercises the debug-only
#               homogeneous-sampling validation in the funcsim.

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
BUILD_TYPE="${2:-}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

if [[ -n "$BUILD_TYPE" ]]; then
    cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE="$BUILD_TYPE"
else
    cmake -B "$BUILD_DIR" -S .
fi
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

# Batch-throughput gates: thread scaling (self-skips on <4 hardware
# threads) and the >=3x warm-store profile-sharing speedup.
# Calibration is cached in the build dir, so reruns are cheap.
(cd "$BUILD_DIR" && ./bench_batch_throughput)

echo "check.sh: all green"
