#!/usr/bin/env bash
# One-command verification gate: configure, build, and run the full
# gtest suite. Fails on any compile error or test failure. Future PRs
# run this before merging.
#
# Usage: scripts/check.sh [build-dir]   (default: build)

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S .
cmake --build "$BUILD_DIR" -j"$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

# Batch-throughput scaling gate (self-skips on <4 hardware threads;
# calibration is cached in the build dir, so reruns are cheap).
(cd "$BUILD_DIR" && ./bench_batch_throughput)

echo "check.sh: all green"
