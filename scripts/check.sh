#!/usr/bin/env bash
# One-command verification gate: configure, build, and run the full
# gtest suite. Fails on any compile error or test failure. Future PRs
# run this before merging.
#
# Usage: scripts/check.sh [--sanitize | --api-smoke | --serve-smoke | --fleet-smoke | --sched-smoke | --store-smoke] [build-dir] [build-type]
#   --sanitize  ASan+UBSan run: Debug build with
#               -fsanitize=address,undefined, leak detection on, tests
#               only (the perf gates measure nothing useful under a
#               sanitizer). The suite includes the task-graph executor,
#               streaming-batch and AnalysisService/spool tests
#               (test_task_graph, test_batch, test_store, test_api),
#               which exercise the scheduler's and lease protocol's
#               locking under the sanitizers. Defaults build-dir to
#               build-asan. This is exactly what the CI sanitize job
#               executes.
#   --api-smoke Build, then run ONLY the two-process spool-worker
#               smoke: a demo AnalysisRequest is executed in-process
#               and through a parent (submit/collect) plus a separate
#               worker (serve) process sharing a spool directory; the
#               two JSON responses must be byte-identical. The full
#               (flagless) run executes this step after the benches as
#               well; CI uploads the JSON responses as artifacts from
#               <build-dir>/api-smoke/.
#   --serve-smoke
#               Build, then run ONLY the socket-server smoke: a
#               gpuperf-serve daemon on a Unix socket serves 4
#               concurrent gpuperf-worker clients (run --via unix:...)
#               plus one TCP client; every response is byte-diffed
#               against an in-process run of the same request. The
#               full (flagless) run executes this and the
#               bench_serve_soak gate as well; artifacts land in
#               <build-dir>/serve-smoke/.
#   --fleet-smoke
#               Build, then run ONLY the fleet-dispatch smoke: a
#               gpuperf-serve daemon with a shared store, 2 registered
#               gpuperf-worker fleet processes (serve --via unix:...)
#               and 2 concurrent clients; one worker is SIGKILLed
#               mid-run and every response is byte-diffed against an
#               in-process run. The full (flagless) run executes this
#               and the bench_fleet_soak gate as well; artifacts land
#               in <build-dir>/fleet-smoke/.
#   --sched-smoke
#               Build, then run ONLY the scheduling-policy smoke: a
#               gpuperf-serve daemon running --sched sjf with one
#               fleet worker serves 2 concurrent clients carrying
#               distinct --client ids; every response is byte-diffed
#               against an in-process (FIFO) run of the same request —
#               policies reorder work, never results. The full
#               (flagless) run executes this and the
#               bench_sched_fairness gate as well; artifacts land in
#               <build-dir>/sched-smoke/.
#   --store-smoke
#               Build, then run ONLY the store-lifecycle smoke: a cold
#               run populates a store, one entry is deliberately
#               bit-flipped on disk (`gpuperf-worker verify` must exit
#               2 and quarantine it), the store is force-compacted
#               into segment files, and a warm run over the compacted
#               store must produce a byte-identical response; a GC
#               dry-run and the disk-usage scan round out the admin
#               verbs. The full (flagless) run executes this step as
#               well; artifacts land in <build-dir>/store-smoke/.
#   build-dir   default: build (build-asan with --sanitize)
#   build-type  Debug | Release | RelWithDebInfo | ... (default: the
#               build dir's existing type, or CMake's default).
#               Debug additionally exercises the debug-only
#               homogeneous-sampling validation in the funcsim and the
#               timing engine's cached-candidate cross-checks.

set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE=0
API_SMOKE_ONLY=0
SERVE_SMOKE_ONLY=0
FLEET_SMOKE_ONLY=0
SCHED_SMOKE_ONLY=0
STORE_SMOKE_ONLY=0
if [[ "${1:-}" == "--sanitize" ]]; then
    SANITIZE=1
    shift
elif [[ "${1:-}" == "--api-smoke" ]]; then
    API_SMOKE_ONLY=1
    shift
elif [[ "${1:-}" == "--serve-smoke" ]]; then
    SERVE_SMOKE_ONLY=1
    shift
elif [[ "${1:-}" == "--fleet-smoke" ]]; then
    FLEET_SMOKE_ONLY=1
    shift
elif [[ "${1:-}" == "--sched-smoke" ]]; then
    SCHED_SMOKE_ONLY=1
    shift
elif [[ "${1:-}" == "--store-smoke" ]]; then
    STORE_SMOKE_ONLY=1
    shift
fi

if [[ "$SANITIZE" == 1 ]]; then
    BUILD_DIR="${1:-build-asan}"
    BUILD_TYPE="${2:-Debug}"
else
    BUILD_DIR="${1:-build}"
    BUILD_TYPE="${2:-}"
fi
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

CMAKE_ARGS=()
if [[ -n "$BUILD_TYPE" ]]; then
    CMAKE_ARGS+=(-DCMAKE_BUILD_TYPE="$BUILD_TYPE")
fi
if [[ "$SANITIZE" == 1 ]]; then
    CMAKE_ARGS+=(-DGPUPERF_SANITIZE=address,undefined)
    export ASAN_OPTIONS="detect_leaks=1:strict_string_checks=1"
    export UBSAN_OPTIONS="print_stacktrace=1"
else
    # Pin the cache variable off: reusing a previously sanitized
    # build dir must not silently run the perf gates on instrumented
    # binaries.
    CMAKE_ARGS+=(-DGPUPERF_SANITIZE=)
fi

cmake -B "$BUILD_DIR" -S . "${CMAKE_ARGS[@]}"
cmake --build "$BUILD_DIR" -j"$JOBS"

# Two-process spool-worker end-to-end: submit + collect in this
# (parent) process, serve in a SEPARATE worker process, diff the JSON
# responses against an in-process run of the same request. Leaves its
# artifacts under <build-dir>/api-smoke/ for CI upload.
run_api_smoke() {
    local SMOKE="$BUILD_DIR/api-smoke"
    local W="$BUILD_DIR/gpuperf-worker"
    rm -rf "$SMOKE"
    mkdir -p "$SMOKE"
    # Two identical requests with SEPARATE stores: the spooled leg
    # must not be served warm from the in-process leg's result store,
    # or the diff would pass without the worker executing anything.
    "$W" demo-request --out "$SMOKE/request.json" \
        --store "$SMOKE/store-inprocess"
    "$W" demo-request --out "$SMOKE/request-spooled.json" \
        --store "$SMOKE/store-spooled"
    "$W" run "$SMOKE/request.json" --out "$SMOKE/response-inprocess.json"
    "$W" submit "$SMOKE/request-spooled.json" --spool "$SMOKE/spool" \
        --no-wait
    "$W" serve --spool "$SMOKE/spool" &
    local WORKER_PID=$!
    "$W" collect "$SMOKE/request-spooled.json" --spool "$SMOKE/spool" \
        --out "$SMOKE/response-spooled.json" --timeout 300
    wait "$WORKER_PID"
    diff "$SMOKE/response-inprocess.json" "$SMOKE/response-spooled.json"
    echo "api-smoke: spool-worker response identical to the in-process run"
}

# Socket-server end-to-end: one gpuperf-serve daemon (Unix socket +
# ephemeral TCP), 4 concurrent Unix clients and one TCP client, all
# running the same demo request against per-client stores; every
# response must be byte-identical to an in-process run. SIGTERM at the
# end exercises the graceful-drain shutdown path.
run_serve_smoke() {
    local SMOKE="$BUILD_DIR/serve-smoke"
    local W="$BUILD_DIR/gpuperf-worker"
    local S="$BUILD_DIR/gpuperf-serve"
    local SOCK="$SMOKE/serve.sock"
    rm -rf "$SMOKE"
    mkdir -p "$SMOKE"

    "$S" --unix "$SOCK" --tcp 0 > "$SMOKE/serve.log" 2>&1 &
    local SERVE_PID=$!
    trap 'kill "$SERVE_PID" 2>/dev/null || true' RETURN
    for _ in $(seq 1 100); do
        [[ -S "$SOCK" ]] && grep -q "ready" "$SMOKE/serve.log" && break
        sleep 0.1
    done
    [[ -S "$SOCK" ]] || { echo "serve-smoke: daemon never bound $SOCK" >&2
                          cat "$SMOKE/serve.log" >&2; return 1; }
    local PORT
    PORT="$(sed -n 's/^listening tcp .*:\([0-9]*\)$/\1/p' "$SMOKE/serve.log")"

    # The reference: the same request executed in-process. Each leg
    # gets its OWN store so the served legs really execute rather
    # than replaying the reference's results.
    "$W" demo-request --out "$SMOKE/request-ref.json" \
        --store "$SMOKE/store-ref"
    "$W" run "$SMOKE/request-ref.json" --out "$SMOKE/response-ref.json"

    local PIDS=()
    for i in 1 2 3 4; do
        "$W" demo-request --out "$SMOKE/request-$i.json" \
            --store "$SMOKE/store-$i"
        "$W" run "$SMOKE/request-$i.json" \
            --out "$SMOKE/response-$i.json" \
            --via "unix:$SOCK" > "$SMOKE/client-$i.log" 2>&1 &
        PIDS+=($!)
    done
    "$W" demo-request --out "$SMOKE/request-tcp.json" \
        --store "$SMOKE/store-tcp"
    "$W" run "$SMOKE/request-tcp.json" \
        --out "$SMOKE/response-tcp.json" --via "tcp:127.0.0.1:$PORT"
    local PID
    for PID in "${PIDS[@]}"; do
        wait "$PID"
    done

    # Store paths differ per leg, so normalize nothing: the response
    # JSON carries no paths — byte-identity is the whole contract.
    for i in 1 2 3 4 tcp; do
        diff "$SMOKE/response-ref.json" "$SMOKE/response-$i.json"
    done

    kill -TERM "$SERVE_PID"
    wait "$SERVE_PID"
    grep -q "served" "$SMOKE/serve.log" || {
        echo "serve-smoke: daemon did not shut down gracefully" >&2
        cat "$SMOKE/serve.log" >&2
        return 1
    }
    echo "serve-smoke: 5 concurrent socket clients byte-identical to the in-process run"
}

# Fleet-dispatch end-to-end: one gpuperf-serve daemon with a SHARED
# store, two registered fleet workers, two concurrent clients. One
# worker is SIGKILLed while requests are in flight: the dispatcher
# must steal its cells back and re-dispatch, and both clients' JSON
# responses must stay byte-identical to an in-process run.
run_fleet_smoke() {
    local SMOKE="$BUILD_DIR/fleet-smoke"
    local W="$BUILD_DIR/gpuperf-worker"
    local S="$BUILD_DIR/gpuperf-serve"
    local SOCK="$SMOKE/serve.sock"
    rm -rf "$SMOKE"
    mkdir -p "$SMOKE"

    # One shared store: the fleet calibrates once, globally.
    "$S" --via "unix:$SOCK" --store "$SMOKE/store-fleet" --stats-json \
        > "$SMOKE/serve.log" 2>&1 &
    local SERVE_PID=$!
    trap 'kill "$SERVE_PID" 2>/dev/null || true' RETURN
    for _ in $(seq 1 100); do
        [[ -S "$SOCK" ]] && grep -q "ready" "$SMOKE/serve.log" && break
        sleep 0.1
    done
    [[ -S "$SOCK" ]] || { echo "fleet-smoke: daemon never bound $SOCK" >&2
                          cat "$SMOKE/serve.log" >&2; return 1; }

    "$W" serve --via "unix:$SOCK" > "$SMOKE/worker-1.log" 2>&1 &
    local WORKER1_PID=$!
    "$W" serve --via "unix:$SOCK" > "$SMOKE/worker-2.log" 2>&1 &
    local WORKER2_PID=$!

    # The reference: the same request executed in-process on its own
    # store, so the fleet legs really execute rather than replaying
    # the reference's results.
    "$W" demo-request --out "$SMOKE/request-ref.json" \
        --store "$SMOKE/store-ref"
    "$W" run "$SMOKE/request-ref.json" --out "$SMOKE/response-ref.json"

    "$W" demo-request --out "$SMOKE/request.json"
    local PIDS=()
    for i in 1 2; do
        "$W" run "$SMOKE/request.json" \
            --out "$SMOKE/response-$i.json" \
            --via "unix:$SOCK" > "$SMOKE/client-$i.log" 2>&1 &
        PIDS+=($!)
    done

    # Murder one fleet worker while the clients are in flight: its
    # cells must be stolen back and re-dispatched, losing nothing.
    sleep 0.5
    kill -9 "$WORKER1_PID" 2>/dev/null || true
    wait "$WORKER1_PID" 2>/dev/null || true

    local PID
    for PID in "${PIDS[@]}"; do
        wait "$PID"
    done
    for i in 1 2; do
        diff "$SMOKE/response-ref.json" "$SMOKE/response-$i.json"
    done

    kill -TERM "$SERVE_PID"
    wait "$SERVE_PID"
    wait "$WORKER2_PID" 2>/dev/null || true
    grep -q "served" "$SMOKE/serve.log" || {
        echo "fleet-smoke: daemon did not shut down gracefully" >&2
        cat "$SMOKE/serve.log" >&2
        return 1
    }
    grep -q '"workers_registered": 2' "$SMOKE/serve.log" || {
        echo "fleet-smoke: expected 2 registered workers" >&2
        cat "$SMOKE/serve.log" >&2
        return 1
    }
    echo "fleet-smoke: 2 clients over a 2-worker fleet (1 killed mid-run) byte-identical to the in-process run"
}

# Scheduling-policy end-to-end: an SJF daemon with a shared store and
# one fleet worker serves two clients carrying distinct --client ids;
# both JSON responses must be byte-identical to an in-process (FIFO)
# run — the policy reorders work, never results.
run_sched_smoke() {
    local SMOKE="$BUILD_DIR/sched-smoke"
    local W="$BUILD_DIR/gpuperf-worker"
    local S="$BUILD_DIR/gpuperf-serve"
    local SOCK="$SMOKE/serve.sock"
    rm -rf "$SMOKE"
    mkdir -p "$SMOKE"

    "$S" --via "unix:$SOCK" --sched sjf --store "$SMOKE/store-fleet" \
        --stats-json > "$SMOKE/serve.log" 2>&1 &
    local SERVE_PID=$!
    trap 'kill "$SERVE_PID" 2>/dev/null || true' RETURN
    for _ in $(seq 1 100); do
        [[ -S "$SOCK" ]] && grep -q "ready" "$SMOKE/serve.log" && break
        sleep 0.1
    done
    [[ -S "$SOCK" ]] || { echo "sched-smoke: daemon never bound $SOCK" >&2
                          cat "$SMOKE/serve.log" >&2; return 1; }

    "$W" serve --via "unix:$SOCK" > "$SMOKE/worker.log" 2>&1 &
    local WORKER_PID=$!

    # The reference: in-process execution IS the fifo ordering.
    "$W" demo-request --out "$SMOKE/request-ref.json" \
        --store "$SMOKE/store-ref"
    "$W" run "$SMOKE/request-ref.json" --out "$SMOKE/response-ref.json"

    "$W" demo-request --out "$SMOKE/request.json"
    local PIDS=()
    for i in 1 2; do
        "$W" run "$SMOKE/request.json" \
            --out "$SMOKE/response-$i.json" \
            --via "unix:$SOCK" --client "client-$i" \
            > "$SMOKE/client-$i.log" 2>&1 &
        PIDS+=($!)
    done
    local PID
    for PID in "${PIDS[@]}"; do
        wait "$PID"
    done
    for i in 1 2; do
        diff "$SMOKE/response-ref.json" "$SMOKE/response-$i.json"
    done

    kill -TERM "$SERVE_PID"
    wait "$SERVE_PID"
    wait "$WORKER_PID" 2>/dev/null || true
    grep -q '"sched_policy": "sjf"' "$SMOKE/serve.log" || {
        echo "sched-smoke: daemon stats never reported sched_policy sjf" >&2
        cat "$SMOKE/serve.log" >&2
        return 1
    }
    echo "sched-smoke: sjf-scheduled responses byte-identical to the in-process fifo run"
}

# Store-lifecycle end-to-end: corruption is quarantined (verify exits
# 2, then 0), compaction folds the store into segment files, and a
# warm run over the compacted store stays byte-identical to the cold
# run. Exercises the gc|verify|compact|stats admin verbs for real.
run_store_smoke() {
    local SMOKE="$BUILD_DIR/store-smoke"
    local W="$BUILD_DIR/gpuperf-worker"
    local STORE="$SMOKE/store"
    rm -rf "$SMOKE"
    mkdir -p "$SMOKE"

    "$W" demo-request --out "$SMOKE/request.json" --store "$STORE"
    "$W" run "$SMOKE/request.json" --out "$SMOKE/response-cold.json"

    # Corrupt a stored profile (trailing garbage breaks the entry
    # framing): verify must exit 2 and quarantine it.
    local VICTIM
    VICTIM="$(ls "$STORE/profiles/"*.profile | head -n 1)"
    printf 'CORRUPTION' >> "$VICTIM"
    local RC=0
    "$W" verify --store "$STORE" > "$SMOKE/verify-corrupt.json" || RC=$?
    [[ "$RC" == 2 ]] || {
        echo "store-smoke: verify expected exit 2 on corruption, got $RC" >&2
        cat "$SMOKE/verify-corrupt.json" >&2
        return 1
    }
    grep -q '"quarantined": 1' "$SMOKE/verify-corrupt.json" || {
        echo "store-smoke: corrupt entry was not quarantined" >&2
        cat "$SMOKE/verify-corrupt.json" >&2
        return 1
    }
    "$W" verify --store "$STORE" > "$SMOKE/verify-clean.json"

    # Fold everything into segment files; the loose entries vanish
    # but a warm run must stay byte-identical to the cold one (the
    # quarantined profile is simply recomputed). Entries younger than
    # the compactor's min-age guard stay loose, so backdate the
    # just-written store first.
    find "$STORE" -type f -exec touch -t 202001010000 {} +
    "$W" compact --store "$STORE" --force --min-loose 1 \
        > "$SMOKE/compact.json"
    "$W" stats --store "$STORE" > "$SMOKE/stats.json"
    grep -q '"segment_files": [1-9]' "$SMOKE/stats.json" || {
        echo "store-smoke: compaction produced no segment files" >&2
        cat "$SMOKE/compact.json" "$SMOKE/stats.json" >&2
        return 1
    }
    "$W" run "$SMOKE/request.json" --out "$SMOKE/response-warm.json"
    diff "$SMOKE/response-cold.json" "$SMOKE/response-warm.json"

    # GC dry-run over the compacted store reports without touching.
    "$W" gc --store "$STORE" --gc-bytes 1 --dry-run > "$SMOKE/gc.json"
    grep -q '"ok": true' "$SMOKE/gc.json"
    echo "store-smoke: corruption quarantined, compacted warm run byte-identical"
}

if [[ "$API_SMOKE_ONLY" == 1 ]]; then
    run_api_smoke
    echo "check.sh: api-smoke green"
    exit 0
fi

if [[ "$SERVE_SMOKE_ONLY" == 1 ]]; then
    run_serve_smoke
    echo "check.sh: serve-smoke green"
    exit 0
fi

if [[ "$FLEET_SMOKE_ONLY" == 1 ]]; then
    run_fleet_smoke
    echo "check.sh: fleet-smoke green"
    exit 0
fi

if [[ "$SCHED_SMOKE_ONLY" == 1 ]]; then
    run_sched_smoke
    echo "check.sh: sched-smoke green"
    exit 0
fi

if [[ "$STORE_SMOKE_ONLY" == 1 ]]; then
    run_store_smoke
    echo "check.sh: store-smoke green"
    exit 0
fi

ctest --test-dir "$BUILD_DIR" --output-on-failure -j"$JOBS"

if [[ "$SANITIZE" == 1 ]]; then
    echo "check.sh: sanitizer run green (perf gates skipped)"
    exit 0
fi

# Throughput gates, skipped under sanitizers:
#  - batch scaling (self-skips on <4 hardware threads), the >=3x
#    warm-store profile-sharing speedup, and the streaming
#    time-to-first-result gate (first cell delivered before the
#    slowest calibration completes) — all through the public
#    AnalysisService API;
#  - the >=2x event-driven vs legacy-scan timing-replay speedup on
#    the high-occupancy cases;
#  - the >=2x vectorized vs scalar-reference funcsim speedup on the
#    large high-occupancy cases (warp-instrs/sec, bit-identity
#    checked first; report-only in Debug builds or with
#    GPUPERF_FUNCSIM_GATE=report).
# The main calibration is cached in the build dir, so reruns are
# cheap; the streaming study calibrates two small specs cold on
# purpose (that overlap is what it measures).
(cd "$BUILD_DIR" && ./bench_batch_throughput)
(cd "$BUILD_DIR" && ./bench_timing_replay)
(cd "$BUILD_DIR" && ./bench_funcsim)

# Socket-server soak gate: >= 8 concurrent clients over TCP and Unix
# sockets, every response bit-identical to in-process execution;
# p50/p99 latency and requests/sec land in bench_serve_soak.json.
(cd "$BUILD_DIR" && ./bench_serve_soak)

# Fleet soak gate: 4 real worker processes registered with the
# dispatcher, one SIGKILLed mid-run; zero lost cells, every response
# bit-identical; p50/p99 and per-worker cell counts land in
# bench_fleet_soak.json.
(cd "$BUILD_DIR" && ./bench_fleet_soak)

# Scheduling-fairness gate: per policy, a bulk client floods a
# 2-worker fleet while an interactive client trickles small requests;
# every response must be bit-identical to the fifo run, and the
# interactive p99 under sjf/fair-share must beat fifo by the factors
# in bench_sched_fairness.json (latency gate report-only in Debug
# builds or with GPUPERF_SCHED_GATE=report, like bench_funcsim).
(cd "$BUILD_DIR" && ./bench_sched_fairness)

run_api_smoke
run_serve_smoke
run_fleet_smoke
run_sched_smoke
run_store_smoke

echo "check.sh: all green"
