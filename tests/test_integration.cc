/**
 * @file
 * End-to-end workflow tests: the full Figure 1 pipeline on the three
 * case studies, checking that the model's error against the simulated
 * machine stays within a documented band and that the bottleneck
 * identifications match the paper's findings.
 *
 * The calibration sweep is cached in the working directory so only the
 * first test process pays for it.
 */

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "apps/matmul/gemm.h"
#include "apps/spmv/kernels.h"
#include "apps/spmv/traffic.h"
#include "apps/tridiag/cyclic_reduction.h"
#include "model/session.h"

namespace gpuperf {
namespace model {
namespace {

const char *kCache = "test_calibration_gtx285.cache";

SessionConfig
cachedConfig()
{
    SessionConfig config;
    config.calibrationCache = kCache;
    return config;
}

TEST(Integration, CalibrationTablesAreSane)
{
    AnalysisSession session(arch::GpuSpec::gtx285(), cachedConfig());
    const CalibrationTables &t = session.calibrator().tables();
    const arch::GpuSpec &spec = session.spec();
    for (arch::InstrType type : arch::kAllInstrTypes) {
        const double peak = arch::peakThroughput(spec, type);
        double prev = 0.0;
        for (int w = 1; w <= t.maxWarps; ++w) {
            const double v = t.lookupInstr(type, w);
            EXPECT_GT(v, 0.0);
            EXPECT_LT(v, peak);
            EXPECT_GT(v, prev * 0.97);  // near-monotone in warps
            prev = v;
        }
        // Saturated throughput within 25% of the hardware peak.
        EXPECT_GT(t.lookupInstr(type, t.maxWarps), 0.75 * peak);
    }
    const double shared_peak = spec.peakSharedBandwidth();
    EXPECT_LT(t.sharedBandwidth(t.maxWarps), shared_peak);
    EXPECT_GT(t.sharedBandwidth(t.maxWarps), 0.7 * shared_peak);
    // Shared memory saturates later than the instruction pipeline
    // (paper Figure 2): at 6 warps type II is near saturation while
    // shared bandwidth still has >25% headroom.
    EXPECT_GT(t.lookupInstr(arch::InstrType::TypeII, 6) /
                  t.lookupInstr(arch::InstrType::TypeII, 32),
              0.9);
    EXPECT_LT(t.sharedBandwidth(6) / t.sharedBandwidth(32), 0.75);
}

TEST(Integration, GlobalBenchSaturatesAndSawtooths)
{
    AnalysisSession session(arch::GpuSpec::gtx285(), cachedConfig());
    Calibrator &cal = session.calibrator();
    const double peak = session.spec().peakGlobalBandwidth();

    const double bw4 = cal.runGlobalBench(4, 256, 96).bandwidth;
    const double bw40 = cal.runGlobalBench(40, 256, 96).bandwidth;
    EXPECT_GT(bw40, 2.5 * bw4);        // latency-bound region scales
    EXPECT_LT(bw40, peak);
    EXPECT_GT(bw40, 0.6 * peak);       // near saturation

    // Cluster sawtooth: 40 blocks (a multiple of the 10 clusters)
    // beats 41, whose leftover block unbalances one cluster.
    const double bw41 = cal.runGlobalBench(41, 256, 96).bandwidth;
    EXPECT_GT(bw40, bw41);
}

TEST(Integration, GemmModelErrorWithinBand)
{
    AnalysisSession session(arch::GpuSpec::gtx285(), cachedConfig());
    // Moderate size keeps the test quick; tail-wave effects are larger
    // than at the paper's 1024 scale, hence the wider band here.
    for (int tile : {16, 32}) {
        funcsim::GlobalMemory gmem(16 << 20);
        apps::GemmProblem p = apps::makeGemmProblem(gmem, 512, tile);
        funcsim::RunOptions run;
        run.homogeneous = true;
        Analysis a = session.analyze(apps::makeGemmKernel(p), p.launch(),
                                     gmem, run);
        EXPECT_LT(a.errorFraction(), 0.35) << "tile " << tile;
        if (tile == 32) {
            EXPECT_EQ(a.prediction.bottleneck, Component::kShared)
                << "32x32 must be shared-memory bound (paper 5.1)";
        } else {
            EXPECT_EQ(a.prediction.bottleneck, Component::kInstruction)
                << "16x16 must be instruction bound (paper 5.1)";
        }
    }
}

TEST(Integration, CyclicReductionMatchesPaperStory)
{
    AnalysisSession session(arch::GpuSpec::gtx285(), cachedConfig());

    funcsim::GlobalMemory g1(64 << 20);
    apps::TridiagProblem cr = apps::makeTridiagProblem(g1, 512, 512,
                                                       false);
    funcsim::RunOptions run;
    run.homogeneous = true;
    Analysis a_cr = session.analyze(apps::makeCyclicReductionKernel(cr),
                                    cr.launch(), g1, run);
    EXPECT_LT(a_cr.errorFraction(), 0.20);
    EXPECT_EQ(a_cr.prediction.bottleneck, Component::kShared);
    EXPECT_TRUE(a_cr.prediction.serialized);

    funcsim::GlobalMemory g2(64 << 20);
    apps::TridiagProblem nbc = apps::makeTridiagProblem(g2, 512, 512,
                                                        true);
    Analysis a_nbc = session.analyze(apps::makeCyclicReductionKernel(nbc),
                                     nbc.launch(), g2, run);
    EXPECT_LT(a_nbc.errorFraction(), 0.20);
    EXPECT_EQ(a_nbc.prediction.bottleneck, Component::kInstruction);

    // The paper's 1.6x padding speedup, within a generous band.
    const double speedup =
        a_cr.measurement.seconds() / a_nbc.measurement.seconds();
    EXPECT_GT(speedup, 1.3);
    EXPECT_LT(speedup, 2.6);

    // The model predicts the optimization's benefit in advance:
    // predicted CR time / predicted NBC time agrees in direction.
    EXPECT_GT(a_cr.prediction.totalSeconds,
              a_nbc.prediction.totalSeconds);
}

TEST(Integration, SpmvIsGlobalBoundAndAccuratelyModeled)
{
    AnalysisSession session(arch::GpuSpec::gtx285(), cachedConfig());
    apps::BlockSparseMatrix m = apps::makeBandedBlockMatrix(2048, 13, 24);
    const apps::SpmvFormat formats[] = {apps::SpmvFormat::kEll,
                                        apps::SpmvFormat::kBellIm,
                                        apps::SpmvFormat::kBellImIv};
    double times[3];
    int i = 0;
    for (apps::SpmvFormat f : formats) {
        funcsim::GlobalMemory gmem(128 << 20);
        apps::SpmvVectors v = apps::makeVectors(gmem, m);
        isa::Kernel k = [&] {
            if (f == apps::SpmvFormat::kEll) {
                apps::EllDeviceMatrix ell = apps::buildEll(gmem, m);
                return apps::makeEllKernel(ell, v, false);
            }
            apps::BellDeviceMatrix bell = apps::buildBell(gmem, m, true);
            return apps::makeBellKernel(
                bell, v, f == apps::SpmvFormat::kBellImIv, false);
        }();
        const int work =
            f == apps::SpmvFormat::kEll ? m.rows() : m.blockRows;
        Analysis a = session.analyze(
            k, {apps::spmvGridDim(work), apps::kSpmvBlockDim}, gmem);
        EXPECT_EQ(a.prediction.bottleneck, Component::kGlobal)
            << apps::spmvFormatName(f);
        EXPECT_LT(a.errorFraction(), 0.20) << apps::spmvFormatName(f);
        times[i++] = a.measurement.seconds();
    }
    // Paper Figure 12 ordering without the cache:
    // ELL slowest, BELL+IM middle, BELL+IMIV fastest.
    EXPECT_GT(times[0], times[1]);
    EXPECT_GT(times[1], times[2]);
}

TEST(Integration, CacheFileRoundTrips)
{
    // Two calibrators on the same cache agree exactly.
    SimulatedDevice d1(arch::GpuSpec::gtx285());
    Calibrator c1(d1);
    c1.setCacheFile(kCache);
    const CalibrationTables &t1 = c1.tables();

    SimulatedDevice d2(arch::GpuSpec::gtx285());
    Calibrator c2(d2);
    c2.setCacheFile(kCache);
    const CalibrationTables &t2 = c2.tables();
    for (int w = 1; w <= t1.maxWarps; ++w) {
        EXPECT_DOUBLE_EQ(t1.sharedPassThroughput[w],
                         t2.sharedPassThroughput[w]);
        EXPECT_DOUBLE_EQ(t1.instrThroughput[1][w],
                         t2.instrThroughput[1][w]);
    }
}

TEST(Integration, CorruptCacheIsRejected)
{
    const char *bad = "test_corrupt.cache";
    {
        std::ofstream out(bad);
        out << "not-a-fingerprint\n1 2\n3 4\n";
    }
    SimulatedDevice d(arch::GpuSpec::gtx285());
    Calibrator c(d);
    c.setCacheFile(bad);
    // Must ignore the bad file and produce sane tables via a real
    // sweep (the sweep result then overwrites the file).
    const CalibrationTables &t = c.tables();
    EXPECT_EQ(t.maxWarps, 32);
    EXPECT_GT(t.lookupInstr(arch::InstrType::TypeII, 16), 0.0);
    std::remove(bad);
}

} // namespace
} // namespace model
} // namespace gpuperf
