/**
 * @file
 * Functional-simulator semantics: ALU ops, predicates, divergence,
 * loops, barriers, memory, statistics, and trace collection.
 */

#include <cmath>
#include <cstring>

#include <gtest/gtest.h>

#include "funcsim/interpreter.h"
#include "isa/builder.h"

namespace gpuperf {
namespace funcsim {
namespace {

using isa::CmpOp;
using isa::KernelBuilder;
using isa::Pred;
using isa::Reg;
using isa::SpecialReg;

constexpr uint64_t kOut = 4096;

arch::GpuSpec
spec()
{
    return arch::GpuSpec::gtx285();
}

/** Run a 1-block kernel and return the first @p n output floats. */
std::vector<float>
runAndReadF(const isa::Kernel &k, int block_dim, int n,
            GlobalMemory &gmem, int grid_dim = 1)
{
    FunctionalSimulator sim(spec());
    LaunchConfig cfg{grid_dim, block_dim};
    sim.run(k, cfg, gmem);
    std::vector<float> out(n);
    std::memcpy(out.data(), gmem.f32(kOut), n * 4);
    return out;
}

/** Emit: out[tid] = value in register @p v. */
void
emitStoreOut(KernelBuilder &b, Reg v)
{
    Reg tid = b.reg();
    Reg addr = b.reg();
    b.s2r(tid, SpecialReg::kTid);
    b.shlImm(addr, tid, 2);
    b.iaddImm(addr, addr, static_cast<int32_t>(kOut));
    b.stg(addr, v);
}

TEST(Interpreter, ArithmeticOpcodes)
{
    // One thread computes a chain exercising many opcodes; check the
    // final value against host arithmetic.
    KernelBuilder b("alu");
    Reg x = b.reg();
    Reg y = b.reg();
    Reg z = b.reg();
    b.movImmF(x, 3.0f);
    b.movImmF(y, 2.0f);
    b.fmul(z, x, y);        // 6
    b.fadd(z, z, y);        // 8
    b.fmad(z, z, y, x);     // 19
    b.rcp(z, z);            // 1/19
    emitStoreOut(b, z);
    GlobalMemory gmem(1 << 20);
    auto out = runAndReadF(b.build(), 1, 1, gmem);
    EXPECT_FLOAT_EQ(out[0], 1.0f / 19.0f);
}

TEST(Interpreter, IntegerOpcodes)
{
    KernelBuilder b("int");
    Reg a = b.reg();
    Reg c = b.reg();
    Reg f = b.reg();
    b.movImm(a, 12);
    b.iaddImm(a, a, 5);      // 17
    b.imulImm(a, a, 3);      // 51
    b.shlImm(c, a, 2);       // 204
    b.shrImm(c, c, 1);       // 102
    b.andImm(c, c, 0x7f);    // 102
    b.isub(c, c, a);         // 51
    b.i2f(f, c);
    emitStoreOut(b, f);
    GlobalMemory gmem(1 << 20);
    auto out = runAndReadF(b.build(), 1, 1, gmem);
    EXPECT_FLOAT_EQ(out[0], 51.0f);
}

TEST(Interpreter, TranscendentalOpcodes)
{
    KernelBuilder b("sfu");
    Reg x = b.reg();
    Reg s = b.reg();
    Reg c = b.reg();
    Reg l = b.reg();
    Reg e = b.reg();
    Reg q = b.reg();
    b.movImmF(x, 0.5f);
    b.fsin(s, x);
    b.fcos(c, x);
    b.lg2(l, x);
    b.ex2(e, x);
    b.rsqrt(q, x);
    Reg sum = b.reg();
    b.fadd(sum, s, c);
    b.fadd(sum, sum, l);
    b.fadd(sum, sum, e);
    b.fadd(sum, sum, q);
    emitStoreOut(b, sum);
    GlobalMemory gmem(1 << 20);
    auto out = runAndReadF(b.build(), 1, 1, gmem);
    const float expect = std::sin(0.5f) + std::cos(0.5f) +
                         std::log2(0.5f) + std::exp2(0.5f) +
                         1.0f / std::sqrt(0.5f);
    EXPECT_NEAR(out[0], expect, 1e-5f);
}

TEST(Interpreter, SpecialRegisters)
{
    // out[gtid] = ctaid * 1000 + tid.
    KernelBuilder b("sregs");
    Reg tid = b.reg();
    Reg cta = b.reg();
    Reg ntid = b.reg();
    Reg gtid = b.reg();
    Reg v = b.reg();
    Reg addr = b.reg();
    b.s2r(tid, SpecialReg::kTid);
    b.s2r(cta, SpecialReg::kCtaid);
    b.s2r(ntid, SpecialReg::kNtid);
    b.imad(gtid, cta, ntid, tid);
    b.imulImm(v, cta, 1000);
    b.iadd(v, v, tid);
    b.i2f(v, v);
    b.shlImm(addr, gtid, 2);
    b.iaddImm(addr, addr, static_cast<int32_t>(kOut));
    b.stg(addr, v);

    GlobalMemory gmem(1 << 20);
    FunctionalSimulator sim(spec());
    sim.run(b.build(), {3, 64}, gmem);
    const float *out = gmem.f32(kOut);
    for (int blk = 0; blk < 3; ++blk) {
        for (int t = 0; t < 64; ++t)
            EXPECT_FLOAT_EQ(out[blk * 64 + t],
                            static_cast<float>(blk * 1000 + t));
    }
}

TEST(Interpreter, LaneAndWarpId)
{
    KernelBuilder b("lanes");
    Reg lane = b.reg();
    Reg warp = b.reg();
    Reg v = b.reg();
    b.s2r(lane, SpecialReg::kLaneId);
    b.s2r(warp, SpecialReg::kWarpId);
    b.imulImm(v, warp, 100);
    b.iadd(v, v, lane);
    b.i2f(v, v);
    emitStoreOut(b, v);
    GlobalMemory gmem(1 << 20);
    auto out = runAndReadF(b.build(), 96, 96, gmem);
    EXPECT_FLOAT_EQ(out[0], 0.0f);
    EXPECT_FLOAT_EQ(out[33], 101.0f);
    EXPECT_FLOAT_EQ(out[95], 231.0f);
}

TEST(Interpreter, SelectAndPredicates)
{
    // out[tid] = tid < 3 ? 10 : 20.
    KernelBuilder b("sel");
    Reg tid = b.reg();
    Reg a = b.reg();
    Reg c = b.reg();
    Pred p = b.pred();
    b.s2r(tid, SpecialReg::kTid);
    b.movImmF(a, 10.0f);
    b.movImmF(c, 20.0f);
    b.setpIImm(p, CmpOp::kLt, tid, 3);
    Reg r = b.reg();
    b.sel(r, p, a, c);
    emitStoreOut(b, r);
    GlobalMemory gmem(1 << 20);
    auto out = runAndReadF(b.build(), 8, 8, gmem);
    for (int i = 0; i < 8; ++i)
        EXPECT_FLOAT_EQ(out[i], i < 3 ? 10.0f : 20.0f);
}

TEST(Interpreter, DivergentIfElse)
{
    // Half the warp takes each branch.
    KernelBuilder b("ifelse");
    Reg tid = b.reg();
    Reg v = b.reg();
    Pred p = b.pred();
    b.s2r(tid, SpecialReg::kTid);
    b.setpIImm(p, CmpOp::kLt, tid, 16);
    b.beginIf(p);
    b.movImmF(v, 1.0f);
    b.beginElse();
    b.movImmF(v, 2.0f);
    b.endIf();
    emitStoreOut(b, v);
    GlobalMemory gmem(1 << 20);
    auto out = runAndReadF(b.build(), 32, 32, gmem);
    for (int i = 0; i < 32; ++i)
        EXPECT_FLOAT_EQ(out[i], i < 16 ? 1.0f : 2.0f);
}

TEST(Interpreter, NestedDivergence)
{
    KernelBuilder b("nested");
    Reg tid = b.reg();
    Reg v = b.reg();
    Pred p1 = b.pred();
    Pred p2 = b.pred();
    b.s2r(tid, SpecialReg::kTid);
    b.movImmF(v, 0.0f);
    b.setpIImm(p1, CmpOp::kLt, tid, 8);
    b.beginIf(p1);
    {
        b.setpIImm(p2, CmpOp::kLt, tid, 4);
        b.beginIf(p2);
        b.movImmF(v, 1.0f);
        b.beginElse();
        b.movImmF(v, 2.0f);
        b.endIf();
    }
    b.beginElse();
    b.movImmF(v, 3.0f);
    b.endIf();
    emitStoreOut(b, v);
    GlobalMemory gmem(1 << 20);
    auto out = runAndReadF(b.build(), 16, 16, gmem);
    for (int i = 0; i < 16; ++i) {
        const float expect = i < 4 ? 1.0f : (i < 8 ? 2.0f : 3.0f);
        EXPECT_FLOAT_EQ(out[i], expect) << i;
    }
}

TEST(Interpreter, EmptyBranchesAreSkipped)
{
    // No lane takes the IF; the body must not execute (it would trap
    // on an out-of-bounds store).
    KernelBuilder b("skip");
    Reg tid = b.reg();
    Reg bad = b.reg();
    Reg v = b.reg();
    Pred p = b.pred();
    b.s2r(tid, SpecialReg::kTid);
    b.setpIImm(p, CmpOp::kLt, tid, 0);   // never true
    b.movImmF(v, 7.0f);
    b.beginIf(p);
    b.movImm(bad, 1 << 30);
    b.stg(bad, v);
    b.endIf();
    emitStoreOut(b, v);
    GlobalMemory gmem(1 << 20);
    auto out = runAndReadF(b.build(), 4, 4, gmem);
    EXPECT_FLOAT_EQ(out[0], 7.0f);
}

TEST(Interpreter, UniformLoop)
{
    // out[tid] = sum of 0..9.
    KernelBuilder b("loop");
    Reg i = b.reg();
    Reg sumI = b.reg();
    Reg sum = b.reg();
    Pred p = b.pred();
    b.movImm(i, 0);
    b.movImm(sumI, 0);
    b.beginLoop();
    b.setpIImm(p, CmpOp::kGe, i, 10);
    b.brk(p);
    b.iadd(sumI, sumI, i);
    b.iaddImm(i, i, 1);
    b.endLoop();
    b.i2f(sum, sumI);
    emitStoreOut(b, sum);
    GlobalMemory gmem(1 << 20);
    auto out = runAndReadF(b.build(), 8, 8, gmem);
    for (int i2 = 0; i2 < 8; ++i2)
        EXPECT_FLOAT_EQ(out[i2], 45.0f);
}

TEST(Interpreter, DivergentLoopTripCounts)
{
    // Thread t iterates t+1 times: out[t] = t+1.
    KernelBuilder b("divloop");
    Reg tid = b.reg();
    Reg i = b.reg();
    Reg cnt = b.reg();
    Reg f = b.reg();
    Pred p = b.pred();
    b.s2r(tid, SpecialReg::kTid);
    b.movImm(i, 0);
    b.movImm(cnt, 0);
    b.beginLoop();
    b.setpI(p, CmpOp::kGt, i, tid);
    b.brk(p);
    b.iaddImm(cnt, cnt, 1);
    b.iaddImm(i, i, 1);
    b.endLoop();
    b.i2f(f, cnt);
    emitStoreOut(b, f);
    GlobalMemory gmem(1 << 20);
    auto out = runAndReadF(b.build(), 40, 40, gmem);
    for (int t = 0; t < 40; ++t)
        EXPECT_FLOAT_EQ(out[t], static_cast<float>(t + 1)) << t;
}

TEST(Interpreter, SharedMemoryRoundTripAndBarrier)
{
    // Reverse a block's values through shared memory across a barrier
    // (cross-warp communication).
    const int n = 64;
    KernelBuilder b("reverse");
    Reg tid = b.reg();
    Reg sa = b.reg();
    Reg v = b.reg();
    Reg rev = b.reg();
    b.s2r(tid, SpecialReg::kTid);
    b.shlImm(sa, tid, 2);
    b.i2f(v, tid);
    b.sts(sa, v);
    b.bar();
    // read shared[n-1-tid]
    b.movImm(rev, n - 1);
    b.isub(rev, rev, tid);
    b.shlImm(rev, rev, 2);
    b.lds(v, rev);
    emitStoreOut(b, v);
    GlobalMemory gmem(1 << 20);
    auto out = runAndReadF(b.build(n * 4), n, n, gmem);
    for (int t = 0; t < n; ++t)
        EXPECT_FLOAT_EQ(out[t], static_cast<float>(n - 1 - t));
}

TEST(Interpreter, FmadSharedReadsOperandFromShared)
{
    KernelBuilder b("mads");
    Reg tid = b.reg();
    Reg sa = b.reg();
    Reg v = b.reg();
    Reg acc = b.reg();
    Reg zero = b.reg();
    b.s2r(tid, SpecialReg::kTid);
    b.shlImm(sa, tid, 2);
    b.i2f(v, tid);
    b.sts(sa, v);
    b.movImm(zero, 0);
    b.movImmF(acc, 1.0f);
    // acc = 2 * shared[tid*4] + acc
    Reg two = b.reg();
    b.movImmF(two, 2.0f);
    b.fmadShared(acc, two, sa, 0, acc);
    emitStoreOut(b, acc);
    GlobalMemory gmem(1 << 20);
    auto out = runAndReadF(b.build(256), 8, 8, gmem);
    for (int t = 0; t < 8; ++t)
        EXPECT_FLOAT_EQ(out[t], 2.0f * t + 1.0f);
}

TEST(Interpreter, StatsCountInstructionTypes)
{
    KernelBuilder b("counts");
    Reg x = b.reg();
    Reg y = b.reg();
    b.movImmF(x, 1.0f);
    b.movImmF(y, 1.0f);
    b.fmul(x, x, y);   // type I
    b.fmad(x, x, y, y);  // type II + MAD
    b.rcp(x, x);       // type III
    b.dadd(x, x, y);   // type IV
    emitStoreOut(b, x);

    GlobalMemory gmem(1 << 20);
    FunctionalSimulator sim(spec());
    RunResult res = sim.run(b.build(), {1, 32}, gmem);
    const auto &stats = res.stats;
    EXPECT_EQ(stats.totalType(arch::InstrType::TypeI), 1u);
    EXPECT_EQ(stats.totalType(arch::InstrType::TypeIII), 1u);
    EXPECT_EQ(stats.totalType(arch::InstrType::TypeIV), 1u);
    EXPECT_EQ(stats.totalMads(), 1u);
    // Type II: 2 movi + mad + 3 store-address ops (s2r, shl, iadd).
    EXPECT_EQ(stats.totalType(arch::InstrType::TypeII), 6u);
    // Total includes the global store.
    EXPECT_EQ(stats.totalWarpInstrs(), 10u);
}

TEST(Interpreter, StatsSplitStagesAtBarriers)
{
    KernelBuilder b("stages");
    Reg x = b.reg();
    Reg y = b.reg();
    b.movImmF(x, 1.0f);
    b.movImmF(y, 1.0f);
    b.bar();
    b.fadd(x, x, y);
    b.fadd(x, x, y);
    b.bar();
    b.fmul(x, x, y);
    emitStoreOut(b, x);

    GlobalMemory gmem(1 << 20);
    FunctionalSimulator sim(spec());
    RunResult res = sim.run(b.build(), {1, 64}, gmem);
    ASSERT_EQ(res.stats.stages.size(), 3u);
    EXPECT_EQ(res.stats.barriersPerBlock, 2);
    // Stage 0: two movi per warp (x2 warps) + the barrier itself.
    const auto &s0 = res.stats.stages[0];
    EXPECT_EQ(s0.typeCounts[1], 2u * 2 + 2);
    const auto &s2 = res.stats.stages[2];
    EXPECT_EQ(res.stats.stages[1].typeCounts[1], 2u * 2 + 2);
    EXPECT_EQ(s2.typeCounts[0], 2u);  // fmul is type I
}

TEST(Interpreter, SharedStatsCountConflictsExactly)
{
    // Stride-2 access: 2-way conflicts on both half-warps -> 4 passes;
    // ideal would be 2.
    KernelBuilder b("conflicts");
    Reg tid = b.reg();
    Reg sa = b.reg();
    Reg v = b.reg();
    b.s2r(tid, SpecialReg::kTid);
    b.shlImm(sa, tid, 3);  // tid * 8 bytes = stride-2 words
    b.lds(v, sa);
    emitStoreOut(b, v);
    GlobalMemory gmem(1 << 20);
    FunctionalSimulator sim(spec());
    RunResult res = sim.run(b.build(1024), {1, 32}, gmem);
    EXPECT_EQ(res.stats.totalSharedTransactions(), 4u);
    EXPECT_EQ(res.stats.stages[0].sharedTransactionsIdeal, 2u);
    EXPECT_EQ(res.stats.totalSharedBytes(), 32u * 4);
}

TEST(Interpreter, GlobalStatsCountCoalescedTransactions)
{
    // Coalesced warp load: 2 x 64 B transactions.
    KernelBuilder b("gmem");
    Reg tid = b.reg();
    Reg a = b.reg();
    Reg v = b.reg();
    b.s2r(tid, SpecialReg::kTid);
    b.shlImm(a, tid, 2);
    b.iaddImm(a, a, static_cast<int32_t>(kOut));
    b.ldg(v, a);
    b.stg(a, v);
    GlobalMemory gmem(1 << 20);
    FunctionalSimulator sim(spec());
    RunResult res = sim.run(b.build(), {1, 32}, gmem);
    EXPECT_EQ(res.stats.totalGlobalTransactions(), 4u);
    EXPECT_EQ(res.stats.totalGlobalBytes(), 4u * 64);
    EXPECT_EQ(res.stats.stages[0].globalXactBySize.at(64), 4u);
    EXPECT_EQ(res.stats.stages[0].globalRequestBytes, 2u * 32 * 4);
}

TEST(Interpreter, UncoalescedStrideFourIsSplitIntoSegments)
{
    KernelBuilder b("gmem_stride");
    Reg tid = b.reg();
    Reg a = b.reg();
    Reg v = b.reg();
    b.s2r(tid, SpecialReg::kTid);
    b.shlImm(a, tid, 4);  // stride 16 B
    b.iaddImm(a, a, static_cast<int32_t>(kOut));
    b.ldg(v, a);
    GlobalMemory gmem(1 << 20);
    FunctionalSimulator sim(spec());
    RunResult res = sim.run(b.build(), {1, 32}, gmem);
    // Half-warp spans 256 B -> 2 x 128 B segments; 4 for the warp.
    EXPECT_EQ(res.stats.totalGlobalTransactions(), 4u);
    EXPECT_EQ(res.stats.totalGlobalBytes(), 4u * 128);
}

TEST(Interpreter, HomogeneousReplicationScalesStats)
{
    KernelBuilder b("homog");
    Reg x = b.reg();
    Reg y = b.reg();
    b.movImmF(x, 1.0f);
    b.movImmF(y, 2.0f);
    b.fmad(x, x, y, y);
    emitStoreOut(b, x);

    GlobalMemory g1(1 << 20);
    GlobalMemory g2(1 << 20);
    FunctionalSimulator sim(spec());
    RunOptions homog;
    homog.homogeneous = true;
    RunResult full = sim.run(b.build(), {20, 64}, g1);
    RunResult sampled = sim.run(b.build(), {20, 64}, g2, homog);
    EXPECT_EQ(full.stats.totalWarpInstrs(),
              sampled.stats.totalWarpInstrs());
    EXPECT_EQ(full.stats.totalMads(), sampled.stats.totalMads());
    EXPECT_EQ(sampled.stats.sampledBlocks, 1);
}

TEST(Interpreter, TraceDeduplicatesIdenticalWarps)
{
    KernelBuilder b("trace");
    Reg x = b.reg();
    b.movImmF(x, 1.0f);
    b.fadd(x, x, x);
    emitStoreOut(b, x);
    GlobalMemory gmem(1 << 20);
    FunctionalSimulator sim(spec());
    RunOptions opts;
    opts.collectTrace = true;
    RunResult res = sim.run(b.build(), {4, 64}, gmem, opts);
    ASSERT_EQ(res.trace.blocks.size(), 4u);
    EXPECT_EQ(res.trace.blocks[0].warpTraceIdx.size(), 2u);
    // All warps execute identical streams except for addresses, which
    // differ in the store transaction layout only; the arithmetic part
    // dedups. Pool must be far smaller than 8 traces.
    EXPECT_LE(res.trace.pool.size(), 2u);
    EXPECT_GT(res.trace.totalOps(), 0u);
}

TEST(Interpreter, TraceRecordsUnitsAndConflicts)
{
    KernelBuilder b("trace_units");
    Reg tid = b.reg();
    Reg sa = b.reg();
    Reg v = b.reg();
    b.s2r(tid, SpecialReg::kTid);
    b.shlImm(sa, tid, 3);  // 2-way conflict
    b.lds(v, sa);
    b.bar();
    b.fadd(v, v, v);
    emitStoreOut(b, v);
    GlobalMemory gmem(1 << 20);
    FunctionalSimulator sim(spec());
    RunOptions opts;
    opts.collectTrace = true;
    RunResult res = sim.run(b.build(1024), {1, 32}, gmem, opts);
    const auto &ops = res.trace.pool[0].ops;
    int shared_ops = 0;
    int barrier_ops = 0;
    int global_ops = 0;
    for (const auto &op : ops) {
        if (op.unit == isa::UnitKind::kSharedMem) {
            ++shared_ops;
            EXPECT_EQ(op.conflict, 4);  // 2-way on both half-warps
        }
        if (op.unit == isa::UnitKind::kBarrier)
            ++barrier_ops;
        if (op.unit == isa::UnitKind::kGlobalStore)
            ++global_ops;
    }
    EXPECT_EQ(shared_ops, 1);
    EXPECT_EQ(barrier_ops, 1);
    EXPECT_EQ(global_ops, 1);
}

TEST(InterpreterDeath, BarrierInsideDivergenceIsFatal)
{
    KernelBuilder b("badbar");
    Reg tid = b.reg();
    Pred p = b.pred();
    b.s2r(tid, SpecialReg::kTid);
    b.setpIImm(p, CmpOp::kLt, tid, 1);
    b.beginIf(p);
    b.bar();
    b.endIf();
    isa::Kernel k = b.build();
    GlobalMemory gmem(1 << 20);
    FunctionalSimulator sim(spec());
    LaunchConfig cfg{1, 32};
    EXPECT_DEATH(sim.run(k, cfg, gmem), "divergent");
}

TEST(InterpreterDeath, RunawayLoopIsFatal)
{
    KernelBuilder b("runaway");
    Reg i = b.reg();
    Pred p = b.pred();
    b.movImm(i, 0);
    b.beginLoop();
    b.setpIImm(p, CmpOp::kLt, i, 0);  // never breaks
    b.brk(p);
    b.endLoop();
    isa::Kernel k = b.build();
    GlobalMemory gmem(1 << 20);
    FunctionalSimulator sim(spec());
    LaunchConfig cfg{1, 32};
    RunOptions opts;
    opts.maxWarpOps = 10000;
    EXPECT_DEATH(sim.run(k, cfg, gmem, opts), "runaway");
}

TEST(Interpreter, ActiveWarpCensusTracksPartialBlocks)
{
    // Only warp 0 does real work; warps 1-3 fall through.
    KernelBuilder b("census");
    Reg tid = b.reg();
    Reg x = b.reg();
    Pred p = b.pred();
    b.s2r(tid, SpecialReg::kTid);
    b.movImmF(x, 0.0f);
    b.setpIImm(p, CmpOp::kLt, tid, 32);
    b.beginIf(p);
    for (int i = 0; i < 50; ++i)
        b.fadd(x, x, x);
    b.endIf();
    emitStoreOut(b, x);
    GlobalMemory gmem(1 << 20);
    FunctionalSimulator sim(spec());
    RunResult res = sim.run(b.build(), {1, 128}, gmem);
    EXPECT_NEAR(res.stats.stages[0].activeWarpsPerBlock, 1.0, 1e-9);
}

// --------------------------------------------------------------------
// Vectorized-vs-scalar bit-identity: the data-oriented core must be
// indistinguishable from the original lane-at-a-time interpreter —
// same memory image, same StageStats, same interned traces — on every
// divergence shape the mask machinery can produce.
// --------------------------------------------------------------------

/**
 * GTX 285 with 16-lane warps: exercises sub-32 masks (lanesMask_ !=
 * 0xffffffff) and tail warps whose size is not a multiple of 32.
 * maxWarpsPerSm doubles so the occupancy invariant
 * maxWarpsPerSm * warpSize >= maxThreadsPerSm still holds.
 */
arch::GpuSpec
halfWarpSpec()
{
    arch::GpuSpec gs = arch::GpuSpec::gtx285();
    gs.name = "GTX 285 (16-lane warps)";
    gs.warpSize = 16;
    gs.maxWarpsPerSm = 64;
    return gs;
}

/**
 * Run @p k under both execution cores on copies of @p pristine and
 * require byte-identical results: per-stage statistics, barrier
 * census, interned warp traces (contents and hashes), per-block trace
 * indices, and the final memory image digest.
 */
void
expectBitIdentical(const isa::Kernel &k, const LaunchConfig &cfg,
                   const GlobalMemory &pristine,
                   const arch::GpuSpec &gs)
{
    GlobalMemory memRef = pristine;
    GlobalMemory memVec = pristine;
    FunctionalSimulator ref(gs, ExecMode::kScalarReference);
    FunctionalSimulator vec(gs, ExecMode::kVectorized);
    RunOptions opts;
    opts.collectTrace = true;
    RunResult a = ref.run(k, cfg, memRef, opts);
    RunResult b = vec.run(k, cfg, memVec, opts);

    EXPECT_EQ(a.stats.gridDim, b.stats.gridDim);
    EXPECT_EQ(a.stats.blockDim, b.stats.blockDim);
    EXPECT_EQ(a.stats.warpsPerBlock, b.stats.warpsPerBlock);
    EXPECT_EQ(a.stats.barriersPerBlock, b.stats.barriersPerBlock);
    EXPECT_EQ(a.stats.sampledBlocks, b.stats.sampledBlocks);
    ASSERT_EQ(a.stats.stages.size(), b.stats.stages.size());
    for (size_t i = 0; i < a.stats.stages.size(); ++i)
        EXPECT_TRUE(a.stats.stages[i] == b.stats.stages[i])
            << "stage " << i << " diverged";

    ASSERT_EQ(a.trace.pool.size(), b.trace.pool.size());
    for (size_t i = 0; i < a.trace.pool.size(); ++i) {
        EXPECT_TRUE(a.trace.pool[i] == b.trace.pool[i])
            << "warp trace " << i << " diverged";
        EXPECT_EQ(a.trace.pool[i].hash(), b.trace.pool[i].hash());
    }
    ASSERT_EQ(a.trace.blocks.size(), b.trace.blocks.size());
    for (size_t i = 0; i < a.trace.blocks.size(); ++i)
        EXPECT_EQ(a.trace.blocks[i].warpTraceIdx,
                  b.trace.blocks[i].warpTraceIdx)
            << "block " << i << " interning diverged";

    EXPECT_EQ(memRef.contentHash(), memVec.contentHash());
}

/** Fresh image whose first 64 KiB are covered by contentHash(). */
GlobalMemory
hashedMemory()
{
    GlobalMemory gmem(1 << 20);
    gmem.alloc(64 * 1024);
    return gmem;
}

TEST(ExecModeIdentity, EmptyActiveMaskAfterIf)
{
    // No lane satisfies the predicate: the IF body runs with an empty
    // mask and there is no else arm to repopulate it.
    KernelBuilder b("empty-if");
    Reg tid = b.reg();
    Reg x = b.reg();
    Pred p = b.pred();
    b.s2r(tid, SpecialReg::kTid);
    b.movImmF(x, 1.0f);
    b.setpIImm(p, CmpOp::kLt, tid, 0);
    b.beginIf(p);
    b.fadd(x, x, x);
    b.iadd(tid, tid, tid);
    b.endIf();
    emitStoreOut(b, x);
    isa::Kernel k = b.build();
    expectBitIdentical(k, {2, 64}, hashedMemory(), spec());
    expectBitIdentical(k, {2, 64}, hashedMemory(), halfWarpSpec());
}

TEST(ExecModeIdentity, AllLanesTakeIfWithEmptyElse)
{
    KernelBuilder b("full-if");
    Reg tid = b.reg();
    Reg x = b.reg();
    Pred p = b.pred();
    b.s2r(tid, SpecialReg::kTid);
    b.movImmF(x, 2.0f);
    b.setpIImm(p, CmpOp::kGe, tid, 0);
    b.beginIf(p);
    b.fmul(x, x, x);
    b.beginElse();
    b.movImmF(x, -1.0f);
    b.endIf();
    emitStoreOut(b, x);
    isa::Kernel k = b.build();
    expectBitIdentical(k, {1, 96}, hashedMemory(), spec());
    expectBitIdentical(k, {1, 96}, hashedMemory(), halfWarpSpec());
}

TEST(ExecModeIdentity, SingleLaneBranchArm)
{
    // Fully divergent warp: each loop iteration isolates exactly one
    // lane through an equality predicate.
    KernelBuilder b("one-lane");
    Reg tid = b.reg();
    Reg x = b.reg();
    Pred p = b.pred();
    b.s2r(tid, SpecialReg::kTid);
    b.movImmF(x, 0.0f);
    for (int lane = 0; lane < 8; ++lane) {
        b.setpIImm(p, CmpOp::kEq, tid, lane);
        b.beginIf(p);
        b.movImmF(x, static_cast<float>(lane + 1));
        b.endIf();
    }
    emitStoreOut(b, x);
    isa::Kernel k = b.build();
    expectBitIdentical(k, {1, 32}, hashedMemory(), spec());
    expectBitIdentical(k, {1, 32}, hashedMemory(), halfWarpSpec());
}

TEST(ExecModeIdentity, PerLaneLoopTripCounts)
{
    // tid-dependent trip counts: the loop mask thins lane by lane.
    KernelBuilder b("lane-trips");
    Reg tid = b.reg();
    Reg i = b.reg();
    Reg acc = b.reg();
    Reg one = b.reg();
    Pred done = b.pred();
    b.s2r(tid, SpecialReg::kTid);
    b.movImm(i, 0);
    b.movImmF(acc, 0.0f);
    b.movImmF(one, 1.0f);
    b.beginLoop();
    b.isub(i, i, tid);   // i counts down by tid (0 for lane 0)
    b.iaddImm(i, i, -1); // ... minus one, so every lane terminates
    b.fadd(acc, acc, one);
    b.setpIImm(done, CmpOp::kLt, i, -20);
    b.brk(done);
    b.endLoop();
    emitStoreOut(b, acc);
    isa::Kernel k = b.build();
    expectBitIdentical(k, {1, 64}, hashedMemory(), spec());
    expectBitIdentical(k, {1, 64}, hashedMemory(), halfWarpSpec());
}

TEST(ExecModeIdentity, PredicateNegatePaths)
{
    // Negated guards on both structured constructs: beginIf(p, true)
    // and brk(p, true) exercise the negate flag in guardMask.
    KernelBuilder b("negate");
    Reg tid = b.reg();
    Reg x = b.reg();
    Reg i = b.reg();
    Reg four = b.reg();
    Reg half = b.reg();
    Pred p = b.pred();
    Pred keep = b.pred();
    b.s2r(tid, SpecialReg::kTid);
    b.movImmF(x, 1.0f);
    b.movImmF(four, 4.0f);
    b.movImmF(half, 0.5f);
    b.setpIImm(p, CmpOp::kLt, tid, 16);
    b.beginIf(p, true);              // lanes with tid >= 16
    b.fadd(x, x, four);
    b.endIf();
    b.movImm(i, 0);
    b.beginLoop();
    b.iaddImm(i, i, 1);
    b.fadd(x, x, half);
    b.setpIImm(keep, CmpOp::kLt, i, 3);
    b.brk(keep, true);               // leave when NOT (i < 3)
    b.endLoop();
    emitStoreOut(b, x);
    isa::Kernel k = b.build();
    expectBitIdentical(k, {2, 48}, hashedMemory(), spec());
    expectBitIdentical(k, {2, 48}, hashedMemory(), halfWarpSpec());
}

TEST(ExecModeIdentity, TailWarpsAndSubWarpSpecs)
{
    // blockDim 40 leaves a 8-lane tail warp on gtx285; blockDim 24
    // leaves an 8-lane tail on the 16-lane spec. Divergence inside
    // the tail exercises masks that never cover the full warp.
    KernelBuilder b("tail");
    Reg tid = b.reg();
    Reg x = b.reg();
    Reg negOne = b.reg();
    Pred p = b.pred();
    b.s2r(tid, SpecialReg::kTid);
    b.movImmF(x, 3.0f);
    b.movImmF(negOne, -1.0f);
    b.setpIImm(p, CmpOp::kGe, tid, 36);
    b.beginIf(p);
    b.fmul(x, x, x);
    b.beginElse();
    b.fadd(x, x, negOne);
    b.endIf();
    emitStoreOut(b, x);
    isa::Kernel k = b.build();
    expectBitIdentical(k, {3, 40}, hashedMemory(), spec());
    expectBitIdentical(k, {3, 24}, hashedMemory(), halfWarpSpec());
    expectBitIdentical(k, {1, 17}, hashedMemory(), halfWarpSpec());
}

TEST(ExecModeIdentity, SharedMemoryUnderDivergence)
{
    // STS/LDS inside a divergent IF: the inactive lanes must keep
    // their registers and shared words untouched, and conflict
    // degrees must match on the partial masks.
    KernelBuilder b("shared-div");
    Reg tid = b.reg();
    Reg addr = b.reg();
    Reg v = b.reg();
    Reg out = b.reg();
    Pred p = b.pred();
    b.s2r(tid, SpecialReg::kTid);
    b.shlImm(addr, tid, 3);          // stride-2 words: bank conflicts
    b.i2f(v, tid);
    b.movImmF(out, -7.0f);
    b.setpIImm(p, CmpOp::kLt, tid, 20);
    b.beginIf(p);
    b.sts(addr, v);
    b.endIf();
    b.bar();                         // barriers must be convergent
    b.beginIf(p);
    b.lds(out, addr, 0);
    b.endIf();
    emitStoreOut(b, out);
    isa::Kernel k = b.build(2048);
    expectBitIdentical(k, {2, 32}, hashedMemory(), spec());
    expectBitIdentical(k, {2, 32}, hashedMemory(), halfWarpSpec());
}

TEST(ExecModeIdentity, GlobalAndTextureUnderDivergence)
{
    // Divergent LDG/STG/LDT with a data-dependent stride: coalescing
    // segment splits and texture line dedup must agree exactly.
    GlobalMemory gmem = hashedMemory();
    for (int i = 0; i < 256; ++i)
        gmem.f32(8192)[i] = 0.25f * static_cast<float>(i);

    KernelBuilder b("global-div");
    Reg tid = b.reg();
    Reg addr = b.reg();
    Reg x = b.reg();
    Reg t = b.reg();
    Pred p = b.pred();
    b.s2r(tid, SpecialReg::kTid);
    b.shlImm(addr, tid, 4);          // stride-4 words: segment splits
    b.movImmF(x, 0.0f);
    b.movImmF(t, 0.0f);
    b.setpIImm(p, CmpOp::kLt, tid, 24);
    b.beginIf(p);
    b.ldg(x, addr, 8192);
    b.ldt(t, addr, 16384);
    b.fadd(x, x, t);
    b.endIf();
    emitStoreOut(b, x);
    isa::Kernel k = b.build();
    expectBitIdentical(k, {2, 32}, gmem, spec());
    expectBitIdentical(k, {2, 32}, gmem, halfWarpSpec());
}

TEST(ExecModeIdentity, FmadSharedUnderDivergence)
{
    // FMAD with a shared-memory operand inside a divergent IF: the
    // gathered operand, conflict passes and trace fields must match.
    KernelBuilder b("fmads-div");
    Reg tid = b.reg();
    Reg addr = b.reg();
    Reg v = b.reg();
    Reg acc = b.reg();
    Pred p = b.pred();
    b.s2r(tid, SpecialReg::kTid);
    b.shlImm(addr, tid, 2);
    b.i2f(v, tid);
    b.sts(addr, v);
    b.bar();
    b.movImmF(acc, 1.0f);
    b.setpIImm(p, CmpOp::kGe, tid, 8);
    b.beginIf(p);
    b.fmadShared(acc, v, addr, 0, acc);
    b.endIf();
    emitStoreOut(b, acc);
    isa::Kernel k = b.build(1024);
    expectBitIdentical(k, {2, 48}, hashedMemory(), spec());
    expectBitIdentical(k, {2, 48}, hashedMemory(), halfWarpSpec());
}

} // namespace
} // namespace funcsim
} // namespace gpuperf
