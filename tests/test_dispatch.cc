/**
 * @file
 * The fleet dispatcher: gpuperf-serve fans admitted cells out to
 * registered workers with responses bit-identical to in-process
 * execution, workers may join mid-request, a worker dying while
 * holding cells loses nothing (steal + re-dispatch, exactly-once
 * delivery), zero workers means graceful local execution, and a
 * malformed worker is killed without ever dropping a client.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <deque>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include "api/client.h"
#include "api/codecs.h"
#include "api/dispatch.h"
#include "api/endpoint.h"
#include "api/server.h"
#include "api/service.h"
#include "api/spool.h"
#include "api/transport.h"
#include "common/socket.h"
#include "store/serializer.h"

namespace gpuperf {
namespace api {
namespace {

std::string
freshSocketPath(const std::string &tag)
{
    static int counter = 0;
    // Keep it short: sun_path caps out around 100 bytes.
    return "/tmp/gpuperf-fleet-" + tag + "-" +
           std::to_string(::getpid()) + "-" +
           std::to_string(counter++) + ".sock";
}

model::CalibrationTables
fakeTables()
{
    model::CalibrationTables t;
    t.maxWarps = 32;
    t.bytesPerPass = 64;
    for (int type = 0; type < arch::kNumInstrTypes; ++type) {
        t.instrThroughput[type].assign(33, 0.0);
        for (int w = 1; w <= 32; ++w)
            t.instrThroughput[type][w] = 1e10 * std::min(1.0, w / 8.0);
    }
    t.sharedPassThroughput.assign(33, 0.0);
    for (int w = 1; w <= 32; ++w)
        t.sharedPassThroughput[w] = 2e10 * std::min(1.0, w / 8.0);
    return t;
}

std::shared_ptr<const model::CalibrationTables>
sharedFakeTables()
{
    static const auto tables =
        std::make_shared<const model::CalibrationTables>(fakeTables());
    return tables;
}

/** 3 kernels x 2 specs, no store — fake calibration keeps it fast. */
AnalysisRequest
testRequest()
{
    AnalysisRequest req;
    req.jobName = "dispatch-test";
    req.kernels.push_back(KernelJob::fromRef(
        "saxpy-small", CaseRef{"saxpy", {8, 128}, {2.0}}));
    req.kernels.push_back(KernelJob::fromRef(
        "conflicted", CaseRef{"shared-conflict", {8, 128, 8, 32}, {}}));
    req.kernels.push_back(KernelJob::fromRef(
        "hist", CaseRef{"histogram", {6, 128, 8, 4}, {}}));
    req.specs.push_back(arch::GpuSpec::gtx285());
    req.specs.push_back(arch::GpuSpec::gtx285MoreBlocks());
    req.sweep.noBankConflicts = true;
    req.sweep.warpsPerSm = {8.0, 32.0};
    req.sweep.coalescingFractions = {1.0};
    req.exec.numThreads = 2;
    return req;
}

/**
 * Adopt fake tables for BOTH request shapes a fleet touches: the
 * batch shape (zero-worker fallback runs the request as-is) and the
 * single-threaded cell shape the dispatcher derives via cellRequest
 * (executors are keyed per policy, numThreads included).
 */
void
adoptBothShapes(AnalysisService &service, const AnalysisRequest &req)
{
    AnalysisRequest cell_shaped = req;
    cell_shaped.exec.numThreads = 1;
    for (const arch::GpuSpec &spec : req.specs) {
        service.adoptCalibration(req, spec, sharedFakeTables());
        service.adoptCalibration(cell_shaped, spec,
                                 sharedFakeTables());
    }
}

void
expectEqual(const AnalysisResponse &got, const AnalysisResponse &want)
{
    std::string why;
    EXPECT_TRUE(responsesEqual(got, want, &why)) << why;
}

/**
 * A started fleet server (endpoint query options welcome), its
 * in-process reference, and in-thread registered workers.
 */
struct FleetRig
{
    std::string unixPath;
    std::unique_ptr<Server> server;
    AnalysisService reference;
    AnalysisRequest req = testRequest();

    std::vector<std::thread> worker_threads;
    std::vector<std::unique_ptr<AnalysisService>> worker_services;
    // Deque: addWorker hands each thread a reference into this —
    // growth must not invalidate it.
    std::deque<WorkerLoopStats> worker_stats;

    explicit FleetRig(const std::string &tag,
                      const std::string &query = "")
    {
        unixPath = freshSocketPath(tag);
        server = std::make_unique<Server>(Endpoint::parse(
            "unix:" + unixPath + query, Endpoint::Role::kServer));
        server->start();
        adoptBothShapes(server->service(), req);
        adoptBothShapes(reference, req);
    }

    ~FleetRig()
    {
        server->stop(); // hangs up on workers; their loops return
        for (std::thread &t : worker_threads)
            t.join();
    }

    /** Register one in-thread worker and wait until it is live. */
    void addWorker(const WorkerLoopOptions &opts = {})
    {
        worker_services.push_back(
            std::make_unique<AnalysisService>());
        adoptBothShapes(*worker_services.back(), req);
        AnalysisService &service = *worker_services.back();
        worker_stats.emplace_back();
        WorkerLoopStats &stats = worker_stats.back();
        const size_t live_target = server->dispatcher().liveWorkers() + 1;
        worker_threads.emplace_back([this, &service, &stats, opts] {
            const Endpoint ep = Endpoint::parse(
                "unix:" + unixPath, Endpoint::Role::kWorker);
            stats = workerServe(ep, service, nullptr, opts);
        });
        waitForLiveWorkers(live_target);
    }

    void waitForLiveWorkers(size_t n)
    {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(30);
        while (server->dispatcher().liveWorkers() < n &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ASSERT_GE(server->dispatcher().liveWorkers(), n);
    }

    AnalysisResponse expected() { return reference.run(req); }
};

/**
 * A hand-rolled worker speaking just enough of the registration
 * protocol to misbehave on purpose. Returns the registered fd (< 0 on
 * failure — assert in the test).
 */
int
registerRawWorker(const std::string &path, const std::string &name)
{
    std::string err;
    const int fd = connectUnix(path, &err);
    if (fd < 0)
        return -1;
    if (!writeFrame(fd, FrameType::kRegister, name)) {
        closeSocket(fd);
        return -1;
    }
    FrameType type;
    std::string body;
    if (readFrame(fd, &type, &body, kMaxFrameBytesDefault, nullptr,
                  &err, /*idle_timeout_seconds=*/10.0) != 1 ||
        type != FrameType::kRegister) {
        closeSocket(fd);
        return -1;
    }
    return fd;
}

/** Block until a kJob frame arrives on @p fd (payload discarded). */
bool
awaitJob(int fd)
{
    FrameType type;
    std::string body;
    std::string err;
    return readFrame(fd, &type, &body, kMaxFrameBytesDefault, nullptr,
                     &err, /*idle_timeout_seconds=*/30.0) == 1 &&
           type == FrameType::kJob;
}

// --- Zero workers: graceful local fallback ----------------------------

TEST(DispatchTest, ZeroWorkersFallsBackToLocalExecution)
{
    FleetRig rig("zero");
    const AnalysisResponse want = rig.expected();

    ServeClient client = ServeClient::overUnix(rig.unixPath);
    expectEqual(client.run(rig.req), want);

    const DispatchStats stats = rig.server->dispatcher().stats();
    EXPECT_EQ(stats.workersRegistered, 0u);
    EXPECT_EQ(stats.cellsDispatched, 0u);
    EXPECT_GE(stats.requestsLocalFallback, 1u);
}

// --- Remote execution is bit-identical --------------------------------

TEST(DispatchTest, WorkersServeBitIdenticalResponses)
{
    FleetRig rig("ident");
    rig.addWorker();
    rig.addWorker();
    const AnalysisResponse want = rig.expected();

    ServeClient client = ServeClient::overUnix(rig.unixPath);
    expectEqual(client.run(rig.req), want);
    // Streamed delivery dispatches identically.
    AnalysisRequest streaming = rig.req;
    streaming.exec.delivery = ExecutionPolicy::Delivery::kStream;
    std::atomic<size_t> streamed{0};
    expectEqual(client.run(streaming,
                           [&](size_t, const driver::BatchResult &) {
                               ++streamed;
                           }),
                want);
    EXPECT_EQ(streamed.load(), want.cells.size());

    const DispatchStats stats = rig.server->dispatcher().stats();
    EXPECT_EQ(stats.workersRegistered, 2u);
    EXPECT_EQ(stats.cellsCompletedRemote, 2u * want.cells.size());
    EXPECT_EQ(stats.requestsLocalFallback, 0u);
    EXPECT_EQ(stats.cellsLocal, 0u);
}

// --- A worker joining mid-request picks up cells ----------------------

TEST(DispatchTest, WorkerJoiningMidRequestPicksUpCells)
{
    // One deliberately slow worker holding one cell at a time keeps
    // the queue non-empty long enough for a second worker to join the
    // fleet mid-request and demonstrably take cells.
    FleetRig rig("join", "?worker-inflight=1");
    std::atomic<bool> first_job{false};
    WorkerLoopOptions slow;
    slow.name = "slow";
    slow.onJob = [&](const AnalysisRequest &) {
        first_job.store(true);
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
    };
    rig.addWorker(slow);
    const AnalysisResponse want = rig.expected();

    std::string failure;
    AnalysisResponse got;
    std::thread client_thread([&] {
        try {
            ServeClient client = ServeClient::overUnix(rig.unixPath);
            got = client.run(rig.req);
        } catch (const std::exception &e) {
            failure = e.what();
        }
    });

    // Join the fleet only once the request is demonstrably in flight.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(30);
    while (!first_job.load() &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_TRUE(first_job.load());
    WorkerLoopOptions fast;
    fast.name = "fast";
    rig.addWorker(fast);
    client_thread.join();

    ASSERT_TRUE(failure.empty()) << failure;
    expectEqual(got, want);

    const DispatchStats stats = rig.server->dispatcher().stats();
    EXPECT_EQ(stats.workersRegistered, 2u);
    EXPECT_EQ(stats.cellsCompletedRemote, want.cells.size());
    bool fast_worked = false;
    for (const WorkerStat &w : stats.workers)
        if (w.name == "fast" && w.cellsDone > 0)
            fast_worked = true;
    EXPECT_TRUE(fast_worked)
        << "the late-joining worker never received a cell";
}

// --- Worker death: steal + re-dispatch, exactly once ------------------

TEST(DispatchTest, WorkerDyingWithCellsInFlightLosesNothing)
{
    // worker-inflight=2 so the doomed raw worker demonstrably holds
    // cells while the honest worker also has some.
    FleetRig rig("death", "?worker-inflight=2");
    const int doomed = registerRawWorker(rig.unixPath, "doomed");
    ASSERT_GE(doomed, 0);
    rig.waitForLiveWorkers(1);
    rig.addWorker();
    const AnalysisResponse want = rig.expected();

    std::string failure;
    AnalysisResponse got;
    std::thread client_thread([&] {
        try {
            ServeClient client = ServeClient::overUnix(rig.unixPath);
            got = client.run(rig.req);
        } catch (const std::exception &e) {
            failure = e.what();
        }
    });

    // Take a cell hostage, then die holding it: the dispatcher must
    // steal the worker's in-flight jobs back and re-dispatch them.
    ASSERT_TRUE(awaitJob(doomed));
    closeSocket(doomed);
    client_thread.join();

    ASSERT_TRUE(failure.empty()) << failure;
    expectEqual(got, want); // every cell delivered exactly once

    const DispatchStats stats = rig.server->dispatcher().stats();
    EXPECT_GE(stats.workerDeaths, 1u);
    EXPECT_GE(stats.cellsRedispatched, 1u);
    EXPECT_EQ(stats.duplicateResults, 0u);
}

TEST(DispatchTest, LateResultAfterJobTimeoutIsDroppedNotDoubled)
{
    // A 1-cell request against one worker slower than the job
    // timeout: the job is re-dispatched (to the same worker — it is
    // the only one), both executions answer, and the dispatcher must
    // deliver the FIRST and drop the duplicate.
    FleetRig rig("dup", "?job-timeout=0.25");
    rig.req.kernels = {rig.req.kernels[0]};
    rig.req.specs = {rig.req.specs[0]};
    WorkerLoopOptions slow;
    slow.onJob = [](const AnalysisRequest &) {
        std::this_thread::sleep_for(std::chrono::milliseconds(500));
    };
    rig.addWorker(slow);
    const AnalysisResponse want = rig.expected();
    ASSERT_EQ(want.cells.size(), 1u);

    ServeClient client = ServeClient::overUnix(rig.unixPath);
    expectEqual(client.run(rig.req), want);

    // The duplicate lands on its own schedule; poll for it.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(30);
    DispatchStats stats = rig.server->dispatcher().stats();
    while (stats.duplicateResults < 1u &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        stats = rig.server->dispatcher().stats();
    }
    EXPECT_GE(stats.cellsRedispatched, 1u);
    EXPECT_GE(stats.duplicateResults, 1u);
}

// --- Malformed workers die alone --------------------------------------

TEST(DispatchTest, MalformedWorkerResultKillsTheWorkerNotTheClient)
{
    FleetRig rig("malformed");
    const int liar = registerRawWorker(rig.unixPath, "liar");
    ASSERT_GE(liar, 0);
    rig.waitForLiveWorkers(1);
    const AnalysisResponse want = rig.expected();

    std::string failure;
    AnalysisResponse got;
    std::thread client_thread([&] {
        try {
            ServeClient client = ServeClient::overUnix(rig.unixPath);
            got = client.run(rig.req);
        } catch (const std::exception &e) {
            failure = e.what();
        }
    });

    // Answer the first job with garbage: the dispatcher must kill
    // THIS connection, steal the jobs back, and (with no fleet left)
    // finish the request locally — the client never notices.
    ASSERT_TRUE(awaitJob(liar));
    ASSERT_TRUE(writeFrame(liar, FrameType::kCell,
                           "this is not a cell result"));
    client_thread.join();
    closeSocket(liar);

    ASSERT_TRUE(failure.empty()) << failure;
    expectEqual(got, want);

    const DispatchStats stats = rig.server->dispatcher().stats();
    EXPECT_GE(stats.malformedResults, 1u);
    EXPECT_GE(stats.workerDeaths, 1u);
    EXPECT_EQ(rig.server->dispatcher().liveWorkers(), 0u);
    EXPECT_EQ(rig.server->stats().disconnects, 0u);
}

// --- Registration handshake hygiene -----------------------------------

TEST(DispatchTest, WorkerServeRefusesNonSocketEndpoints)
{
    AnalysisService service;
    EXPECT_THROW(workerServe(Endpoint::parse("spool:/tmp/nope"),
                             service),
                 std::runtime_error);
    EXPECT_THROW(workerServe(Endpoint::parse("inproc:"), service),
                 std::runtime_error);
}

} // namespace
} // namespace api
} // namespace gpuperf
