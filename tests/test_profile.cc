/**
 * @file
 * KernelProfile tests: the funcsim fingerprint is the right sub-key of
 * the spec fingerprint, kernel hashing keys on content (not name),
 * profile reuse across spec variants is bit-identical to per-cell
 * re-simulation (serially and through BatchRunner), and invalid
 * homogeneous sampling is caught in debug builds instead of silently
 * fabricating statistics.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "driver/batch_runner.h"
#include "driver/demo_cases.h"
#include "isa/builder.h"
#include "model/session.h"

namespace gpuperf {
namespace {

model::CalibrationTables
fakeTables()
{
    model::CalibrationTables t;
    t.maxWarps = 32;
    t.bytesPerPass = 64;
    for (int type = 0; type < arch::kNumInstrTypes; ++type) {
        t.instrThroughput[type].assign(33, 0.0);
        for (int w = 1; w <= 32; ++w)
            t.instrThroughput[type][w] = 1e10 * std::min(1.0, w / 8.0);
    }
    t.sharedPassThroughput.assign(33, 0.0);
    for (int w = 1; w <= 32; ++w)
        t.sharedPassThroughput[w] = 2e10 * std::min(1.0, w / 8.0);
    return t;
}

std::shared_ptr<const model::CalibrationTables>
sharedFakeTables()
{
    return std::make_shared<const model::CalibrationTables>(fakeTables());
}

/** Every double the workflow produces, compared bit for bit. */
void
expectSameAnalysis(const model::Analysis &got, const model::Analysis &want)
{
    EXPECT_EQ(got.measurement.timing.cycles, want.measurement.timing.cycles);
    EXPECT_EQ(got.measurement.timing.seconds,
              want.measurement.timing.seconds);
    EXPECT_EQ(got.measurement.timing.totalOps,
              want.measurement.timing.totalOps);
    EXPECT_EQ(got.measurement.stats.totalWarpInstrs(),
              want.measurement.stats.totalWarpInstrs());
    EXPECT_EQ(got.measurement.stats.totalGlobalBytes(),
              want.measurement.stats.totalGlobalBytes());
    ASSERT_EQ(got.input.stages.size(), want.input.stages.size());
    for (size_t i = 0; i < got.input.stages.size(); ++i) {
        EXPECT_EQ(got.input.stages[i].effective64Xacts,
                  want.input.stages[i].effective64Xacts);
        EXPECT_EQ(got.input.stages[i].activeWarpsPerSm,
                  want.input.stages[i].activeWarpsPerSm);
    }
    EXPECT_EQ(got.input.occupancy.residentBlocks,
              want.input.occupancy.residentBlocks);
    EXPECT_EQ(got.prediction.totalSeconds, want.prediction.totalSeconds);
    EXPECT_EQ(got.prediction.tInstrTotal, want.prediction.tInstrTotal);
    EXPECT_EQ(got.prediction.tSharedTotal, want.prediction.tSharedTotal);
    EXPECT_EQ(got.prediction.tGlobalTotal, want.prediction.tGlobalTotal);
    EXPECT_EQ(got.metrics.computationalDensity,
              want.metrics.computationalDensity);
    EXPECT_EQ(got.metrics.bankConflictFactor,
              want.metrics.bankConflictFactor);
    EXPECT_EQ(got.metrics.coalescingEfficiency,
              want.metrics.coalescingEfficiency);
}

TEST(FuncsimFingerprint, IsASubkeyOfTheSpecFingerprint)
{
    const auto base = arch::FuncsimFingerprint::of(arch::GpuSpec::gtx285());

    // Timing/occupancy-only variants share the funcsim fingerprint —
    // that is what lets one profile serve the paper's Section 5
    // what-if spec grid.
    EXPECT_EQ(base,
              arch::FuncsimFingerprint::of(arch::GpuSpec::gtx285MoreBlocks()));
    EXPECT_EQ(base, arch::FuncsimFingerprint::of(
                        arch::GpuSpec::gtx285BigResources()));
    arch::GpuSpec overclocked = arch::GpuSpec::gtx285();
    overclocked.coreClockHz *= 1.25;
    overclocked.globalLatencyCycles += 100;
    EXPECT_EQ(base, arch::FuncsimFingerprint::of(overclocked));

    // Variants that change functional behaviour must not share.
    EXPECT_NE(base, arch::FuncsimFingerprint::of(
                        arch::GpuSpec::gtx285PrimeBanks()));
    EXPECT_NE(base, arch::FuncsimFingerprint::of(
                        arch::GpuSpec::gtx285SmallSegments(16)));

    EXPECT_EQ(base.key(),
              arch::FuncsimFingerprint::of(arch::GpuSpec::gtx285()).key());
    EXPECT_NE(base.key(), arch::FuncsimFingerprint::of(
                              arch::GpuSpec::gtx285PrimeBanks()).key());
}

TEST(KernelHash, KeysOnContentNotName)
{
    auto build = [](const std::string &name, int32_t imm) {
        isa::KernelBuilder b(name);
        isa::Reg r0 = b.reg();
        isa::Reg r1 = b.reg();
        b.movImm(r0, imm);
        b.iaddImm(r1, r0, 7);
        return b.build();
    };
    const uint64_t a = build("a", 1).hash();
    EXPECT_EQ(a, build("a", 1).hash()) << "hash must be deterministic";
    EXPECT_EQ(a, build("renamed", 1).hash())
        << "the display name is not part of the program";
    EXPECT_NE(a, build("a", 2).hash()) << "immediates are";
}

TEST(KernelProfile, KeyCoversLaunchOptionsAndInputData)
{
    auto kc = driver::makeSaxpyCase("saxpy", 4, 128, 2.0f);
    auto launch = kc.make();
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    funcsim::RunOptions opts;
    const auto key = funcsim::makeProfileKey(launch.kernel, launch.cfg,
                                             opts, spec, *launch.gmem);

    funcsim::LaunchConfig other_cfg = launch.cfg;
    other_cfg.gridDim *= 2;
    EXPECT_NE(key, funcsim::makeProfileKey(launch.kernel, other_cfg,
                                           opts, spec, *launch.gmem));
    funcsim::RunOptions homog = opts;
    homog.homogeneous = true;
    EXPECT_NE(key, funcsim::makeProfileKey(launch.kernel, launch.cfg,
                                           homog, spec, *launch.gmem));
    EXPECT_NE(key.str(),
              funcsim::makeProfileKey(launch.kernel, other_cfg, opts,
                                      spec, *launch.gmem).str());
    EXPECT_EQ(key, funcsim::makeProfileKey(
                       launch.kernel, launch.cfg, opts,
                       arch::GpuSpec::gtx285MoreBlocks(), *launch.gmem))
        << "funcsim-equivalent specs produce the same profile key";

    // Same program + launch, different memory contents: the input
    // hash keys them apart (data-dependent kernels like SpMV would
    // otherwise be served another input's statistics).
    auto other_launch = kc.make();
    EXPECT_EQ(key, funcsim::makeProfileKey(launch.kernel, launch.cfg,
                                           opts, spec,
                                           *other_launch.gmem))
        << "deterministic factories produce the same input image";
    other_launch.gmem->f32(other_launch.gmem->alloc(4))[0] = 42.0f;
    EXPECT_NE(key, funcsim::makeProfileKey(launch.kernel, launch.cfg,
                                           opts, spec,
                                           *other_launch.gmem));
}

TEST(KernelProfile, ReuseAcrossSpecVariantsIsBitIdentical)
{
    auto kc = driver::makeStencil1dCase("stencil", 8, 128);

    // One functional simulation under the base spec...
    model::AnalysisSession base(arch::GpuSpec::gtx285());
    base.adoptCalibration(sharedFakeTables());
    auto launch = kc.make();
    auto profile =
        base.profile(launch.kernel, launch.cfg, *launch.gmem);

    // ...consumed by sessions for funcsim-equivalent variants must
    // match those variants' own full per-cell pipeline bit for bit.
    for (const arch::GpuSpec &spec :
         {arch::GpuSpec::gtx285(), arch::GpuSpec::gtx285MoreBlocks(),
          arch::GpuSpec::gtx285BigResources()}) {
        SCOPED_TRACE(spec.name);
        model::AnalysisSession shared_session(spec);
        shared_session.adoptCalibration(sharedFakeTables());
        const model::Analysis got = shared_session.analyze(profile);

        model::AnalysisSession percell_session(spec);
        percell_session.adoptCalibration(sharedFakeTables());
        auto fresh = kc.make();
        const model::Analysis want = percell_session.analyze(
            fresh.kernel, fresh.cfg, *fresh.gmem, fresh.options);
        expectSameAnalysis(got, want);
    }
}

TEST(KernelProfile, BatchSharingMatchesPerCellPipelineExactly)
{
    std::vector<driver::KernelCase> kernels;
    kernels.push_back(driver::makeSaxpyCase("saxpy", 8, 128, 2.0f));
    kernels.push_back(driver::makeStridedSaxpyCase("strided", 8, 128, 4));
    kernels.push_back(driver::makeStencil1dCase("stencil", 8, 128));
    std::vector<arch::GpuSpec> specs = {
        arch::GpuSpec::gtx285(), arch::GpuSpec::gtx285MoreBlocks(),
        arch::GpuSpec::gtx285BigResources(),
        arch::GpuSpec::gtx285PrimeBanks()};
    driver::SweepSpec sweep;
    sweep.noBankConflicts = true;
    sweep.warpsPerSm = {8.0, 32.0};

    auto run = [&](bool share) {
        driver::BatchRunner::Options opts;
        opts.numThreads = 4;
        opts.shareProfiles = share;
        driver::BatchRunner runner(opts);
        for (const auto &spec : specs)
            runner.adoptCalibration(spec, sharedFakeTables());
        return runner.run(kernels, specs, sweep);
    };
    const auto shared_results = run(true);
    const auto percell_results = run(false);

    ASSERT_EQ(shared_results.size(), percell_results.size());
    for (size_t i = 0; i < shared_results.size(); ++i) {
        SCOPED_TRACE("cell " + std::to_string(i));
        ASSERT_TRUE(shared_results[i].ok) << shared_results[i].error;
        ASSERT_TRUE(percell_results[i].ok) << percell_results[i].error;
        EXPECT_EQ(shared_results[i].kernelName,
                  percell_results[i].kernelName);
        EXPECT_EQ(shared_results[i].specName,
                  percell_results[i].specName);
        expectSameAnalysis(shared_results[i].analysis,
                           percell_results[i].analysis);
        ASSERT_EQ(shared_results[i].whatifs.size(),
                  percell_results[i].whatifs.size());
        for (size_t j = 0; j < shared_results[i].whatifs.size(); ++j) {
            EXPECT_EQ(shared_results[i].whatifs[j].speedup(),
                      percell_results[i].whatifs[j].speedup());
        }
    }
}

TEST(KernelProfile, FactoryErrorsSurfacePerCellWithSharing)
{
    driver::KernelCase broken;
    broken.name = "broken";
    broken.make = []() -> driver::PreparedLaunch {
        throw std::runtime_error("factory exploded");
    };
    driver::BatchRunner runner;
    std::vector<arch::GpuSpec> specs = {
        arch::GpuSpec::gtx285(), arch::GpuSpec::gtx285MoreBlocks()};
    for (const auto &spec : specs)
        runner.adoptCalibration(spec, sharedFakeTables());
    const auto results = runner.run({broken}, specs, driver::SweepSpec{});
    ASSERT_EQ(results.size(), 2u);
    for (const auto &r : results) {
        EXPECT_FALSE(r.ok);
        EXPECT_NE(r.error.find("factory exploded"), std::string::npos);
    }
}

TEST(KernelProfile, MismatchedFingerprintIsFatal)
{
    auto kc = driver::makeSaxpyCase("saxpy", 4, 128, 2.0f);
    auto launch = kc.make();
    model::SimulatedDevice base(arch::GpuSpec::gtx285());
    auto profile = base.profile(launch.kernel, launch.cfg, *launch.gmem);
    model::SimulatedDevice prime(arch::GpuSpec::gtx285PrimeBanks());
    EXPECT_EXIT(prime.measure(*profile),
                ::testing::ExitedWithCode(1), "incompatible");
}

TEST(KernelProfile, SharedProfileStillHitsPerSpecLaunchCeilings)
{
    // A spec variant with a lower block ceiling must reject a shared
    // profile exactly where its own functional run would have.
    auto kc = driver::makeSaxpyCase("saxpy", 4, 512, 2.0f);
    auto launch = kc.make();
    model::SimulatedDevice base(arch::GpuSpec::gtx285());
    auto profile = base.profile(launch.kernel, launch.cfg, *launch.gmem);
    arch::GpuSpec small = arch::GpuSpec::gtx285();
    small.maxThreadsPerBlock = 256;
    model::SimulatedDevice dev(small);
    EXPECT_EXIT(dev.measure(*profile), ::testing::ExitedWithCode(1),
                "exceeds the 256-thread block ceiling");
}

TEST(HomogeneousSampling, ValidKernelPassesValidation)
{
    // saxpy's per-block traces are identical (addresses differ, but
    // coalescing patterns do not), so the debug-build validation must
    // accept it.
    auto kc = driver::makeSaxpyCase("saxpy", 8, 128, 2.0f);
    auto launch = kc.make();
    funcsim::FunctionalSimulator sim(arch::GpuSpec::gtx285());
    funcsim::RunOptions opts;
    opts.homogeneous = true;
    opts.sampleBlocks = 2;
    opts.collectTrace = true;
    auto res = sim.run(launch.kernel, launch.cfg, *launch.gmem, opts);
    EXPECT_EQ(res.stats.sampledBlocks, 2);
    EXPECT_GT(res.stats.totalWarpInstrs(), 0u);
}

TEST(HomogeneousSampling, HeterogeneousKernelIsCaughtInDebugBuilds)
{
#ifdef NDEBUG
    GTEST_SKIP() << "homogeneity validation is debug-only";
#else
    // Block 0 takes an IF the probe block does not: replicating the
    // sampled statistics would fabricate work for every other block.
    driver::KernelCase kc;
    kc.name = "hetero";
    kc.make = []() {
        auto gmem = std::make_unique<funcsim::GlobalMemory>(1u << 20);
        const uint64_t out = gmem->alloc(4096);
        isa::KernelBuilder b("hetero");
        isa::Reg cta = b.reg();
        isa::Reg v = b.reg();
        isa::Reg addr = b.reg();
        isa::Pred p = b.pred();
        b.s2r(cta, isa::SpecialReg::kCtaid);
        b.movImm(v, 1);
        b.setpIImm(p, isa::CmpOp::kEq, cta, 0);
        b.beginIf(p);
        for (int i = 0; i < 8; ++i)
            b.iaddImm(v, v, 1);
        b.endIf();
        b.movImm(addr, static_cast<int32_t>(out));
        b.stg(addr, v);
        driver::PreparedLaunch launch(b.build());
        launch.gmem = std::move(gmem);
        launch.cfg.gridDim = 4;
        launch.cfg.blockDim = 32;
        return launch;
    };
    auto launch = kc.make();
    funcsim::FunctionalSimulator sim(arch::GpuSpec::gtx285());
    funcsim::RunOptions opts;
    opts.homogeneous = true;
    opts.sampleBlocks = 1;
    EXPECT_EXIT(sim.run(launch.kernel, launch.cfg, *launch.gmem, opts),
                ::testing::ExitedWithCode(1),
                "homogeneous sampling is invalid");
#endif
}

TEST(StencilCase, ExercisesCoalescedAndHaloTraffic)
{
    auto kc = driver::makeStencil1dCase("stencil", 8, 128);
    auto launch = kc.make();
    funcsim::FunctionalSimulator sim(arch::GpuSpec::gtx285());
    funcsim::RunOptions opts;
    opts.collectTrace = true;
    auto res = sim.run(launch.kernel, launch.cfg, *launch.gmem, opts);

    // Two barrier-delimited stages: tile fill + halo, then compute.
    ASSERT_EQ(res.stats.stages.size(), 2u);
    EXPECT_EQ(res.stats.barriersPerBlock, 1);

    uint64_t global_bytes = 0;
    uint64_t request_bytes = 0;
    uint64_t shared_tx = 0;
    uint64_t ideal_tx = 0;
    for (const auto &s : res.stats.stages) {
        global_bytes += s.globalBytes;
        request_bytes += s.globalRequestBytes;
        shared_tx += s.sharedTransactions;
        ideal_tx += s.sharedTransactionsIdeal;
    }
    // Halo loads are single-element: transferred bytes exceed the
    // requested bytes (overfetch), but the bulk stream stays
    // coalesced so the waste is bounded.
    EXPECT_GT(global_bytes, request_bytes);
    EXPECT_LT(global_bytes, 2 * request_bytes);
    // Stride-1 tile accesses are conflict-free.
    EXPECT_EQ(shared_tx, ideal_tx);
}

// --------------------------------------------------------------------
// Execution-core bit-identity at the KernelProfile level: for every
// demo case, the vectorized interpreter must produce byte-identical
// profiles (key, per-stage stats, trace hashes) and the same final
// memory image as the retained scalar-reference core — on the stock
// 32-lane spec and on a 16-lane variant. The ExecMode is deliberately
// NOT part of ProfileKey; this test is what makes that sharing safe.
// --------------------------------------------------------------------

arch::GpuSpec
profileHalfWarpSpec()
{
    arch::GpuSpec gs = arch::GpuSpec::gtx285();
    gs.name = "GTX 285 (16-lane warps)";
    gs.warpSize = 16;
    gs.maxWarpsPerSm = 64;
    return gs;
}

void
expectProfilesBitIdentical(const driver::KernelCase &kc,
                           const arch::GpuSpec &gs)
{
    SCOPED_TRACE(kc.name + " on " + gs.name);
    auto la = kc.make();
    auto lb = kc.make();
    funcsim::FunctionalSimulator ref(gs,
                                     funcsim::ExecMode::kScalarReference);
    funcsim::FunctionalSimulator vec(gs, funcsim::ExecMode::kVectorized);
    auto pa = funcsim::profileKernel(ref, la.kernel, la.cfg, *la.gmem,
                                     la.options);
    auto pb = funcsim::profileKernel(vec, lb.kernel, lb.cfg, *lb.gmem,
                                     lb.options);

    EXPECT_TRUE(pa.key == pb.key);
    EXPECT_EQ(pa.key.str(), pb.key.str());

    ASSERT_EQ(pa.stats.stages.size(), pb.stats.stages.size());
    for (size_t i = 0; i < pa.stats.stages.size(); ++i)
        EXPECT_TRUE(pa.stats.stages[i] == pb.stats.stages[i])
            << "stage " << i << " diverged";
    EXPECT_EQ(pa.stats.barriersPerBlock, pb.stats.barriersPerBlock);
    EXPECT_EQ(pa.stats.sampledBlocks, pb.stats.sampledBlocks);

    ASSERT_EQ(pa.trace.pool.size(), pb.trace.pool.size());
    for (size_t i = 0; i < pa.trace.pool.size(); ++i) {
        EXPECT_TRUE(pa.trace.pool[i] == pb.trace.pool[i])
            << "warp trace " << i << " diverged";
        EXPECT_EQ(pa.trace.pool[i].hash(), pb.trace.pool[i].hash());
    }
    ASSERT_EQ(pa.trace.blocks.size(), pb.trace.blocks.size());
    for (size_t i = 0; i < pa.trace.blocks.size(); ++i)
        EXPECT_EQ(pa.trace.blocks[i].warpTraceIdx,
                  pb.trace.blocks[i].warpTraceIdx);

    // Stores mutated both images identically.
    EXPECT_EQ(la.gmem->contentHash(), lb.gmem->contentHash());
}

TEST(ExecModeProfileIdentity, AllDemoCasesOnBothSpecs)
{
    const std::vector<driver::KernelCase> cases = {
        driver::makeSaxpyCase("saxpy", 4, 128, 2.5f),
        driver::makeStridedSaxpyCase("strided-saxpy", 2, 64, 4),
        driver::makeSharedConflictCase("shared-conflict", 2, 64, 2, 8),
        driver::makeStencil1dCase("stencil1d", 4, 64),
        driver::makeSpmvEllCase("spmv-ell", 8, 4),
        driver::makeReductionCase("reduction", 4, 64),
        driver::makeHistogramCase("histogram", 2, 64, 16, 2),
    };
    const arch::GpuSpec specs[] = {arch::GpuSpec::gtx285(),
                                   profileHalfWarpSpec()};
    for (const auto &kc : cases)
        for (const auto &gs : specs)
            expectProfilesBitIdentical(kc, gs);
}

} // namespace
} // namespace gpuperf
