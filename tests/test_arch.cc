/**
 * @file
 * Machine-description tests: the GTX 285 numbers of paper Section 4,
 * the what-if presets, and the Table 1 classification.
 */

#include <gtest/gtest.h>

#include "arch/gpu_spec.h"
#include "arch/instr_class.h"

namespace gpuperf {
namespace arch {
namespace {

TEST(GpuSpec, Gtx285PeaksMatchPaperSection4)
{
    const GpuSpec s = GpuSpec::gtx285();
    s.validate();
    // Peak MAD throughput: 8 * 1.476 GHz * 30 / 32 ~ 11.1 Ginstr/s.
    EXPECT_NEAR(peakThroughput(s, InstrType::TypeII) / 1e9, 11.1, 0.2);
    // Single precision peak ~ 710 GFLOPS.
    EXPECT_NEAR(peakFlops(s) / 1e9, 710.0, 5.0);
    // Shared memory peak ~ 1420 GB/s.
    EXPECT_NEAR(s.peakSharedBandwidth() / 1e9, 1420.0, 10.0);
    // Global memory peak ~ 160 GB/s (2.484 GHz x 512 bits).
    EXPECT_NEAR(s.peakGlobalBandwidth() / 1e9, 159.0, 1.0);
    EXPECT_EQ(s.numClusters(), 10);
}

TEST(GpuSpec, ClusterBytesPerCycle)
{
    const GpuSpec s = GpuSpec::gtx285();
    EXPECT_NEAR(s.clusterBytesPerCycle(),
                s.peakGlobalBandwidth() / 10 / s.coreClockHz, 1e-9);
}

TEST(GpuSpec, WhatIfPresets)
{
    EXPECT_EQ(GpuSpec::gtx285MoreBlocks().maxBlocksPerSm, 16);
    EXPECT_EQ(GpuSpec::gtx285BigResources().registersPerSm, 32768);
    EXPECT_EQ(GpuSpec::gtx285BigResources().sharedMemPerSm, 32768);
    EXPECT_EQ(GpuSpec::gtx285PrimeBanks().numSharedBanks, 17);
    EXPECT_EQ(GpuSpec::gtx285SmallSegments(16).minSegmentBytes, 16);
    EXPECT_EQ(GpuSpec::gtx285SmallSegments(4).minSegmentBytes, 4);
    for (const GpuSpec &s :
         {GpuSpec::gtx285MoreBlocks(), GpuSpec::gtx285BigResources(),
          GpuSpec::gtx285PrimeBanks(), GpuSpec::gtx285SmallSegments(16)})
        s.validate();
}

TEST(GpuSpecDeath, ValidationCatchesBadConfigs)
{
    GpuSpec s = GpuSpec::gtx285();
    s.numSms = 31;  // not divisible into clusters of 3
    EXPECT_EXIT(s.validate(), ::testing::ExitedWithCode(1),
                "not divisible");

    GpuSpec s2 = GpuSpec::gtx285();
    s2.minSegmentBytes = 48;  // not a power of two
    EXPECT_EXIT(s2.validate(), ::testing::ExitedWithCode(1),
                "power of two");

    GpuSpec s3 = GpuSpec::gtx285();
    s3.maxSegmentBytes = 16;  // below min
    EXPECT_EXIT(s3.validate(), ::testing::ExitedWithCode(1),
                "segment sizes");
}

TEST(InstrClass, Table1UnitCounts)
{
    const GpuSpec s = GpuSpec::gtx285();
    EXPECT_EQ(functionalUnits(s, InstrType::TypeI), 10);
    EXPECT_EQ(functionalUnits(s, InstrType::TypeII), 8);
    EXPECT_EQ(functionalUnits(s, InstrType::TypeIII), 4);
    EXPECT_EQ(functionalUnits(s, InstrType::TypeIV), 1);
}

TEST(InstrClass, IssueIntervals)
{
    const GpuSpec s = GpuSpec::gtx285();
    EXPECT_DOUBLE_EQ(issueIntervalCycles(s, InstrType::TypeI), 3.2);
    EXPECT_DOUBLE_EQ(issueIntervalCycles(s, InstrType::TypeII), 4.0);
    EXPECT_DOUBLE_EQ(issueIntervalCycles(s, InstrType::TypeIII), 8.0);
    EXPECT_DOUBLE_EQ(issueIntervalCycles(s, InstrType::TypeIV), 32.0);
}

TEST(InstrClass, NamesAndExamples)
{
    EXPECT_STREQ(instrTypeName(InstrType::TypeI), "Type I");
    EXPECT_STREQ(instrTypeName(InstrType::TypeIV), "Type IV");
    EXPECT_STREQ(instrTypeExamples(InstrType::TypeI), "mul");
    EXPECT_NE(std::string(instrTypeExamples(InstrType::TypeIII))
                  .find("rcp"),
              std::string::npos);
}

TEST(InstrClass, ThroughputOrdering)
{
    const GpuSpec s = GpuSpec::gtx285();
    EXPECT_GT(peakThroughput(s, InstrType::TypeI),
              peakThroughput(s, InstrType::TypeII));
    EXPECT_GT(peakThroughput(s, InstrType::TypeII),
              peakThroughput(s, InstrType::TypeIII));
    EXPECT_GT(peakThroughput(s, InstrType::TypeIII),
              peakThroughput(s, InstrType::TypeIV));
}

} // namespace
} // namespace arch
} // namespace gpuperf
