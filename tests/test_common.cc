/**
 * @file
 * Common-utility tests: deterministic RNG, table rendering, logging
 * helpers, and unit conversions.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/rng.h"
#include "common/table.h"
#include "common/units.h"

namespace gpuperf {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42);
    Rng b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowStaysInBounds)
{
    Rng rng(7);
    for (uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.nextBelow(bound), bound);
    }
}

TEST(Rng, NextRangeIsInclusive)
{
    Rng rng(9);
    bool saw_lo = false;
    bool saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo = saw_lo || v == -3;
        saw_hi = saw_hi || v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, FloatsAreInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 5000; ++i) {
        const float f = rng.nextFloat();
        EXPECT_GE(f, 0.0f);
        EXPECT_LT(f, 1.0f);
        sum += f;
    }
    EXPECT_NEAR(sum / 5000.0, 0.5, 0.03);
}

TEST(Rng, GaussianHasUnitStddev)
{
    Rng rng(13);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.nextGaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.08);
}

TEST(Table, AlignsColumns)
{
    Table t({"a", "long_header"});
    t.addRow({"1", "2"});
    t.addRow({"333", "4"});
    std::ostringstream os;
    t.print(os);
    const std::string out = os.str();
    EXPECT_NE(out.find("long_header"), std::string::npos);
    EXPECT_NE(out.find("333"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
    EXPECT_EQ(t.cols(), 2u);
    EXPECT_EQ(t.cell(1, 0), "333");
}

TEST(Table, CsvOutput)
{
    Table t({"x", "y"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
    EXPECT_EQ(Table::big(1234567), "1,234,567");
    EXPECT_EQ(Table::big(12), "12");
    EXPECT_EQ(Table::big(-1234), "-1,234");
}

TEST(TableDeath, WrongArityPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only one"}), "table row");
}

TEST(Logging, FormatHelper)
{
    setLogLevel(LogLevel::Warn);
    // Exercise warn/inform paths (no crash, output suppressed/enabled).
    inform("should be suppressed %d", 1);
    warn("warning %s", "visible");
}

TEST(LoggingDeath, PanicAborts)
{
    EXPECT_DEATH(panic("boom %d", 7), "panic: boom 7");
}

TEST(LoggingDeath, FatalExits)
{
    EXPECT_EXIT(fatal("bad config %s", "x"),
                ::testing::ExitedWithCode(1), "fatal: bad config x");
}

TEST(LoggingDeath, AssertMacro)
{
    EXPECT_DEATH(GPUPERF_ASSERT(1 == 2, "math broke"), "math broke");
}

TEST(Units, Conversions)
{
    EXPECT_DOUBLE_EQ(cyclesToSeconds(1476000000ull, 1.476e9), 1.0);
    EXPECT_DOUBLE_EQ(toMilliseconds(0.5), 500.0);
    EXPECT_DOUBLE_EQ(toGBps(2e9), 2.0);
    EXPECT_DOUBLE_EQ(toGigaRate(3e9), 3.0);
}

} // namespace
} // namespace gpuperf
