/**
 * @file
 * Timing-simulator tests: peak throughput bounds, warp-count scaling,
 * bank-conflict slowdown, barrier behavior, block scheduling waves,
 * memory-system behavior, and the texture cache.
 */

#include <gtest/gtest.h>

#include "funcsim/interpreter.h"
#include "isa/builder.h"
#include "model/microbench.h"
#include "timing/simulator.h"
#include "timing/texture_cache.h"

namespace gpuperf {
namespace timing {
namespace {

using funcsim::FunctionalSimulator;
using funcsim::GlobalMemory;
using funcsim::LaunchConfig;
using funcsim::RunOptions;
using isa::KernelBuilder;
using isa::Reg;

arch::GpuSpec
spec()
{
    return arch::GpuSpec::gtx285();
}

/** Run functionally with traces and then time the replay. */
TimingResult
timeKernel(const arch::GpuSpec &s, const isa::Kernel &k,
           const LaunchConfig &cfg, GlobalMemory &gmem,
           bool homogeneous = true)
{
    FunctionalSimulator fsim(s);
    RunOptions opts;
    opts.collectTrace = true;
    opts.homogeneous = homogeneous;
    auto res = fsim.run(k, cfg, gmem, opts);
    TimingSimulator tsim(s);
    return tsim.run(res.trace);
}

TEST(Timing, MicrobenchThroughputApproachesTypeIIPeakAtHighWarps)
{
    const arch::GpuSpec s = spec();
    isa::Kernel k = model::makeInstructionBench(arch::InstrType::TypeII,
                                                25, 24, 4096);
    GlobalMemory gmem(8 << 20);
    gmem.alloc(1 << 20);
    // 16 warps per SM: one 512-thread block on each of the 30 SMs.
    LaunchConfig cfg{s.numSms, 512};
    FunctionalSimulator fsim(s);
    RunOptions opts;
    opts.collectTrace = true;
    opts.homogeneous = true;
    auto res = fsim.run(k, cfg, gmem, opts);
    TimingSimulator tsim(s);
    TimingResult tr = tsim.run(res.trace);

    const double peak =
        arch::peakThroughput(s, arch::InstrType::TypeII);
    const double measured =
        res.stats.totalType(arch::InstrType::TypeII) / tr.seconds;
    EXPECT_LT(measured, peak);
    EXPECT_GT(measured, 0.75 * peak);
}

TEST(Timing, ThroughputScalesWithWarpsThenSaturates)
{
    const arch::GpuSpec s = spec();
    double prev = 0.0;
    std::vector<double> rate(9, 0.0);
    for (int w : {1, 2, 4, 8}) {
        isa::Kernel k = model::makeInstructionBench(
            arch::InstrType::TypeII, 25, 24, 4096);
        GlobalMemory gmem(8 << 20);
        gmem.alloc(1 << 20);
        LaunchConfig cfg{s.numSms, 32 * w};
        FunctionalSimulator fsim(s);
        RunOptions opts;
        opts.collectTrace = true;
        opts.homogeneous = true;
        auto res = fsim.run(k, cfg, gmem, opts);
        TimingSimulator tsim(s);
        TimingResult tr = tsim.run(res.trace);
        rate[w] = res.stats.totalType(arch::InstrType::TypeII) /
                  tr.seconds;
        EXPECT_GT(rate[w], prev * 0.99) << w << " warps";
        prev = rate[w];
    }
    // 1 -> 2 warps should be near-linear (far from saturation).
    EXPECT_GT(rate[2], 1.7 * rate[1]);
    // 4 -> 8 warps should show saturation (6-warp knee).
    EXPECT_LT(rate[8], 1.6 * rate[4]);
}

TEST(Timing, FewerFunctionalUnitsMeanLowerThroughput)
{
    const arch::GpuSpec s = spec();
    double rates[4] = {};
    for (arch::InstrType type : arch::kAllInstrTypes) {
        isa::Kernel k = model::makeInstructionBench(type, 25, 24, 4096);
        GlobalMemory gmem(8 << 20);
        gmem.alloc(1 << 20);
        LaunchConfig cfg{s.numSms, 512};
        FunctionalSimulator fsim(s);
        RunOptions opts;
        opts.collectTrace = true;
        opts.homogeneous = true;
        auto res = fsim.run(k, cfg, gmem, opts);
        TimingSimulator tsim(s);
        rates[static_cast<int>(type)] =
            res.stats.totalType(type) / tsim.run(res.trace).seconds;
    }
    // Table 1 ordering: I > II > III > IV.
    EXPECT_GT(rates[0], rates[1]);
    EXPECT_GT(rates[1], rates[2]);
    EXPECT_GT(rates[2], rates[3]);
    // Type IV is roughly an eighth of type II (1 vs 8 units).
    EXPECT_NEAR(rates[1] / rates[3], 8.0, 2.0);
}

TEST(Timing, BankConflictsSlowSharedAccesses)
{
    const arch::GpuSpec s = spec();
    auto build = [&](int stride_shift) {
        KernelBuilder b("smem");
        Reg tid = b.reg();
        Reg sa = b.reg();
        Reg v = b.reg();
        Reg i = b.reg();
        isa::Pred p = b.pred();
        b.s2r(tid, isa::SpecialReg::kTid);
        b.shlImm(sa, tid, stride_shift);
        b.movImm(i, 0);
        b.beginLoop();
        b.setpIImm(p, isa::CmpOp::kGe, i, 200);
        b.brk(p);
        for (int u = 0; u < 8; ++u) {
            b.lds(v, sa, 0);
            b.sts(sa, v, 0);
        }
        b.iaddImm(i, i, 1);
        b.endLoop();
        Reg out = b.reg();
        b.shlImm(out, tid, 2);
        b.iaddImm(out, out, 4096);
        b.stg(out, v);
        return b.build(16384 / 2);
    };
    GlobalMemory g1(1 << 20);
    GlobalMemory g2(1 << 20);
    LaunchConfig cfg{spec().numSms, 256};
    TimingResult fast = timeKernel(s, build(2), cfg, g1);  // stride 1
    TimingResult slow = timeKernel(s, build(5), cfg, g2);  // stride 8
    // 8-way conflicts should be several times slower.
    EXPECT_GT(slow.seconds, 4.0 * fast.seconds);
}

TEST(Timing, BarrierSerializesDependentStages)
{
    const arch::GpuSpec s = spec();
    auto build = [&](bool with_barriers) {
        KernelBuilder b("bars");
        Reg x = b.reg();
        b.movImmF(x, 1.0f);
        for (int stage = 0; stage < 8; ++stage) {
            for (int i = 0; i < 20; ++i)
                b.fadd(x, x, x);
            if (with_barriers)
                b.bar();
        }
        Reg tid = b.reg();
        Reg out = b.reg();
        b.s2r(tid, isa::SpecialReg::kTid);
        b.shlImm(out, tid, 2);
        b.iaddImm(out, out, 4096);
        b.stg(out, x);
        return b.build(0);
    };
    GlobalMemory g1(1 << 20);
    GlobalMemory g2(1 << 20);
    LaunchConfig cfg{spec().numSms, 256};
    TimingResult without = timeKernel(s, build(false), cfg, g1);
    TimingResult with = timeKernel(s, build(true), cfg, g2);
    // Barriers can only slow the kernel down.
    EXPECT_GE(with.seconds, without.seconds);
}

TEST(Timing, MoreBlocksThanSlotsRunInWaves)
{
    const arch::GpuSpec s = spec();
    isa::Kernel k = model::makeInstructionBench(arch::InstrType::TypeII,
                                                25, 12, 4096);
    auto run_blocks = [&](int blocks) {
        GlobalMemory gmem(16 << 20);
        gmem.alloc(4 << 20);
        LaunchConfig cfg{blocks, 512};
        return timeKernel(s, k, cfg, gmem).seconds;
    };
    // 512-thread blocks: two fit per SM -> 60 fill the machine.
    const double t60 = run_blocks(60);
    const double t120 = run_blocks(120);
    const double t121 = run_blocks(121);
    EXPECT_NEAR(t120 / t60, 2.0, 0.3);
    // One leftover block forces a third (partial) wave.
    EXPECT_GT(t121, 1.2 * t120);
}

TEST(Timing, OccupancyLimitsResidency)
{
    // A shared-memory-hungry kernel fits once per SM; halving its
    // shared usage doubles residency and roughly halves runtime.
    const arch::GpuSpec s = spec();
    auto build = [&](int smem_bytes) {
        KernelBuilder b("occ");
        Reg x = b.reg();
        b.movImmF(x, 1.0f);
        for (int i = 0; i < 400; ++i)
            b.fadd(x, x, x);
        Reg tid = b.reg();
        Reg out = b.reg();
        b.s2r(tid, isa::SpecialReg::kTid);
        b.shlImm(out, tid, 2);
        b.iaddImm(out, out, 4096);
        b.stg(out, x);
        return b.build(smem_bytes);
    };
    auto run_one = [&](int smem_bytes) {
        GlobalMemory gmem(1 << 20);
        LaunchConfig cfg{120, 64};
        return timeKernel(s, build(smem_bytes), cfg, gmem).seconds;
    };
    const double t_one_resident = run_one(12000);
    const double t_four_resident = run_one(3000);
    EXPECT_GT(t_one_resident, 2.0 * t_four_resident);
}

TEST(Timing, GlobalBandwidthBoundedByPeak)
{
    const arch::GpuSpec s = spec();
    isa::Kernel k =
        model::makeGlobalStreamBench(128, 8, 60 * 256, 65536, 1 << 22);
    GlobalMemory gmem(16 << 20);
    gmem.alloc(8 << 20);
    LaunchConfig cfg{60, 256};
    FunctionalSimulator fsim(s);
    RunOptions opts;
    opts.collectTrace = true;
    opts.homogeneous = true;
    auto res = fsim.run(k, cfg, gmem, opts);
    TimingSimulator tsim(s);
    TimingResult tr = tsim.run(res.trace);
    double req_bytes = 0;
    for (const auto &st : res.stats.stages)
        req_bytes += st.globalRequestBytes;
    const double bw = req_bytes / tr.seconds;
    EXPECT_LT(bw, s.peakGlobalBandwidth());
    EXPECT_GT(bw, 0.5 * s.peakGlobalBandwidth());
}

TEST(Timing, GlobalBandwidthGrowsWithBlockCount)
{
    const arch::GpuSpec s = spec();
    auto bw_at = [&](int blocks) {
        isa::Kernel k = model::makeGlobalStreamBench(
            64, 8, blocks * 256, 65536, 1 << 22);
        GlobalMemory gmem(16 << 20);
        gmem.alloc(8 << 20);
        LaunchConfig cfg{blocks, 256};
        FunctionalSimulator fsim(s);
        RunOptions opts;
        opts.collectTrace = true;
        opts.homogeneous = true;
        auto res = fsim.run(k, cfg, gmem, opts);
        TimingSimulator tsim(s);
        double req = 0;
        for (const auto &st : res.stats.stages)
            req += st.globalRequestBytes;
        return req / tsim.run(res.trace).seconds;
    };
    const double bw4 = bw_at(4);
    const double bw20 = bw_at(20);
    const double bw60 = bw_at(60);
    EXPECT_GT(bw20, 2.0 * bw4);   // latency-bound region scales
    EXPECT_GT(bw60, bw20 * 0.95); // plateau
}

TEST(TextureCache, HitsAndMissesLru)
{
    TextureCache tc(1024, 32, 2);  // 16 sets x 2 ways
    EXPECT_FALSE(tc.access(0, 1.0));
    EXPECT_TRUE(tc.access(0, 2.0));
    // Same set (line ids congruent mod 16), 2 ways.
    EXPECT_FALSE(tc.access(16, 3.0));
    EXPECT_TRUE(tc.access(0, 4.0));
    EXPECT_TRUE(tc.access(16, 5.0));
    // Third distinct line in the set evicts the LRU (line 0).
    EXPECT_FALSE(tc.access(32, 6.0));
    EXPECT_TRUE(tc.access(16, 7.0));
    EXPECT_FALSE(tc.access(0, 8.0));
    EXPECT_EQ(tc.misses(), 4u);
}

TEST(TextureCache, ReuseSpeedsUpGatherKernels)
{
    // All threads gather the same small region repeatedly: with the
    // cache enabled the port traffic collapses.
    arch::GpuSpec cached = spec();
    cached.textureCacheEnabled = true;

    KernelBuilder b("gather");
    Reg tid = b.reg();
    Reg a = b.reg();
    Reg v = b.reg();
    Reg acc = b.reg();
    Reg i = b.reg();
    isa::Pred p = b.pred();
    b.s2r(tid, isa::SpecialReg::kTid);
    b.andImm(a, tid, 63);
    b.shlImm(a, a, 2);
    b.iaddImm(a, a, 65536);
    b.movImmF(acc, 0.0f);
    b.movImm(i, 0);
    b.beginLoop();
    b.setpIImm(p, isa::CmpOp::kGe, i, 100);
    b.brk(p);
    b.ldt(v, a, 0);
    b.fadd(acc, acc, v);
    b.iaddImm(i, i, 1);
    b.endLoop();
    Reg out = b.reg();
    b.shlImm(out, tid, 2);
    b.iaddImm(out, out, 4096);
    b.stg(out, acc);
    isa::Kernel k = b.build(0);

    GlobalMemory g1(4 << 20);
    GlobalMemory g2(4 << 20);
    LaunchConfig cfg{60, 256};
    TimingResult plain = timeKernel(spec(), k, cfg, g1);
    TimingResult tex = timeKernel(cached, k, cfg, g2);
    EXPECT_LT(tex.seconds, 0.5 * plain.seconds);
    EXPECT_GT(tex.texHits, tex.texMisses);
}

TEST(Timing, ResultsIncludeOccupancyAndOps)
{
    const arch::GpuSpec s = spec();
    isa::Kernel k = model::makeInstructionBench(arch::InstrType::TypeII,
                                                4, 4, 4096);
    GlobalMemory gmem(1 << 20);
    LaunchConfig cfg{30, 64};
    TimingResult tr = timeKernel(s, k, cfg, gmem);
    EXPECT_GT(tr.totalOps, 0u);
    EXPECT_GT(tr.cycles, 0.0);
    EXPECT_EQ(tr.occupancy.residentBlocks, 8);
}

} // namespace
} // namespace timing
} // namespace gpuperf
