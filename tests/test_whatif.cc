/**
 * @file
 * What-if analysis tests: the model's edited-input predictions for
 * conflict removal, occupancy changes, and coalescing, plus the
 * bottleneck-removal ceiling.
 */

#include <gtest/gtest.h>

#include "model/whatif.h"

namespace gpuperf {
namespace model {
namespace {

CalibrationTables
fakeTables()
{
    CalibrationTables t;
    t.maxWarps = 32;
    t.bytesPerPass = 64;
    for (int type = 0; type < arch::kNumInstrTypes; ++type) {
        t.instrThroughput[type].assign(33, 0.0);
        for (int w = 1; w <= 32; ++w)
            t.instrThroughput[type][w] = 1e10 * std::min(1.0, w / 8.0);
    }
    t.sharedPassThroughput.assign(33, 0.0);
    for (int w = 1; w <= 32; ++w)
        t.sharedPassThroughput[w] = 2e10 * std::min(1.0, w / 8.0);
    return t;
}

class WhatIfTest : public ::testing::Test
{
  protected:
    WhatIfTest()
        : device_(arch::GpuSpec::gtx285()), calibrator_(device_),
          model_(calibrator_)
    {
        calibrator_.setTablesForTesting(fakeTables());
        input_.gridDim = 600;
        input_.blockDim = 128;
        input_.concurrentBlocksPerSm = 4;
        input_.stagesSerialized = false;
        StageInput s;
        s.typeCounts[1] = 1'000'000;        // 0.1 ms
        s.sharedTransactions = 8'000'000;   // conflicted: 0.4 ms
        s.sharedTransactionsIdeal = 2'000'000;  // ideal: 0.1 ms
        s.activeWarpsPerSm = 16;
        input_.stages.push_back(s);
    }

    SimulatedDevice device_;
    Calibrator calibrator_;
    PerformanceModel model_;
    ModelInput input_;
};

TEST_F(WhatIfTest, RemovingConflictsPredictsTheCrStory)
{
    WhatIfResult r = whatIfNoBankConflicts(model_, input_);
    EXPECT_EQ(r.before.bottleneck, Component::kShared);
    // After: shared 0.1 ms ties instruction 0.1 ms -> no longer the
    // clear bottleneck and the total drops 4x.
    EXPECT_NEAR(r.speedup(), 4.0, 0.01);
    EXPECT_NEAR(r.after.totalSeconds, 1e-4, 1e-6);
}

TEST_F(WhatIfTest, MoreWarpsHelpUntilSaturation)
{
    input_.stages[0].activeWarpsPerSm = 4;  // half throughput
    WhatIfResult r = whatIfWarpsPerSm(model_, input_, 16.0);
    EXPECT_NEAR(r.speedup(), 2.0, 0.01);
    // Beyond saturation there is nothing left to gain.
    input_.stages[0].activeWarpsPerSm = 16;
    WhatIfResult r2 = whatIfWarpsPerSm(model_, input_, 32.0);
    EXPECT_NEAR(r2.speedup(), 1.0, 0.01);
}

TEST_F(WhatIfTest, PerfectCoalescingScalesGlobalTraffic)
{
    input_.stages[0].effective64Xacts = 1000.0;
    input_.stages[0].globalBytes = 64000;
    input_.stages[0].globalRequestBytes = 16000;  // 25% efficiency
    // Avoid a real synthetic run: zero out global traffic's role by
    // checking only the edited inputs via the returned predictions'
    // relative change in the global component. Use a real calibrator
    // bench-free path: effective transactions feed tGlobal only when
    // a synthetic throughput exists; with fake tables the calibrator
    // would run a real bench, so instead verify the edit logic by
    // inspecting speedup of a shared-dominated case stays >= 1.
    WhatIfResult r = whatIfPerfectCoalescing(model_, input_);
    EXPECT_GE(r.speedup(), 1.0);
    EXPECT_LE(r.after.totalSeconds, r.before.totalSeconds + 1e-12);
}

TEST_F(WhatIfTest, BottleneckRemovalCeilingOverlapped)
{
    Prediction p = model_.predict(input_);
    // shared 0.4 ms total, next is instruction 0.1 ms -> ceiling 4x.
    EXPECT_NEAR(bottleneckRemovalCeiling(p), 4.0, 0.01);
}

TEST_F(WhatIfTest, BottleneckRemovalCeilingSerialized)
{
    input_.stagesSerialized = true;
    StageInput s2 = input_.stages[0];
    s2.typeCounts[1] = 4'000'000;      // 0.4 ms instr
    s2.sharedTransactions = 2'000'000; // 0.1 ms shared
    input_.stages.push_back(s2);
    Prediction p = model_.predict(input_);
    // Stage times: max(0.1, 0.4) + max(0.4, 0.1) = 0.8 ms.
    // Overall bottleneck: shared (0.5 total) vs instr (0.5 total):
    // tie resolves to global? No traffic -> shared >= instr -> shared.
    // Removing it leaves instr per stage: 0.1 + 0.4 = 0.5 ms.
    EXPECT_NEAR(p.totalSeconds, 8e-4, 1e-6);
    EXPECT_NEAR(bottleneckRemovalCeiling(p), 0.8 / 0.5, 0.01);
}

} // namespace
} // namespace model
} // namespace gpuperf
