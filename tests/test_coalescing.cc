/**
 * @file
 * Coalescing (memory transaction) simulator tests, including the
 * protocol cases of paper Section 4.3 and property sweeps over
 * transaction granularities.
 */

#include <gtest/gtest.h>

#include "memxact/coalescing.h"

namespace gpuperf {
namespace memxact {
namespace {

std::vector<Request>
makeRequests(std::initializer_list<uint64_t> addrs)
{
    std::vector<Request> reqs;
    for (uint64_t a : addrs)
        reqs.push_back({a, true});
    return reqs;
}

TEST(Coalescing, FullyCoalescedHalfWarpIsOneTransaction)
{
    CoalescingSimulator sim(32, 128, 16);
    std::vector<Request> reqs;
    for (int i = 0; i < 16; ++i)
        reqs.push_back({static_cast<uint64_t>(i) * 4, true});
    auto xacts = sim.coalesce(reqs, 4);
    ASSERT_EQ(xacts.size(), 1u);
    EXPECT_EQ(xacts[0].base, 0u);
    EXPECT_EQ(xacts[0].bytes, 64);
}

TEST(Coalescing, SingleThreadReducesToMinimumSegment)
{
    CoalescingSimulator sim(32, 128, 16);
    auto xacts = sim.coalesce(makeRequests({400}), 4);
    ASSERT_EQ(xacts.size(), 1u);
    EXPECT_EQ(xacts[0].bytes, 32);
    EXPECT_EQ(xacts[0].base % 32, 0u);
}

TEST(Coalescing, SegmentReductionPicksCoveringHalf)
{
    CoalescingSimulator sim(32, 128, 16);
    // Two accesses in the upper 32 B of a 128 B segment.
    auto xacts = sim.coalesce(makeRequests({96, 100}), 4);
    ASSERT_EQ(xacts.size(), 1u);
    EXPECT_EQ(xacts[0].base, 96u);
    EXPECT_EQ(xacts[0].bytes, 32);
}

TEST(Coalescing, StraddlingAccessesKeepLargeSegment)
{
    CoalescingSimulator sim(32, 128, 16);
    // One word in each half of a 128 B segment: cannot reduce.
    auto xacts = sim.coalesce(makeRequests({0, 124}), 4);
    ASSERT_EQ(xacts.size(), 1u);
    EXPECT_EQ(xacts[0].bytes, 128);
}

TEST(Coalescing, TwoSegmentsWhenAddressesSpanBoundary)
{
    CoalescingSimulator sim(32, 128, 16);
    // Lowest thread at 120, next at 128: different 128 B segments.
    auto xacts = sim.coalesce(makeRequests({120, 128}), 4);
    ASSERT_EQ(xacts.size(), 2u);
    EXPECT_EQ(xacts[0].base, 96u);   // reduced around 120
    EXPECT_EQ(xacts[0].bytes, 32);
    EXPECT_EQ(xacts[1].base, 128u);
    EXPECT_EQ(xacts[1].bytes, 32);
}

TEST(Coalescing, LowestNumberedThreadLeadsService)
{
    CoalescingSimulator sim(32, 128, 16);
    // Thread 0 at a high address, thread 1 at a low one: thread 0's
    // segment is served first.
    auto xacts = sim.coalesce(makeRequests({1024, 0}), 4);
    ASSERT_EQ(xacts.size(), 2u);
    EXPECT_EQ(xacts[0].base, 1024u);
    EXPECT_EQ(xacts[1].base, 0u);
}

TEST(Coalescing, InactiveLanesAreIgnored)
{
    CoalescingSimulator sim(32, 128, 16);
    std::vector<Request> reqs(16);
    for (int i = 0; i < 16; ++i)
        reqs[i] = {static_cast<uint64_t>(i) * 4096, i == 5};
    auto xacts = sim.coalesce(reqs, 4);
    ASSERT_EQ(xacts.size(), 1u);
    EXPECT_EQ(xacts[0].base, 5u * 4096);
}

TEST(Coalescing, AllInactiveProducesNothing)
{
    CoalescingSimulator sim(32, 128, 16);
    std::vector<Request> reqs(16);
    EXPECT_TRUE(sim.coalesce(reqs, 4).empty());
}

TEST(Coalescing, SameWordIsOneTransaction)
{
    CoalescingSimulator sim(32, 128, 16);
    std::vector<Request> reqs(16);
    for (int i = 0; i < 16; ++i)
        reqs[i] = {640, true};
    auto xacts = sim.coalesce(reqs, 4);
    ASSERT_EQ(xacts.size(), 1u);
    EXPECT_EQ(xacts[0].bytes, 32);
}

TEST(Coalescing, FullyScatteredHalfWarpIsSixteenTransactions)
{
    CoalescingSimulator sim(32, 128, 16);
    std::vector<Request> reqs;
    for (int i = 0; i < 16; ++i)
        reqs.push_back({static_cast<uint64_t>(i) * 512, true});
    auto xacts = sim.coalesce(reqs, 4);
    EXPECT_EQ(xacts.size(), 16u);
    for (const auto &x : xacts)
        EXPECT_EQ(x.bytes, 32);
}

TEST(Coalescing, WarpSplitsIntoHalfWarps)
{
    CoalescingSimulator sim(32, 128, 16);
    uint64_t addrs[32];
    for (int i = 0; i < 32; ++i)
        addrs[i] = static_cast<uint64_t>(i) * 4;
    auto xacts = sim.coalesceWarp(addrs, 0xffffffffu, 32, 4);
    // Two half-warps, each one 64 B transaction.
    ASSERT_EQ(xacts.size(), 2u);
    EXPECT_EQ(xacts[0].bytes, 64);
    EXPECT_EQ(xacts[1].bytes, 64);
    EXPECT_EQ(xacts[1].base, 64u);
}

TEST(Coalescing, PartiallyActiveWarp)
{
    CoalescingSimulator sim(32, 128, 16);
    uint64_t addrs[32];
    for (int i = 0; i < 32; ++i)
        addrs[i] = static_cast<uint64_t>(i) * 4;
    // Only the first half-warp active.
    auto xacts = sim.coalesceWarp(addrs, 0x0000ffffu, 32, 4);
    ASSERT_EQ(xacts.size(), 1u);
    EXPECT_EQ(xacts[0].bytes, 64);
}

TEST(Coalescing, GpuSpecConstructorUsesSpecParameters)
{
    arch::GpuSpec spec = arch::GpuSpec::gtx285SmallSegments(16);
    CoalescingSimulator sim(spec);
    EXPECT_EQ(sim.minSegmentBytes(), 16);
    auto xacts = sim.coalesce(makeRequests({100}), 4);
    ASSERT_EQ(xacts.size(), 1u);
    EXPECT_EQ(xacts[0].bytes, 16);
}

TEST(Coalescing, TotalBytesSums)
{
    std::vector<Transaction> xacts = {{0, 32}, {64, 128}};
    EXPECT_EQ(CoalescingSimulator::totalBytes(xacts), 160u);
}

// --- Property sweeps over granularity ---------------------------------

class CoalescingGranularity : public ::testing::TestWithParam<int> {};

TEST_P(CoalescingGranularity, StridedAccessTransactionCounts)
{
    const int gran = GetParam();
    CoalescingSimulator sim(gran, 128, 16);
    for (int stride_words = 1; stride_words <= 32; stride_words *= 2) {
        std::vector<Request> reqs;
        for (int i = 0; i < 16; ++i)
            reqs.push_back(
                {static_cast<uint64_t>(i) * stride_words * 4, true});
        auto xacts = sim.coalesce(reqs, 4);
        const uint64_t bytes = CoalescingSimulator::totalBytes(xacts);
        // Every request must be covered.
        EXPECT_GE(bytes, 16u * 4);
        // Never more transactions than threads, never zero.
        EXPECT_GE(xacts.size(), 1u);
        EXPECT_LE(xacts.size(), 16u);
        // All transactions aligned and within legal sizes.
        for (const auto &x : xacts) {
            EXPECT_EQ(x.base % x.bytes, 0u);
            EXPECT_GE(x.bytes, gran);
            EXPECT_LE(x.bytes, 128);
        }
    }
}

TEST_P(CoalescingGranularity, SmallerGranularityNeverMovesMoreBytes)
{
    const int gran = GetParam();
    if (gran >= 32)
        GTEST_SKIP() << "needs a coarser comparison point";
    CoalescingSimulator fine(gran, 128, 16);
    CoalescingSimulator coarse(32, 128, 16);
    // Pseudo-random scattered pattern.
    uint64_t addr = 12345;
    std::vector<Request> reqs;
    for (int i = 0; i < 16; ++i) {
        addr = addr * 1103515245 + 12345;
        reqs.push_back({(addr >> 8) % 65536 / 4 * 4, true});
    }
    EXPECT_LE(CoalescingSimulator::totalBytes(fine.coalesce(reqs, 4)),
              CoalescingSimulator::totalBytes(coarse.coalesce(reqs, 4)));
}

INSTANTIATE_TEST_SUITE_P(Granularities, CoalescingGranularity,
                         ::testing::Values(4, 8, 16, 32));

TEST(Coalescing, WarpIntoFastPathMatchesReferenceEverywhere)
{
    // coalesceWarpInto is the vectorized interpreter's hot path; it
    // must produce the same transactions in the same service order as
    // coalesceWarp on every mask/address pattern, including sub-32
    // warps, tail groups, and multi-word accesses.
    const int sim_configs[][3] = {
        {32, 128, 16}, {4, 128, 16}, {16, 64, 8}, {32, 128, 32},
        {32, 128, 12},
    };
    const int warp_sizes[] = {32, 16, 24, 17, 8};
    const int word_sizes[] = {4, 8};
    uint64_t seed = 7;
    for (const auto &sc : sim_configs) {
        CoalescingSimulator sim(sc[0], sc[1], sc[2]);
        for (int ws : warp_sizes) {
            for (int wb : word_sizes) {
                for (int trial = 0; trial < 30; ++trial) {
                    std::vector<uint64_t> addrs(32, 0);
                    uint32_t mask = 0;
                    const uint32_t full =
                        ws >= 32 ? 0xffffffffu : ((1u << ws) - 1);
                    switch (trial % 5) {
                    case 0:   // unit stride, full mask
                        for (int i = 0; i < ws; ++i)
                            addrs[i] = static_cast<uint64_t>(i) * wb;
                        mask = full;
                        break;
                    case 1:   // large stride, alternating mask
                        for (int i = 0; i < ws; ++i)
                            addrs[i] = static_cast<uint64_t>(i) * 256;
                        mask = 0xaaaaaaaau & full;
                        break;
                    case 2:   // empty mask
                        mask = 0;
                        break;
                    default:  // random addresses, random mask
                        for (int i = 0; i < ws; ++i) {
                            seed = seed * 6364136223846793005ULL +
                                   1442695040888963407ULL;
                            addrs[i] = (seed >> 16) % 65536 / wb * wb;
                        }
                        seed = seed * 6364136223846793005ULL +
                               1442695040888963407ULL;
                        mask = static_cast<uint32_t>(seed >> 32) & full;
                        break;
                    }
                    const auto want =
                        sim.coalesceWarp(addrs.data(), mask, ws, wb);
                    std::vector<Transaction> got;
                    sim.coalesceWarpInto(addrs.data(), mask, ws, wb,
                                         got);
                    EXPECT_EQ(got, want)
                        << "segments [" << sc[0] << "," << sc[1]
                        << "] group " << sc[2] << " warp " << ws
                        << " word " << wb << " trial " << trial;
                }
            }
        }
    }
}

TEST(Coalescing, WarpIntoSectoredPolicyFallsBackIdentically)
{
    CoalescingSimulator sim(4, 128, 16, CoalescePolicy::kSectored);
    std::vector<uint64_t> addrs(32);
    for (int i = 0; i < 32; ++i)
        addrs[i] = static_cast<uint64_t>(i) * 32;
    const auto want = sim.coalesceWarp(addrs.data(), 0xffffffffu, 32, 4);
    std::vector<Transaction> got;
    sim.coalesceWarpInto(addrs.data(), 0xffffffffu, 32, 4, got);
    EXPECT_EQ(got, want);
}

} // namespace
} // namespace memxact
} // namespace gpuperf
