/**
 * @file
 * Occupancy calculator tests, including the paper's Table 2 regimes.
 */

#include <gtest/gtest.h>

#include "arch/occupancy.h"

namespace gpuperf {
namespace arch {
namespace {

TEST(Occupancy, BlockCeilingBindsSmallKernels)
{
    GpuSpec spec = GpuSpec::gtx285();
    KernelResources res{/*regs*/ 10, /*smem*/ 512, /*threads*/ 64};
    Occupancy occ = computeOccupancy(spec, res);
    EXPECT_EQ(occ.residentBlocks, 8);
    EXPECT_EQ(occ.limit, OccupancyLimit::Blocks);
    EXPECT_EQ(occ.residentWarps, 16);
    EXPECT_EQ(occ.warpsPerBlock, 2);
}

TEST(Occupancy, SharedMemoryBindsLargeTiles)
{
    // The 32x32 GEMM regime of Table 2: ~4.2 KB shared per block.
    GpuSpec spec = GpuSpec::gtx285();
    KernelResources res{44, 4224, 64};
    Occupancy occ = computeOccupancy(spec, res);
    EXPECT_EQ(occ.residentBlocks, 3);
    EXPECT_EQ(occ.limit, OccupancyLimit::SharedMemory);
    EXPECT_EQ(occ.residentWarps, 6);
}

TEST(Occupancy, RegistersBind)
{
    GpuSpec spec = GpuSpec::gtx285();
    KernelResources res{60, 0, 256};
    // 60 * 256 = 15360 -> one block only.
    Occupancy occ = computeOccupancy(spec, res);
    EXPECT_EQ(occ.residentBlocks, 1);
    EXPECT_EQ(occ.limit, OccupancyLimit::Registers);
}

TEST(Occupancy, ThreadCeilingBinds)
{
    GpuSpec spec = GpuSpec::gtx285();
    KernelResources res{4, 0, 512};
    // 1024 threads per SM -> 2 blocks of 512.
    Occupancy occ = computeOccupancy(spec, res);
    EXPECT_EQ(occ.residentBlocks, 2);
    EXPECT_EQ(occ.limit, OccupancyLimit::Threads);
    EXPECT_EQ(occ.residentWarps, 32);
}

TEST(Occupancy, CrSharedRegimeIsOneBlock)
{
    // Cyclic reduction: 5 arrays x 512 floats = 10240 B -> one block.
    GpuSpec spec = GpuSpec::gtx285();
    KernelResources res{18, 10240, 256};
    Occupancy occ = computeOccupancy(spec, res);
    EXPECT_EQ(occ.residentBlocks, 1);
    EXPECT_EQ(occ.limit, OccupancyLimit::SharedMemory);
    EXPECT_EQ(occ.residentWarps, 8);
}

TEST(Occupancy, MoreBlocksVariantRaisesCeiling)
{
    GpuSpec spec = GpuSpec::gtx285MoreBlocks();
    KernelResources res{10, 512, 64};
    Occupancy occ = computeOccupancy(spec, res);
    EXPECT_EQ(occ.residentBlocks, 16);
    EXPECT_EQ(occ.residentWarps, 32);
}

TEST(Occupancy, BigResourcesVariantFitsMoreTiles)
{
    GpuSpec spec = GpuSpec::gtx285BigResources();
    KernelResources res{44, 4224, 64};
    Occupancy occ = computeOccupancy(spec, res);
    EXPECT_GE(occ.residentBlocks, 6);
}

TEST(Occupancy, RegisterAllocationRoundsPerBlock)
{
    GpuSpec spec = GpuSpec::gtx285();
    // 17 regs * 64 threads = 1088, rounded to 1536 -> 10 blocks by
    // registers (not 15).
    KernelResources res{17, 0, 64};
    Occupancy occ = computeOccupancy(spec, res);
    EXPECT_EQ(occ.blocksByRegisters, 16384 / 1536);
}

TEST(Occupancy, WarpCeilingBinds)
{
    GpuSpec spec = GpuSpec::gtx285();
    KernelResources res{2, 0, 128};
    Occupancy occ = computeOccupancy(spec, res);
    // 128 threads = 4 warps; 32-warp ceiling and the 8-block ceiling
    // both give 8 blocks; the tie resolves to the first-listed limit.
    EXPECT_EQ(occ.residentBlocks, 8);
    EXPECT_EQ(occ.residentWarps, 32);
}

TEST(OccupancyDeath, RejectsOversizedBlocks)
{
    GpuSpec spec = GpuSpec::gtx285();
    KernelResources res{4, 0, 1024};
    EXPECT_DEATH(computeOccupancy(spec, res), "block ceiling");
}

TEST(OccupancyDeath, RejectsKernelsThatDoNotFit)
{
    GpuSpec spec = GpuSpec::gtx285();
    KernelResources res{4, 20000, 64};
    EXPECT_DEATH(computeOccupancy(spec, res), "does not fit");
}

struct OccCase
{
    int regs;
    int smem;
    int threads;
};

class OccupancyMonotonic : public ::testing::TestWithParam<OccCase> {};

TEST_P(OccupancyMonotonic, MoreResourcesNeverLowerOccupancy)
{
    const OccCase c = GetParam();
    GpuSpec base = GpuSpec::gtx285();
    GpuSpec big = GpuSpec::gtx285BigResources();
    KernelResources res{c.regs, c.smem, c.threads};
    EXPECT_GE(computeOccupancy(big, res).residentBlocks,
              computeOccupancy(base, res).residentBlocks);
}

TEST_P(OccupancyMonotonic, MoreRegistersPerThreadNeverRaiseOccupancy)
{
    const OccCase c = GetParam();
    GpuSpec spec = GpuSpec::gtx285();
    KernelResources lean{c.regs, c.smem, c.threads};
    KernelResources fat{c.regs + 8, c.smem, c.threads};
    EXPECT_LE(computeOccupancy(spec, fat).residentBlocks,
              computeOccupancy(spec, lean).residentBlocks);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, OccupancyMonotonic,
    ::testing::Values(OccCase{10, 512, 64}, OccCase{20, 1088, 64},
                      OccCase{44, 4224, 64}, OccCase{18, 10240, 256},
                      OccCase{16, 0, 128}, OccCase{32, 2048, 256},
                      OccCase{8, 8192, 512}));

} // namespace
} // namespace arch
} // namespace gpuperf
