/**
 * @file
 * Persistent-store tests: the binary serializer round-trips every
 * value bit-exactly, each store rejects stale/corrupt/foreign entries
 * (degrading to a recompute, never wrong data), and a warm store
 * drives BatchRunner to results bit-identical to a cold run while
 * skipping functional simulation and calibration.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <thread>

#include "driver/batch_runner.h"
#include "driver/demo_cases.h"
#include "model/session.h"
#include "store/calibration_store.h"
#include "store/codecs.h"
#include "store/lease.h"
#include "store/profile_store.h"
#include "store/result_store.h"
#include "store/serializer.h"
#include "store/timing_store.h"

namespace gpuperf {
namespace {

model::CalibrationTables
fakeTables()
{
    model::CalibrationTables t;
    t.maxWarps = 32;
    t.bytesPerPass = 64;
    for (int type = 0; type < arch::kNumInstrTypes; ++type) {
        t.instrThroughput[type].assign(33, 0.0);
        for (int w = 1; w <= 32; ++w)
            t.instrThroughput[type][w] =
                1e10 * std::min(1.0, w / 8.0) + type * 0.125;
    }
    t.sharedPassThroughput.assign(33, 0.0);
    for (int w = 1; w <= 32; ++w)
        t.sharedPassThroughput[w] = 2e10 * std::min(1.0, w / 8.0);
    return t;
}

std::shared_ptr<const model::CalibrationTables>
sharedFakeTables()
{
    return std::make_shared<const model::CalibrationTables>(fakeTables());
}

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "gpuperf-" + name +
                            "-" + std::to_string(::getpid());
    // Tests reuse process-unique names; stale files from a previous
    // case in this process are fine (keys disambiguate).
    return dir;
}

TEST(Serializer, RoundTripsScalarsBitExactly)
{
    store::ByteWriter w;
    w.u8(0xab);
    w.u16(0xbeef);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefull);
    w.i32(-42);
    w.b(true);
    w.f64(0.1);
    w.f64(-0.0);
    w.f64(1e-300);
    w.f64(6.02214076e23);
    w.str("hello|world");
    w.str("");

    store::ByteReader r(w.bytes());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0xbeef);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.i32(), -42);
    EXPECT_TRUE(r.b());
    // Bit-level equality, not approximate: the whole point of the
    // binary format is exact reproduction of model outputs.
    EXPECT_EQ(r.f64(), 0.1);
    const double neg_zero = r.f64();
    EXPECT_EQ(neg_zero, 0.0);
    EXPECT_TRUE(std::signbit(neg_zero));
    EXPECT_EQ(r.f64(), 1e-300);
    EXPECT_EQ(r.f64(), 6.02214076e23);
    EXPECT_EQ(r.str(), "hello|world");
    EXPECT_EQ(r.str(), "");
    EXPECT_TRUE(r.atEnd());
}

TEST(Serializer, OverrunSticksAndReturnsZeros)
{
    store::ByteWriter w;
    w.u32(7);
    store::ByteReader r(w.bytes());
    EXPECT_EQ(r.u32(), 7u);
    EXPECT_EQ(r.u64(), 0u) << "reading past the end yields zero";
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.u8(), 0) << "failure is sticky";
}

TEST(Serializer, EntryFilesRejectForeignKeysAndVersions)
{
    const std::string dir = freshDir("entries");
    ASSERT_TRUE(store::makeDirs(dir));
    const std::string path = dir + "/entry.bin";
    ASSERT_TRUE(store::writeEntryFile(path, 3, "the-key", "payload"));

    std::string payload;
    EXPECT_TRUE(store::readEntryFile(path, 3, "the-key", &payload));
    EXPECT_EQ(payload, "payload");
    EXPECT_FALSE(store::readEntryFile(path, 4, "the-key", &payload))
        << "format-version bump invalidates the entry";
    EXPECT_FALSE(store::readEntryFile(path, 3, "another-key", &payload))
        << "key mismatch (e.g. filename hash collision) is a miss";
    EXPECT_FALSE(
        store::readEntryFile(dir + "/absent.bin", 3, "k", &payload));

    std::ofstream(path, std::ios::binary) << "garbage";
    EXPECT_FALSE(store::readEntryFile(path, 3, "the-key", &payload))
        << "a corrupt entry is a miss, not an error";
}

TEST(ProfileStore, RoundTripDrivesBitIdenticalPredictions)
{
    auto kc = driver::makeStencil1dCase("stencil", 8, 128);
    auto launch = kc.make();
    model::AnalysisSession session(arch::GpuSpec::gtx285());
    session.adoptCalibration(sharedFakeTables());
    auto profile = session.profile(launch.kernel, launch.cfg, *launch.gmem);

    store::ProfileStore ps(freshDir("profiles"));
    ASSERT_TRUE(ps.save(*profile));
    auto loaded = ps.load(profile->key);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(ps.hits(), 1u);

    // The loaded artifact is the same object, field for field...
    EXPECT_EQ(loaded->key, profile->key);
    EXPECT_EQ(loaded->kernelName, profile->kernelName);
    EXPECT_EQ(loaded->resources.registersPerThread,
              profile->resources.registersPerThread);
    ASSERT_EQ(loaded->stats.stages.size(), profile->stats.stages.size());
    for (size_t i = 0; i < loaded->stats.stages.size(); ++i)
        EXPECT_TRUE(loaded->stats.stages[i] == profile->stats.stages[i]);
    ASSERT_EQ(loaded->trace.pool.size(), profile->trace.pool.size());
    for (size_t i = 0; i < loaded->trace.pool.size(); ++i)
        EXPECT_TRUE(loaded->trace.pool[i] == profile->trace.pool[i]);
    ASSERT_EQ(loaded->trace.blocks.size(), profile->trace.blocks.size());
    EXPECT_EQ(loaded->trace.totalOps(), profile->trace.totalOps());

    // ...so serialize -> load -> predict is exact.
    const model::Analysis from_memory = session.analyze(profile);
    const model::Analysis from_disk = session.analyze(loaded);
    EXPECT_EQ(from_disk.prediction.totalSeconds,
              from_memory.prediction.totalSeconds);
    EXPECT_EQ(from_disk.measurement.timing.cycles,
              from_memory.measurement.timing.cycles);
    EXPECT_EQ(from_disk.metrics.coalescingEfficiency,
              from_memory.metrics.coalescingEfficiency);
}

TEST(ProfileStore, MissesOnDifferentKey)
{
    auto kc = driver::makeSaxpyCase("saxpy", 4, 128, 2.0f);
    auto launch = kc.make();
    model::SimulatedDevice dev(arch::GpuSpec::gtx285());
    auto profile = dev.profile(launch.kernel, launch.cfg, *launch.gmem);

    store::ProfileStore ps(freshDir("profile-miss"));
    ASSERT_TRUE(ps.save(*profile));
    funcsim::ProfileKey other = profile->key;
    other.cfg.gridDim += 1;
    EXPECT_EQ(ps.load(other), nullptr);
    other = profile->key;
    other.fingerprint.numSharedBanks = 17;
    EXPECT_EQ(ps.load(other), nullptr)
        << "funcsim fingerprint mismatch must recompute";
    EXPECT_EQ(ps.misses(), 2u);
}

TEST(CalibrationStore, RoundTripsTablesExactly)
{
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    store::CalibrationStore cs(freshDir("calibrations"));
    EXPECT_EQ(cs.load(spec), nullptr);
    ASSERT_TRUE(cs.save(spec, fakeTables()));
    auto loaded = cs.load(spec);
    ASSERT_NE(loaded, nullptr);
    const model::CalibrationTables want = fakeTables();
    EXPECT_EQ(loaded->maxWarps, want.maxWarps);
    EXPECT_EQ(loaded->bytesPerPass, want.bytesPerPass);
    for (int type = 0; type < arch::kNumInstrTypes; ++type)
        EXPECT_EQ(loaded->instrThroughput[type],
                  want.instrThroughput[type]);
    EXPECT_EQ(loaded->sharedPassThroughput, want.sharedPassThroughput);

    arch::GpuSpec other = spec;
    other.aluDepCycles += 1;
    EXPECT_EQ(cs.load(other), nullptr)
        << "calibration keys on the FULL spec fingerprint";
}

TEST(ResultStore, RoundTripsABatchResultBitExactly)
{
    driver::BatchRunner runner;
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    runner.adoptCalibration(spec, sharedFakeTables());
    driver::SweepSpec sweep;
    sweep.noBankConflicts = true;
    sweep.warpsPerSm = {8.0, 32.0};
    const auto results = runner.run(
        {driver::makeStridedSaxpyCase("strided", 8, 128, 4)}, {spec},
        sweep);
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].ok) << results[0].error;

    store::ResultStore rs(freshDir("results"));
    ASSERT_TRUE(rs.save("cell-key", results[0]));
    auto loaded = rs.load("cell-key");
    ASSERT_NE(loaded, nullptr);
    EXPECT_TRUE(loaded->ok);
    EXPECT_EQ(loaded->kernelName, results[0].kernelName);
    EXPECT_EQ(loaded->analysis.prediction.totalSeconds,
              results[0].analysis.prediction.totalSeconds);
    EXPECT_EQ(loaded->analysis.measurement.timing.cycles,
              results[0].analysis.measurement.timing.cycles);
    EXPECT_EQ(loaded->analysis.measurement.stats.totalGlobalBytes(),
              results[0].analysis.measurement.stats.totalGlobalBytes());
    ASSERT_EQ(loaded->whatifs.size(), results[0].whatifs.size());
    for (size_t j = 0; j < loaded->whatifs.size(); ++j) {
        EXPECT_EQ(loaded->whatifs[j].point.kind,
                  results[0].whatifs[j].point.kind);
        EXPECT_EQ(loaded->whatifs[j].point.value,
                  results[0].whatifs[j].point.value);
        EXPECT_EQ(loaded->whatifs[j].result.before.totalSeconds,
                  results[0].whatifs[j].result.before.totalSeconds);
        EXPECT_EQ(loaded->whatifs[j].result.after.totalSeconds,
                  results[0].whatifs[j].result.after.totalSeconds);
        EXPECT_EQ(loaded->whatifs[j].speedup(),
                  results[0].whatifs[j].speedup());
    }
    EXPECT_EQ(rs.load("other-key"), nullptr);
}

TEST(ProfileStore, ReadKeyValidatesWithoutDeserializing)
{
    auto kc = driver::makeSaxpyCase("saxpy", 4, 128, 2.0f);
    auto launch = kc.make();
    model::SimulatedDevice dev(arch::GpuSpec::gtx285());
    auto profile = dev.profile(launch.kernel, launch.cfg, *launch.gmem);

    store::ProfileStore ps(freshDir("profile-readkey"));
    EXPECT_FALSE(ps.readKey(profile->key)) << "nothing stored yet";
    ASSERT_TRUE(ps.save(*profile));
    EXPECT_TRUE(ps.readKey(profile->key));

    // Any key mutation misses, exactly like a full load.
    funcsim::ProfileKey other = profile->key;
    other.cfg.blockDim *= 2;
    EXPECT_FALSE(ps.readKey(other));
    other = profile->key;
    other.kernelHash ^= 1;
    EXPECT_FALSE(ps.readKey(other));

    // The key-only path is not a load: hit/miss counters untouched.
    EXPECT_EQ(ps.hits(), 0u);
    EXPECT_EQ(ps.misses(), 0u);

    // A truncated entry (torn write) is a miss, not a false positive.
    const std::string key_str = profile->key.str();
    const std::string path = ps.dir() + "/" +
                             store::fileStem("profile", key_str) +
                             ".profile";
    std::ifstream in(path, std::ios::binary);
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    ASSERT_GT(data.size(), 16u);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(),
              static_cast<std::streamsize>(data.size() - 7));
    out.close();
    EXPECT_FALSE(ps.readKey(profile->key));
}

TEST(ProfileStore, KeyedProfileForServesStoreHitsWithoutTheFactory)
{
    // The public key-only pair: profileKeyFor() derives the identity
    // (one factory run, no simulation), profileFor(kc, spec, key)
    // then serves a store hit without re-running the factory.
    const std::string dir = freshDir("keyed-profile-for");
    driver::BatchRunner::Options opts;
    opts.storeDir = dir;
    driver::BatchRunner runner(opts);
    auto kc = driver::makeSaxpyCase("saxpy", 4, 128, 2.0f);
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();

    const funcsim::ProfileKey key = runner.profileKeyFor(kc, spec);
    EXPECT_FALSE(runner.profileStore()->readKey(key));
    auto built = runner.profileFor(kc, spec, key);
    ASSERT_NE(built, nullptr);
    EXPECT_EQ(built->key, key);
    EXPECT_TRUE(runner.profileStore()->readKey(key));

    // Second call: served from the store. A factory-free hit is
    // observable through a poisoned factory.
    driver::KernelCase poisoned = kc;
    poisoned.make = []() -> driver::PreparedLaunch {
        throw std::runtime_error("factory must not run on a hit");
    };
    auto loaded = runner.profileFor(poisoned, spec, key);
    ASSERT_NE(loaded, nullptr);
    EXPECT_EQ(loaded->key, key);
    EXPECT_EQ(runner.profileStore()->hits(), 1u);
}

TEST(TimingStore, RoundTripsReplaysBitExactlyPerFingerprint)
{
    auto kc = driver::makeStencil1dCase("stencil", 8, 128);
    auto launch = kc.make();
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    model::SimulatedDevice dev(spec);
    auto profile = dev.profile(launch.kernel, launch.cfg, *launch.gmem);
    const timing::TimingResult replay =
        dev.timingSim().run(*profile);

    store::TimingStore ts(freshDir("timing-store"));
    const arch::TimingFingerprint fp = arch::TimingFingerprint::of(spec);
    EXPECT_EQ(ts.load(profile->key, fp), nullptr);
    ASSERT_TRUE(ts.save(profile->key, fp, replay));
    auto loaded = ts.load(profile->key, fp);
    ASSERT_NE(loaded, nullptr);
    EXPECT_TRUE(*loaded == replay) << "codec must round-trip exactly";

    // A different timing fingerprint (same profile) is a distinct
    // entry: the paper's what-if variants never alias each other.
    arch::GpuSpec slow = spec;
    slow.globalLatencyCycles *= 2;
    EXPECT_EQ(ts.load(profile->key,
                      arch::TimingFingerprint::of(slow)),
              nullptr);
    // ...and a timing-irrelevant spec edit maps to the same entry.
    arch::GpuSpec renamed = spec;
    renamed.name = "same machine, other label";
    EXPECT_NE(ts.load(profile->key,
                      arch::TimingFingerprint::of(renamed)),
              nullptr);
    EXPECT_EQ(ts.hits(), 2u);
    EXPECT_EQ(ts.misses(), 2u);
}

class WarmStoreTest : public ::testing::Test
{
  protected:
    WarmStoreTest()
    {
        kernels_.push_back(driver::makeSaxpyCase("saxpy", 8, 128, 2.0f));
        kernels_.push_back(
            driver::makeStencil1dCase("stencil", 8, 128));
        specs_ = {arch::GpuSpec::gtx285(),
                  arch::GpuSpec::gtx285MoreBlocks(),
                  arch::GpuSpec::gtx285BigResources(),
                  arch::GpuSpec::gtx285PrimeBanks()};
        sweep_.noBankConflicts = true;
        sweep_.warpsPerSm = {16.0};
    }

    std::unique_ptr<driver::BatchRunner>
    makeRunner(const std::string &store_dir, bool reuse_results = true)
    {
        driver::BatchRunner::Options opts;
        opts.numThreads = 2;
        opts.storeDir = store_dir;
        opts.reuseStoredResults = reuse_results;
        auto runner = std::make_unique<driver::BatchRunner>(opts);
        for (const auto &spec : specs_)
            runner->adoptCalibration(spec, sharedFakeTables());
        return runner;
    }

    void expectSame(const std::vector<driver::BatchResult> &got,
                    const std::vector<driver::BatchResult> &want)
    {
        ASSERT_EQ(got.size(), want.size());
        for (size_t i = 0; i < got.size(); ++i) {
            SCOPED_TRACE("cell " + std::to_string(i));
            ASSERT_TRUE(got[i].ok) << got[i].error;
            EXPECT_EQ(got[i].kernelName, want[i].kernelName);
            EXPECT_EQ(got[i].specName, want[i].specName);
            EXPECT_EQ(got[i].analysis.prediction.totalSeconds,
                      want[i].analysis.prediction.totalSeconds);
            EXPECT_EQ(got[i].analysis.measurement.timing.cycles,
                      want[i].analysis.measurement.timing.cycles);
            ASSERT_EQ(got[i].whatifs.size(), want[i].whatifs.size());
            for (size_t j = 0; j < got[i].whatifs.size(); ++j)
                EXPECT_EQ(got[i].whatifs[j].speedup(),
                          want[i].whatifs[j].speedup());
        }
    }

    std::vector<driver::KernelCase> kernels_;
    std::vector<arch::GpuSpec> specs_;
    driver::SweepSpec sweep_;
};

TEST_F(WarmStoreTest, WarmRunsAreBitIdenticalAndSkipFunctionalSim)
{
    const std::string dir = freshDir("warm-store");

    auto cold = makeRunner(dir);
    const auto cold_results = cold->run(kernels_, specs_, sweep_);
    // Cold: every profile lookup missed, then was stored. 3 of the 4
    // specs share one funcsim fingerprint, so 2 kernels x 2 distinct
    // fingerprints = 4 profile builds for 8 cells.
    ASSERT_NE(cold->profileStore(), nullptr);
    EXPECT_EQ(cold->profileStore()->hits(), 0u);
    EXPECT_EQ(cold->profileStore()->misses(), 4u);

    // Warm, results reused: whole cells come from the store.
    auto warm = makeRunner(dir);
    const auto warm_results = warm->run(kernels_, specs_, sweep_);
    expectSame(warm_results, cold_results);
    EXPECT_EQ(warm->resultStore()->hits(),
              kernels_.size() * specs_.size());

    // Warm, result reuse off: profiles still come from the store
    // (functional simulation skipped), the rest recomputes — and the
    // numbers still match bit for bit.
    auto warm_profiles_only = makeRunner(dir, false);
    const auto reran = warm_profiles_only->run(kernels_, specs_, sweep_);
    expectSame(reran, cold_results);
    EXPECT_EQ(warm_profiles_only->profileStore()->hits(), 4u);
    EXPECT_EQ(warm_profiles_only->profileStore()->misses(), 0u);
    EXPECT_EQ(warm_profiles_only->resultStore()->hits(), 0u);
}

TEST_F(WarmStoreTest, WarmResultCellsTakeTheKeyOnlyPath)
{
    const std::string dir = freshDir("warm-keyonly");
    auto cold = makeRunner(dir);
    const auto cold_results = cold->run(kernels_, specs_, sweep_);

    // Every cell is served from the result store, and the result key
    // is derived from profileKeyFor() alone: the profile files are
    // never opened, let alone deserialized.
    auto warm = makeRunner(dir);
    const auto warm_results = warm->run(kernels_, specs_, sweep_);
    expectSame(warm_results, cold_results);
    EXPECT_EQ(warm->resultStore()->hits(),
              kernels_.size() * specs_.size());
    EXPECT_EQ(warm->profileStore()->hits(), 0u)
        << "warm result cells must not load profiles";
    EXPECT_EQ(warm->profileStore()->misses(), 0u);
    EXPECT_EQ(warm->timingStore()->hits(), 0u)
        << "warm result cells skip the timing memo too";
}

TEST_F(WarmStoreTest, TimingMemoPersistsAcrossProcesses)
{
    const std::string dir = freshDir("warm-timing");
    auto cold = makeRunner(dir);
    (void)cold->run(kernels_, specs_, sweep_);
    // 3 of the 4 specs share a funcsim fingerprint but all 4 have
    // distinct TIMING fingerprints, so the cold run replays (and
    // persists) one timing result per cell.
    ASSERT_NE(cold->timingStore(), nullptr);
    EXPECT_EQ(cold->timingStore()->misses(),
              kernels_.size() * specs_.size());

    // A "new process" with result reuse off: profiles and timing
    // replays both come from disk — the cells recompute only
    // extraction, prediction and the sweep.
    auto warm = makeRunner(dir, false);
    const auto warm_results = warm->run(kernels_, specs_, sweep_);
    for (const auto &r : warm_results)
        ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(warm->timingStore()->hits(),
              kernels_.size() * specs_.size());
    EXPECT_EQ(warm->timingStore()->misses(), 0u);
}

TEST_F(WarmStoreTest, SyntheticBenchResultsPersistAcrossRunners)
{
    const std::string dir = freshDir("bench-memo");
    auto cold = makeRunner(dir);
    (void)cold->run(kernels_, specs_, sweep_);

    // The cold batch measured synthetic global benchmarks (the model's
    // global component needs them); they must now be on disk...
    ASSERT_NE(cold->calibrationStore(), nullptr);
    const auto persisted =
        cold->calibrationStore()->loadBenchResults(specs_[0]);
    EXPECT_FALSE(persisted.empty());

    // ...and a fresh runner must serve them from the store, producing
    // identical results without re-measuring (bit-identity is checked
    // by the sibling tests; here we pin the round trip itself).
    auto warm = makeRunner(dir, false);
    auto memo = warm->benchMemoFor(specs_[0]);
    for (const auto &entry : persisted) {
        bool ran_compute = false;
        const auto served = memo->getOrCompute(entry.first, [&]() {
            ran_compute = true;
            return model::GlobalBenchResult{};
        });
        EXPECT_FALSE(ran_compute)
            << "persisted benchmark was re-measured";
        EXPECT_EQ(served.seconds, entry.second.seconds);
        EXPECT_EQ(served.xactThroughput, entry.second.xactThroughput);
    }
}

TEST_F(WarmStoreTest, SerialReferenceMatchesStoreServedResults)
{
    // The acceptance bar: store-served batches equal the per-cell
    // serial pipeline bit for bit. runSerial calibrates for real, so
    // compare against a per-cell BatchRunner with the same fake
    // tables instead (itself pinned to runSerial's loop in
    // test_batch.cc).
    const std::string dir = freshDir("store-vs-serial");
    auto cold = makeRunner(dir);
    (void)cold->run(kernels_, specs_, sweep_);
    auto warm = makeRunner(dir);
    const auto warm_results = warm->run(kernels_, specs_, sweep_);

    driver::BatchRunner::Options percell;
    percell.numThreads = 1;
    percell.shareProfiles = false;
    driver::BatchRunner reference(percell);
    for (const auto &spec : specs_)
        reference.adoptCalibration(spec, sharedFakeTables());
    const auto want = reference.run(kernels_, specs_, sweep_);
    expectSame(warm_results, want);
}

// --- Cross-process calibration lease -----------------------------------

TEST(CalibrationLease, ExactlyOneProcessHoldsAFreshLease)
{
    const std::string dir = freshDir("lease-basic");
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    // Two store objects = two cooperating processes' views.
    store::CalibrationStore a(dir);
    store::CalibrationStore b(dir);

    EXPECT_FALSE(a.leaseHeld(spec));
    store::CalibrationLease held = a.tryAcquireLease(spec);
    ASSERT_TRUE(held.held());
    EXPECT_TRUE(b.leaseHeld(spec))
        << "the marker must be visible through any store object";

    store::CalibrationLease lost = b.tryAcquireLease(spec);
    EXPECT_FALSE(lost.held())
        << "a fresh lease held by a live pid must not be taken";

    held.release();
    EXPECT_FALSE(b.leaseHeld(spec));
    store::CalibrationLease second = b.tryAcquireLease(spec);
    EXPECT_TRUE(second.held()) << "released leases are re-acquirable";
}

TEST(CalibrationLease, StaleLeasesAreBrokenAndRetaken)
{
    const std::string dir = freshDir("lease-stale");
    ASSERT_TRUE(store::makeDirs(dir));
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    store::CalibrationStore store(dir);

    const std::string lease_path =
        dir + "/" + store::fileStem(spec.name, spec.fingerprint()) +
        ".lease";

    // A lease from a process that no longer exists: broken at once.
    {
        std::ofstream marker(lease_path);
        marker << 999999999 << " " << 1 << "\n"; // dead pid, ancient
    }
    EXPECT_FALSE(store.leaseHeld(spec));
    store::CalibrationLease stolen = store.tryAcquireLease(spec);
    EXPECT_TRUE(stolen.held());
    stolen.release();

    // A lease from a LIVE pid (ours) but older than the stale
    // threshold: the holder is assumed wedged and the lease broken.
    const auto one_minute_ago =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count() -
        60'000;
    {
        std::ofstream marker(lease_path);
        marker << ::getpid() << " " << one_minute_ago << "\n";
    }
    EXPECT_TRUE(store.leaseHeld(spec))
        << "under the default 15-min threshold the lease is fresh";
    store.setLeaseStaleAfter(std::chrono::milliseconds(10));
    EXPECT_FALSE(store.leaseHeld(spec));
    store::CalibrationLease aged = store.tryAcquireLease(spec);
    EXPECT_TRUE(aged.held());
}

TEST(LeaseMarker, HostnameLessMarkersAreGovernedByAgeAlone)
{
    const std::string dir = freshDir("lease-legacy");
    ASSERT_TRUE(store::makeDirs(dir));
    const std::string marker = dir + "/legacy.lease";
    const int64_t now_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count();

    // A hostname-less (legacy) marker names a pid of unknown
    // provenance: it may be recycled by an unrelated local process,
    // or probe as EPERM ("alive"), keeping a dead holder's lease
    // fresh forever. The pid probe must NOT apply — a young legacy
    // marker is fresh and an old one stale, pid notwithstanding.
    {
        std::ofstream out(marker);
        out << 999999999 << " " << now_ms << "\n"; // dead pid, young
    }
    EXPECT_TRUE(store::leaseFresh(marker))
        << "young legacy marker must be fresh even with a dead pid";
    {
        std::ofstream out(marker, std::ios::trunc);
        out << 999999999 << " " << now_ms - 60'000 << "\n";
    }
    EXPECT_FALSE(store::leaseFresh(marker, /*stale_after_ms=*/1000))
        << "aged-out legacy marker must be stale";

    // The same dead pid WITH a local hostname is probed and broken
    // immediately: provenance is known, so liveness can be trusted.
    char host[256] = {0};
    ASSERT_EQ(::gethostname(host, sizeof(host) - 1), 0);
    {
        std::ofstream out(marker, std::ios::trunc);
        out << 999999999 << " " << now_ms << " " << host << "\n";
    }
    EXPECT_FALSE(store::leaseFresh(marker))
        << "dead same-host holder must break the lease at once";

    // A live same-host holder (us) stays fresh.
    {
        std::ofstream out(marker, std::ios::trunc);
        out << ::getpid() << " " << now_ms << " " << host << "\n";
    }
    EXPECT_TRUE(store::leaseFresh(marker));
}

TEST(CalibrationLease, ConcurrentRunnersSplitTheMicrobenchmarkSweep)
{
    // Two runners sharing one storeDir — stand-ins for two sharded
    // processes — calibrate the same spec concurrently: the lease
    // must hand the sweep to exactly one of them, the other waits
    // and loads the published entry. Pinned on the runners' computed
    // counter, not on timing.
    const std::string dir = freshDir("lease-split");
    arch::GpuSpec tiny = arch::GpuSpec::gtx285();
    tiny.name = "GTX tiny lease";
    tiny.numSms = 3;
    tiny.maxWarpsPerSm = 8;
    tiny.maxThreadsPerSm = 256;
    tiny.maxThreadsPerBlock = 256;
    tiny.validate();

    driver::BatchRunner::Options opts;
    opts.numThreads = 1;
    opts.storeDir = dir;
    driver::BatchRunner first(opts);
    driver::BatchRunner second(opts);

    std::shared_ptr<const model::CalibrationTables> ta, tb;
    std::thread t1([&]() { ta = first.calibrationFor(tiny); });
    std::thread t2([&]() { tb = second.calibrationFor(tiny); });
    t1.join();
    t2.join();

    ASSERT_NE(ta, nullptr);
    ASSERT_NE(tb, nullptr);
    EXPECT_EQ(first.calibrationsComputed() +
                  second.calibrationsComputed(),
              1u)
        << "the sweep must run at most once between the two runners";

    // Both ended with the SAME calibration content: the waiter's
    // tables came from the holder's persisted entry.
    EXPECT_EQ(store::tablesDigest(*ta), store::tablesDigest(*tb));

    // A third, later runner starts fully warm.
    driver::BatchRunner third(opts);
    auto tc = third.calibrationFor(tiny);
    ASSERT_NE(tc, nullptr);
    EXPECT_EQ(third.calibrationsComputed(), 0u);
    EXPECT_EQ(store::tablesDigest(*tc), store::tablesDigest(*ta));
}

// --- Profile / timing in-flight leases (the generalized mechanism) ------

TEST(ProfileLease, ExactlyOneProcessHoldsAFreshLease)
{
    const std::string dir = freshDir("profile-lease");
    store::ProfileStore a(dir);
    store::ProfileStore b(dir);
    funcsim::ProfileKey key;
    key.kernelHash = 0xabcdef;
    key.inputHash = 42;

    EXPECT_FALSE(a.leaseHeld(key));
    store::Lease held = a.tryAcquireLease(key);
    ASSERT_TRUE(held.held());
    EXPECT_TRUE(b.leaseHeld(key))
        << "the marker must be visible through any store object";
    store::Lease lost = b.tryAcquireLease(key);
    EXPECT_FALSE(lost.held());

    // A DIFFERENT key's lease is independent.
    funcsim::ProfileKey other = key;
    other.inputHash = 43;
    store::Lease independent = b.tryAcquireLease(other);
    EXPECT_TRUE(independent.held());

    held.release();
    EXPECT_FALSE(b.leaseHeld(key));
    store::Lease second = b.tryAcquireLease(key);
    EXPECT_TRUE(second.held()) << "released leases are re-acquirable";
}

TEST(ProfileLease, StaleLeasesAreBrokenAndRetaken)
{
    const std::string dir = freshDir("profile-lease-stale");
    ASSERT_TRUE(store::makeDirs(dir));
    store::ProfileStore store(dir);
    funcsim::ProfileKey key;
    key.kernelHash = 7;

    const std::string lease_path =
        dir + "/" + store::fileStem("profile", key.str()) + ".lease";
    {
        std::ofstream marker(lease_path);
        marker << 999999999 << " " << 1 << "\n"; // dead pid, ancient
    }
    EXPECT_FALSE(store.leaseHeld(key));
    store::Lease stolen = store.tryAcquireLease(key);
    EXPECT_TRUE(stolen.held());
    stolen.release();

    // A live-pid lease ages out under a shrunk threshold.
    const auto one_minute_ago =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count() -
        60'000;
    {
        std::ofstream marker(lease_path);
        marker << ::getpid() << " " << one_minute_ago << "\n";
    }
    EXPECT_TRUE(store.leaseHeld(key));
    store.setLeaseStaleAfter(std::chrono::milliseconds(10));
    EXPECT_FALSE(store.leaseHeld(key));
    store::Lease aged = store.tryAcquireLease(key);
    EXPECT_TRUE(aged.held());
}

TEST(TimingLease, KeyedByProfileKeyAndTimingFingerprint)
{
    const std::string dir = freshDir("timing-lease");
    store::TimingStore store(dir);
    funcsim::ProfileKey key;
    key.kernelHash = 11;
    const arch::TimingFingerprint fp =
        arch::TimingFingerprint::of(arch::GpuSpec::gtx285());
    const arch::TimingFingerprint fp2 =
        arch::TimingFingerprint::of(arch::GpuSpec::gtx285MoreBlocks());

    store::Lease held = store.tryAcquireLease(key, fp);
    ASSERT_TRUE(held.held());
    EXPECT_TRUE(store.leaseHeld(key, fp));
    EXPECT_FALSE(store.tryAcquireLease(key, fp).held());
    // The same profile under another timing fingerprint is another
    // replay — its lease is independent.
    EXPECT_TRUE(store.tryAcquireLease(key, fp2).held());

    held.release();
    EXPECT_FALSE(store.leaseHeld(key, fp));
}

TEST(ProfileLease, ConcurrentRunnersSplitTheFuncsim)
{
    // Two runners sharing one storeDir — stand-ins for two sharded
    // processes — profile the same case concurrently: the lease must
    // hand the functional simulation to exactly one of them, the
    // other waits and loads the published entry. Pinned on the
    // runners' funcsimsComputed counter, not on timing.
    const std::string dir = freshDir("profile-lease-split");
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    const auto kc = driver::makeSaxpyCase("lease-saxpy", 8, 128, 2.0f);

    driver::BatchRunner::Options opts;
    opts.numThreads = 1;
    opts.storeDir = dir;
    driver::BatchRunner first(opts);
    driver::BatchRunner second(opts);

    std::shared_ptr<const funcsim::KernelProfile> pa, pb;
    std::thread t1([&]() { pa = first.profileFor(kc, spec); });
    std::thread t2([&]() { pb = second.profileFor(kc, spec); });
    t1.join();
    t2.join();

    ASSERT_NE(pa, nullptr);
    ASSERT_NE(pb, nullptr);
    EXPECT_EQ(pa->key, pb->key);
    EXPECT_EQ(first.funcsimsComputed() + second.funcsimsComputed(),
              1u)
        << "the funcsim must run at most once between the runners";

    // A third, later runner starts fully warm.
    driver::BatchRunner third(opts);
    auto pc = third.profileFor(kc, spec);
    ASSERT_NE(pc, nullptr);
    EXPECT_EQ(third.funcsimsComputed(), 0u);
}

TEST(TimingLease, ConcurrentRunnersSplitTheReplay)
{
    const std::string dir = freshDir("timing-lease-split");
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    const auto kc = driver::makeSaxpyCase("lease-saxpy-t", 8, 128,
                                          2.0f);

    driver::BatchRunner::Options opts;
    opts.numThreads = 1;
    opts.storeDir = dir;
    driver::BatchRunner first(opts);
    driver::BatchRunner second(opts);
    const auto profile = first.profileFor(kc, spec);
    ASSERT_NE(profile, nullptr);

    std::shared_ptr<const timing::TimingResult> ta, tb;
    std::thread t1([&]() { ta = first.timingFor(profile, spec); });
    std::thread t2([&]() { tb = second.timingFor(profile, spec); });
    t1.join();
    t2.join();

    ASSERT_NE(ta, nullptr);
    ASSERT_NE(tb, nullptr);
    // Both sides produced the identical replay (bit-exact seconds),
    // and at most one of them actually ran it.
    EXPECT_EQ(ta->seconds, tb->seconds);
    EXPECT_EQ(ta->cycles, tb->cycles);
    EXPECT_EQ(first.timingsComputed() + second.timingsComputed(), 1u)
        << "the replay must run at most once between the runners";

    driver::BatchRunner third(opts);
    auto tc = third.timingFor(profile, spec);
    ASSERT_NE(tc, nullptr);
    EXPECT_EQ(third.timingsComputed(), 0u);
    EXPECT_EQ(tc->seconds, ta->seconds);
}

} // namespace
} // namespace gpuperf
