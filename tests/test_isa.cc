/**
 * @file
 * ISA tests: opcode metadata, kernel structural validation, builder
 * resource accounting, disassembly, and trace hashing/deduplication.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "funcsim/trace.h"
#include "isa/builder.h"
#include "isa/disasm.h"

namespace gpuperf {
namespace isa {
namespace {

TEST(Opcodes, ClassificationPredicates)
{
    EXPECT_TRUE(isMemory(Opcode::kLds));
    EXPECT_TRUE(isMemory(Opcode::kLdt));
    EXPECT_FALSE(isMemory(Opcode::kFmad));
    EXPECT_FALSE(isMemory(Opcode::kFmadS));  // modeled as arith+shared
    EXPECT_TRUE(isSharedMem(Opcode::kSts));
    EXPECT_FALSE(isSharedMem(Opcode::kStg));
    EXPECT_TRUE(isGlobalMem(Opcode::kLdg));
    EXPECT_TRUE(isControl(Opcode::kBar));
    EXPECT_FALSE(isControl(Opcode::kMov));
    EXPECT_TRUE(writesRegister(Opcode::kLds));
    EXPECT_FALSE(writesRegister(Opcode::kSts));
    EXPECT_FALSE(writesRegister(Opcode::kSetpI));
    EXPECT_TRUE(writesPredicate(Opcode::kSetpF));
}

TEST(Opcodes, Table1Mapping)
{
    EXPECT_EQ(instrTypeOf(Opcode::kFmul), arch::InstrType::TypeI);
    EXPECT_EQ(instrTypeOf(Opcode::kFmad), arch::InstrType::TypeII);
    EXPECT_EQ(instrTypeOf(Opcode::kFmadS), arch::InstrType::TypeII);
    EXPECT_EQ(instrTypeOf(Opcode::kMov), arch::InstrType::TypeII);
    EXPECT_EQ(instrTypeOf(Opcode::kRcp), arch::InstrType::TypeIII);
    EXPECT_EQ(instrTypeOf(Opcode::kSin), arch::InstrType::TypeIII);
    EXPECT_EQ(instrTypeOf(Opcode::kDfma), arch::InstrType::TypeIV);
    // Materialized control flow costs a type II slot.
    EXPECT_EQ(instrTypeOf(Opcode::kBrk), arch::InstrType::TypeII);
}

TEST(Opcodes, DynamicCostOfReconvergenceMarkersIsZero)
{
    EXPECT_EQ(dynamicCost(Opcode::kEndif), 0);
    EXPECT_EQ(dynamicCost(Opcode::kLoop), 0);
    EXPECT_EQ(dynamicCost(Opcode::kExit), 0);
    EXPECT_EQ(dynamicCost(Opcode::kIf), 1);
    EXPECT_EQ(dynamicCost(Opcode::kEndloop), 1);
    EXPECT_EQ(dynamicCost(Opcode::kBar), 1);
}

TEST(Builder, TracksRegistersAndPredicates)
{
    KernelBuilder b("regs");
    Reg r0 = b.reg();
    Reg r1 = b.regRange(4);
    Pred p = b.pred();
    EXPECT_EQ(r0, 0);
    EXPECT_EQ(r1, 1);
    EXPECT_EQ(p, 0);
    b.movImm(r0, 1);
    Kernel k = b.build(128);
    EXPECT_EQ(k.numRegisters(), 5);
    EXPECT_EQ(k.sharedBytes(), 128);
}

TEST(Builder, AppendsExit)
{
    KernelBuilder b("exit");
    Reg r = b.reg();
    b.movImm(r, 1);
    Kernel k = b.build();
    EXPECT_EQ(k.instructions().back().op, Opcode::kExit);
    EXPECT_EQ(k.countStatic(Opcode::kMovImm), 1);
}

TEST(Kernel, MatchTablesForNestedStructures)
{
    KernelBuilder b("nest");
    Reg r = b.reg();
    Pred p = b.pred();
    b.movImm(r, 0);                    // 0
    b.setpIImm(p, CmpOp::kLt, r, 5);   // 1
    b.beginIf(p);                      // 2
    b.beginLoop();                     // 3
    b.brk(p);                          // 4
    b.iaddImm(r, r, 1);                // 5
    b.endLoop();                       // 6
    b.beginElse();                     // 7
    b.movImm(r, 9);                    // 8
    b.endIf();                         // 9
    Kernel k = b.build();
    EXPECT_EQ(k.elseOf(2), 7);
    EXPECT_EQ(k.endifOf(2), 9);
    EXPECT_EQ(k.endifOf(7), 9);
    EXPECT_EQ(k.endloopOf(3), 6);
    EXPECT_EQ(k.endloopOf(4), 6);  // BRK resolves to its loop's end
    EXPECT_EQ(k.loopOf(6), 3);
}

TEST(KernelDeath, UnmatchedIf)
{
    KernelBuilder b("bad");
    Reg r = b.reg();
    Pred p = b.pred();
    b.setpIImm(p, CmpOp::kLt, r, 1);
    b.beginIf(p);
    EXPECT_EXIT(b.build(), ::testing::ExitedWithCode(1), "unterminated");
}

TEST(KernelDeath, ElseWithoutIf)
{
    KernelBuilder b("bad");
    b.beginElse();
    EXPECT_EXIT(b.build(), ::testing::ExitedWithCode(1), "without open");
}

TEST(KernelDeath, BrkInsideIfRejected)
{
    // BRK must be an immediate child of a LOOP.
    KernelBuilder b("bad");
    Reg r = b.reg();
    Pred p = b.pred();
    b.setpIImm(p, CmpOp::kLt, r, 1);
    b.beginLoop();
    b.beginIf(p);
    b.brk(p);
    b.endIf();
    b.endLoop();
    EXPECT_EXIT(b.build(), ::testing::ExitedWithCode(1),
                "directly inside a LOOP");
}

TEST(KernelDeath, RegisterOutOfRange)
{
    std::vector<Instruction> instrs(1);
    instrs[0].op = Opcode::kMov;
    instrs[0].dst = 5;          // beyond the declared register count
    instrs[0].src[0] = 0;
    EXPECT_EXIT(Kernel("bad", instrs, 2, 1, 0),
                ::testing::ExitedWithCode(1), "out of range");
}

TEST(Disasm, RendersRepresentativeInstructions)
{
    KernelBuilder b("dis");
    Reg a = b.reg();
    Reg c = b.reg();
    Reg d = b.reg();
    Pred p = b.pred();
    b.fmad(d, a, c, d);
    b.fmadShared(d, a, c, 16, d);
    b.lds(a, c, 8);
    b.stg(c, d, 4);
    b.setpIImm(p, CmpOp::kGe, a, 10);
    b.beginIf(p);
    b.endIf();
    Kernel k = b.build();

    const auto &ins = k.instructions();
    EXPECT_EQ(disassemble(ins[0]), "mad $r2, $r0, $r1, $r2");
    EXPECT_EQ(disassemble(ins[1]), "mad.s $r2, $r0, smem[$r1+16], $r2");
    EXPECT_EQ(disassemble(ins[2]), "lds $r0, smem[$r1+8]");
    EXPECT_EQ(disassemble(ins[3]), "stg gmem[$r1+4], $r2");
    EXPECT_EQ(disassemble(ins[4]), "setp.i.ge $p0, $r0, 10");
    EXPECT_EQ(disassemble(ins[5]), "@$p0 if");

    std::ostringstream os;
    disassemble(k, os);
    EXPECT_NE(os.str().find("// kernel dis"), std::string::npos);
}

TEST(Trace, HashAndEquality)
{
    funcsim::WarpTrace a;
    funcsim::TraceOp op;
    op.unit = UnitKind::kArithII;
    op.dst = 3;
    a.ops.push_back(op);
    funcsim::WarpTrace b = a;
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_TRUE(a == b);
    b.ops[0].conflict = 4;
    EXPECT_FALSE(a == b);
    funcsim::WarpTrace c = a;
    c.ops[0].sharedPasses = 2;
    EXPECT_FALSE(a == c);
    EXPECT_NE(a.hash(), c.hash());
}

TEST(Trace, InternDeduplicates)
{
    funcsim::LaunchTrace lt;
    funcsim::WarpTrace a;
    funcsim::TraceOp op;
    op.unit = UnitKind::kSharedMem;
    a.ops.push_back(op);
    funcsim::WarpTrace b = a;
    funcsim::WarpTrace c = a;
    c.ops[0].conflict = 7;
    EXPECT_EQ(lt.intern(std::move(a)), 0);
    EXPECT_EQ(lt.intern(std::move(b)), 0);
    EXPECT_EQ(lt.intern(std::move(c)), 1);
    EXPECT_EQ(lt.pool.size(), 2u);
}

} // namespace
} // namespace isa
} // namespace gpuperf
