/**
 * @file
 * Store lifecycle tests (src/store/lifecycle/): corrupt entries read
 * as misses and are quarantined by the verifier, never crash a
 * reader; GC evicts to its size/age budget in LRU order without ever
 * touching a leased or in-flight entry; compaction folds loose
 * entries into segments that every store reads through transparently
 * (warm runs over a compacted store stay bit-identical); and the
 * janitors (GC + compactor + verifier) racing a live batch leave its
 * response bit-identical to an undisturbed run.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>
#include <utime.h>

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "api/codecs.h"
#include "api/endpoint.h"
#include "api/request.h"
#include "api/server.h"
#include "api/service.h"
#include "driver/demo_cases.h"
#include "model/session.h"
#include "store/lifecycle/compactor.h"
#include "store/lifecycle/gc.h"
#include "store/lifecycle/lifecycle.h"
#include "store/lifecycle/segment.h"
#include "store/lifecycle/verifier.h"
#include "store/profile_store.h"
#include "store/serializer.h"
#include "store/stats.h"

namespace gpuperf {
namespace {

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + "gpuperf-lc-" +
                            name + "-" + std::to_string(::getpid());
    // Process-unique roots; a rerun in the same process reuses them,
    // so tests scrub their own root first.
    (void)std::system(("rm -rf " + dir).c_str());
    return dir;
}

std::string
readWhole(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::string s((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
    return s;
}

bool
writeWhole(const std::string &path, const std::string &data)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    return static_cast<bool>(out);
}

bool
fileExists(const std::string &path)
{
    struct stat st;
    return ::stat(path.c_str(), &st) == 0;
}

void
backdateMtime(const std::string &path, int64_t seconds_ago)
{
    struct utimbuf times;
    times.actime = ::time(nullptr) - seconds_ago;
    times.modtime = times.actime;
    ASSERT_EQ(::utime(path.c_str(), &times), 0) << path;
}

constexpr uint32_t kTestVersion = 7;

/** A store root with one "profiles" subdir of synthetic entries. */
std::string
syntheticRoot(const std::string &name, int entries,
              size_t payload_bytes, std::vector<std::string> *names)
{
    const std::string root = freshDir(name);
    const std::string dir = root + "/profiles";
    EXPECT_TRUE(store::makeDirs(dir));
    for (int i = 0; i < entries; ++i) {
        const std::string entry =
            "entry-" + std::to_string(i) + ".profile";
        const std::string payload(payload_bytes,
                                  static_cast<char>('a' + i % 26));
        EXPECT_TRUE(store::writeEntryFile(dir + "/" + entry,
                                          kTestVersion,
                                          "key-" + std::to_string(i),
                                          payload));
        if (names)
            names->push_back(entry);
    }
    return root;
}

// --- File-kind classification and checksum framing --------------------

TEST(Lifecycle, ClassifiesEveryStoreCitizen)
{
    for (const char *entry :
         {"a.profile", "a.calibration", "a.bench", "a.timing", "a.obs",
          "a.result"})
        EXPECT_TRUE(store::isEntryFileName(entry)) << entry;
    EXPECT_FALSE(store::isEntryFileName("a.lease"));
    EXPECT_FALSE(store::isEntryFileName("a.profile.tmp.123.4"))
        << "in-flight temp files are not entries";
    EXPECT_FALSE(store::isEntryFileName("pack-0001-2-3.seg"));

    EXPECT_TRUE(store::isTempFileName("a.profile.tmp.123.4"));
    EXPECT_FALSE(store::isTempFileName("a.profile"));

    EXPECT_TRUE(store::isLeaseFileName("a.lease"));
    EXPECT_TRUE(store::isLeaseFileName("compact.lease"));
    EXPECT_EQ(store::leaseNameFor("saxpy-0123.profile"),
              "saxpy-0123.lease");
    EXPECT_EQ(store::leaseNameFor("ewma-0123.obs"), "ewma-0123.lease");
}

TEST(Checksum, LegacyTrailerlessEntriesStayReadable)
{
    const std::string root = freshDir("legacy");
    ASSERT_TRUE(store::makeDirs(root));
    const std::string path = root + "/legacy.profile";

    // The pre-checksum format: magic + version + key + payload, no
    // trailer. Old stores on shared disks still hold these.
    store::ByteWriter w;
    w.u64(0x53465245'50555047ull);
    w.u32(kTestVersion);
    w.str("legacy-key");
    const std::string payload = "legacy payload bytes";
    w.u64(payload.size());
    ASSERT_TRUE(writeWhole(path, w.bytes() + payload));

    std::string got;
    EXPECT_TRUE(store::readEntryFile(path, kTestVersion, "legacy-key",
                                     &got));
    EXPECT_EQ(got, payload);
    EXPECT_TRUE(store::readEntryHeader(path, kTestVersion,
                                       "legacy-key"));
}

TEST(Checksum, TrailerCatchesSilentPayloadCorruption)
{
    const std::string root = freshDir("bitflip");
    ASSERT_TRUE(store::makeDirs(root));
    const std::string path = root + "/entry.profile";
    const std::string payload(256, 'x');
    ASSERT_TRUE(store::writeEntryFile(path, kTestVersion, "k",
                                      payload));

    // Flip one payload bit on disk. Every length still matches, so
    // only the checksum trailer can catch it.
    std::string bytes = readWhole(path);
    ASSERT_GT(bytes.size(), store::kChecksumTrailerBytes + 32);
    bytes[bytes.size() - store::kChecksumTrailerBytes - 8] ^= 0x01;
    ASSERT_TRUE(writeWhole(path, bytes));

    std::string got;
    EXPECT_FALSE(store::readEntryFile(path, kTestVersion, "k", &got))
        << "a bit-flipped payload must read as a miss, not as data";
}

// --- Corruption injection: reads degrade, verify quarantines ----------

TEST(Verifier, QuarantinesEveryCorruptionShapeAndKeepsValidEntries)
{
    const std::string root = freshDir("verify");
    const std::string dir = root + "/profiles";
    ASSERT_TRUE(store::makeDirs(dir));

    const std::string payload(512, 'p');
    ASSERT_TRUE(store::writeEntryFile(dir + "/good.profile",
                                      kTestVersion, "good", payload));

    // Four corruption shapes, all with entry suffixes so readers and
    // the verifier actually consider them.
    ASSERT_TRUE(writeWhole(dir + "/zero.profile", ""));
    ASSERT_TRUE(writeWhole(dir + "/magic.result",
                           std::string(64, 'Z')));
    const std::string good_bytes =
        readWhole(dir + "/good.profile");
    ASSERT_TRUE(writeWhole(dir + "/trunc.timing",
                           good_bytes.substr(0, good_bytes.size() / 2)));
    std::string flipped = good_bytes;
    flipped[flipped.size() - store::kChecksumTrailerBytes - 5] ^= 0x40;
    ASSERT_TRUE(writeWhole(dir + "/flip.obs", flipped));

    // Every corrupt shape is a miss for a reader, never an abort.
    for (const char *name :
         {"zero.profile", "magic.result", "trunc.timing", "flip.obs"}) {
        std::string got;
        EXPECT_FALSE(store::readStoreEntry(dir, name, kTestVersion,
                                           "good", &got))
            << name;
    }

    const store::VerifyReport report = store::runVerify(root, {});
    EXPECT_TRUE(report.ok);
    EXPECT_FALSE(report.clean());
    EXPECT_EQ(report.corruptEntries, 4u);
    EXPECT_EQ(report.quarantined, 4u);

    // The valid entry survives in place; the corpses moved aside.
    std::string got;
    EXPECT_TRUE(store::readStoreEntry(dir, "good.profile",
                                      kTestVersion, "good", &got));
    EXPECT_EQ(got, payload);
    for (const char *name :
         {"zero.profile", "magic.result", "trunc.timing", "flip.obs"}) {
        EXPECT_FALSE(fileExists(dir + "/" + name)) << name;
        EXPECT_TRUE(fileExists(dir + "/" +
                               store::kQuarantineDirName + "/" + name))
            << name;
    }

    // A second scan of the repaired store is clean.
    const store::VerifyReport again = store::runVerify(root, {});
    EXPECT_TRUE(again.clean());
    EXPECT_EQ(again.scannedEntries, 1u);
}

TEST(Verifier, SweepsStaleTempsAndLeasesButSparesFreshOnes)
{
    const std::string root = freshDir("sweep");
    const std::string dir = root + "/timing";
    ASSERT_TRUE(store::makeDirs(dir));

    // A dead writer's temp (old) and a live writer's temp (fresh).
    ASSERT_TRUE(writeWhole(dir + "/a.obs.tmp.999.0", "orphan"));
    backdateMtime(dir + "/a.obs.tmp.999.0", 3600);
    ASSERT_TRUE(writeWhole(dir + "/b.obs.tmp.999.1", "in-flight"));

    // A stale lease (hostname-less, governed by age alone) and a
    // fresh one.
    ASSERT_TRUE(writeWhole(dir + "/stale.lease", "999 1 \n"));
    const store::Lease fresh =
        store::tryAcquireLease(dir + "/fresh.lease");
    ASSERT_TRUE(fresh.held());

    const store::VerifyReport report = store::runVerify(root, {});
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.staleTemps, 1u);
    EXPECT_EQ(report.staleLeases, 1u);
    EXPECT_FALSE(fileExists(dir + "/a.obs.tmp.999.0"));
    EXPECT_TRUE(fileExists(dir + "/b.obs.tmp.999.1"))
        << "a fresh temp belongs to a live writer";
    EXPECT_FALSE(fileExists(dir + "/stale.lease"));
    EXPECT_TRUE(fileExists(dir + "/fresh.lease"));
}

// --- GC: budget, LRU order, lease- and age-protection -----------------

TEST(Gc, EvictsLeastRecentlyUsedToTheByteBudget)
{
    std::vector<std::string> names;
    const std::string root =
        syntheticRoot("gc-budget", 8, 1000, &names);
    const std::string dir = root + "/profiles";
    const uint64_t per_entry =
        store::fileSizeOf(dir + "/" + names[0]);

    // Ages 80..10 minutes: entry-0 oldest, entry-7 newest.
    for (int i = 0; i < 8; ++i)
        backdateMtime(dir + "/" + names[i], (8 - i) * 600);

    store::GcOptions opts;
    opts.maxBytes = per_entry * 3;
    opts.minAgeMs = 0;
    const store::GcReport report = store::runGc(root, opts);
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.evicted, 5u);
    EXPECT_LE(report.liveBytesAfter, opts.maxBytes);

    // LRU: the three NEWEST survive.
    for (int i = 0; i < 5; ++i)
        EXPECT_FALSE(fileExists(dir + "/" + names[i])) << names[i];
    for (int i = 5; i < 8; ++i)
        EXPECT_TRUE(fileExists(dir + "/" + names[i])) << names[i];
}

TEST(Gc, NeverEvictsLeasedOrYoungEntriesEvenOverBudget)
{
    std::vector<std::string> names;
    const std::string root =
        syntheticRoot("gc-lease", 4, 1000, &names);
    const std::string dir = root + "/profiles";

    // All old enough to evict — but entry-0 is leased (in flight)
    // and entry-1 is younger than the min-age guard.
    for (int i = 0; i < 4; ++i)
        backdateMtime(dir + "/" + names[i], 3600);
    const store::Lease held = store::tryAcquireLease(
        dir + "/" + store::leaseNameFor(names[0]));
    ASSERT_TRUE(held.held());
    backdateMtime(dir + "/" + names[1], 10);

    store::GcOptions opts;
    opts.maxBytes = 1; // evict everything evictable
    opts.minAgeMs = 60 * 1000;
    const store::GcReport report = store::runGc(root, opts);
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.keptLeased, 1u);
    EXPECT_EQ(report.keptYoung, 1u);
    EXPECT_EQ(report.evicted, 2u);
    EXPECT_TRUE(fileExists(dir + "/" + names[0]))
        << "a leased entry must never be evicted";
    EXPECT_TRUE(fileExists(dir + "/" + names[1]))
        << "an entry under the min-age guard must never be evicted";
}

TEST(Gc, DryRunReportsWithoutTouchingAnything)
{
    std::vector<std::string> names;
    const std::string root = syntheticRoot("gc-dry", 4, 1000, &names);
    const std::string dir = root + "/profiles";
    for (const std::string &n : names)
        backdateMtime(dir + "/" + n, 3600);

    store::GcOptions opts;
    opts.maxBytes = 1;
    opts.minAgeMs = 0;
    opts.dryRun = true;
    const store::GcReport report = store::runGc(root, opts);
    EXPECT_EQ(report.evicted, 4u);
    for (const std::string &n : names)
        EXPECT_TRUE(fileExists(dir + "/" + n)) << n;
}

TEST(Gc, AccessIndexBeatsMtimeForRecency)
{
    std::vector<std::string> names;
    const std::string root =
        syntheticRoot("gc-access", 2, 1000, &names);
    const std::string dir = root + "/profiles";
    // entry-0 has the OLDER mtime but was just read; entry-1 looks
    // newer on disk but is cold. LRU must trust the access index.
    backdateMtime(dir + "/" + names[0], 7200);
    backdateMtime(dir + "/" + names[1], 3600);
    store::recordAccess(dir, names[0]);
    store::flushAccessIndexes();

    store::GcOptions opts;
    opts.maxBytes = store::fileSizeOf(dir + "/" + names[0]);
    opts.minAgeMs = 0;
    const store::GcReport report = store::runGc(root, opts);
    EXPECT_EQ(report.evicted, 1u);
    EXPECT_TRUE(fileExists(dir + "/" + names[0]))
        << "the just-read entry must survive";
    EXPECT_FALSE(fileExists(dir + "/" + names[1]));
}

TEST(Gc, AgeBoundEvictsIdleEntriesOnly)
{
    std::vector<std::string> names;
    const std::string root = syntheticRoot("gc-age", 3, 1000, &names);
    const std::string dir = root + "/profiles";
    backdateMtime(dir + "/" + names[0], 7200);
    backdateMtime(dir + "/" + names[1], 7200);
    // names[2] keeps its fresh mtime.

    store::GcOptions opts;
    opts.maxAgeMs = 3600 * 1000;
    opts.minAgeMs = 0;
    const store::GcReport report = store::runGc(root, opts);
    EXPECT_EQ(report.evicted, 2u);
    EXPECT_TRUE(fileExists(dir + "/" + names[2]));
}

// --- Compaction: segments served transparently ------------------------

TEST(Compactor, FoldsLooseEntriesIntoASegmentServedTransparently)
{
    std::vector<std::string> names;
    const std::string root =
        syntheticRoot("compact", 10, 300, &names);
    const std::string dir = root + "/profiles";

    store::CompactOptions opts;
    opts.force = true;
    opts.minAgeMs = 0;
    const store::CompactReport report = store::runCompact(root, opts);
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.foldedEntries, 10u);
    EXPECT_EQ(report.segmentsWritten, 1u);
    EXPECT_EQ(store::listSegmentFiles(dir).size(), 1u);

    // Loose files are gone; every entry still reads, byte for byte.
    for (int i = 0; i < 10; ++i) {
        EXPECT_FALSE(fileExists(dir + "/" + names[i]));
        std::string payload;
        ASSERT_TRUE(store::readStoreEntry(dir, names[i], kTestVersion,
                                          "key-" + std::to_string(i),
                                          &payload))
            << names[i];
        EXPECT_EQ(payload,
                  std::string(300, static_cast<char>('a' + i % 26)));
        EXPECT_TRUE(store::storeEntryExists(dir, names[i],
                                            kTestVersion,
                                            "key-" + std::to_string(i)));
    }
}

TEST(Compactor, LooseRewriteShadowsItsSegmentSlice)
{
    std::vector<std::string> names;
    const std::string root = syntheticRoot("shadow", 4, 100, &names);
    const std::string dir = root + "/profiles";
    store::CompactOptions opts;
    opts.force = true;
    opts.minAgeMs = 0;
    ASSERT_TRUE(store::runCompact(root, opts).ok);

    // Republished after the fold (an .obs merge, a newer profile):
    // the loose file must win over the stale slice.
    ASSERT_TRUE(store::writeEntryFile(dir + "/" + names[2],
                                      kTestVersion, "key-2",
                                      "fresher payload"));
    std::string payload;
    ASSERT_TRUE(store::readStoreEntry(dir, names[2], kTestVersion,
                                      "key-2", &payload));
    EXPECT_EQ(payload, "fresher payload");

    // The next compaction folds the rewrite forward and the segment
    // keeps serving the fresher bytes.
    ASSERT_TRUE(store::runCompact(root, opts).ok);
    EXPECT_EQ(store::listSegmentFiles(dir).size(), 1u);
    payload.clear();
    ASSERT_TRUE(store::readStoreEntry(dir, names[2], kTestVersion,
                                      "key-2", &payload));
    EXPECT_EQ(payload, "fresher payload");
}

TEST(Compactor, GcEvictsFromSegmentsViaRewrite)
{
    std::vector<std::string> names;
    const std::string root = syntheticRoot("seg-gc", 6, 500, &names);
    const std::string dir = root + "/profiles";
    for (const std::string &n : names)
        backdateMtime(dir + "/" + n, 3600);
    store::CompactOptions copts;
    copts.force = true;
    copts.minAgeMs = 0;
    ASSERT_TRUE(store::runCompact(root, copts).ok);

    store::GcOptions gopts;
    gopts.maxBytes = 1;
    gopts.minAgeMs = 0;
    const store::GcReport report = store::runGc(root, gopts);
    EXPECT_TRUE(report.ok);
    EXPECT_EQ(report.evicted, 6u);
    for (const std::string &n : names) {
        std::string payload;
        EXPECT_FALSE(store::readStoreEntry(
            dir, n, kTestVersion,
            "key-" + n.substr(6, n.find('.') - 6), &payload))
            << n;
    }
    const store::StoreUsage usage = store::scanStoreUsage(root);
    EXPECT_EQ(usage.entries(), 0u);
}

// --- The real stores over a compacted root ----------------------------

TEST(Compactor, ProfileStoreServesCompactedEntriesBitExactly)
{
    const std::string dir = freshDir("ps-compact") + "/profiles";
    auto kc = driver::makeStencil1dCase("stencil", 8, 128);
    auto launch = kc.make();
    model::SimulatedDevice dev(arch::GpuSpec::gtx285());
    auto profile = dev.profile(launch.kernel, launch.cfg, *launch.gmem);
    {
        store::ProfileStore ps(dir);
        ASSERT_TRUE(ps.save(*profile));
    }
    store::CompactOptions opts;
    opts.force = true;
    opts.minAgeMs = 0;
    // The store root is the PARENT of profiles/.
    const std::string root = dir.substr(0, dir.rfind('/'));
    ASSERT_TRUE(store::runCompact(root, opts).ok);
    ASSERT_EQ(store::listSegmentFiles(dir).size(), 1u);

    store::ProfileStore warm(dir);
    auto loaded = warm.load(profile->key);
    ASSERT_NE(loaded, nullptr)
        << "a compacted profile must load through the segment";
    EXPECT_EQ(warm.hits(), 1u);
    EXPECT_EQ(loaded->kernelName, profile->kernelName);
    EXPECT_EQ(loaded->trace.totalOps(), profile->trace.totalOps());
    EXPECT_GT(warm.stats().bytesRead, 0u);
}

// --- Full-batch acceptance: warm over compacted, racing janitors ------

arch::GpuSpec
tinySpec()
{
    arch::GpuSpec tiny = arch::GpuSpec::gtx285();
    tiny.name = "GTX tiny lifecycle";
    tiny.numSms = 3;
    tiny.maxWarpsPerSm = 8;
    tiny.maxThreadsPerSm = 256;
    tiny.maxThreadsPerBlock = 256;
    tiny.validate();
    return tiny;
}

model::CalibrationTables
fakeTables()
{
    model::CalibrationTables t;
    t.maxWarps = 32;
    t.bytesPerPass = 64;
    for (int type = 0; type < arch::kNumInstrTypes; ++type) {
        t.instrThroughput[type].assign(33, 0.0);
        for (int w = 1; w <= 32; ++w)
            t.instrThroughput[type][w] =
                1e10 * std::min(1.0, w / 8.0) + type * 0.125;
    }
    t.sharedPassThroughput.assign(33, 0.0);
    for (int w = 1; w <= 32; ++w)
        t.sharedPassThroughput[w] = 2e10 * std::min(1.0, w / 8.0);
    return t;
}

api::AnalysisRequest
lifecycleRequest(const std::string &store_dir)
{
    api::AnalysisRequest req;
    req.jobName = "lifecycle-batch";
    req.kernels.push_back(api::KernelJob::fromRef(
        "saxpy-small", api::CaseRef{"saxpy", {8, 128}, {2.0}}));
    req.kernels.push_back(api::KernelJob::fromRef(
        "conflicted",
        api::CaseRef{"shared-conflict", {8, 128, 8, 32}, {}}));
    req.kernels.push_back(api::KernelJob::fromRef(
        "hist", api::CaseRef{"histogram", {6, 128, 8, 4}, {}}));
    req.specs.push_back(tinySpec());
    req.sweep.noBankConflicts = true;
    req.sweep.warpsPerSm = {8.0};
    req.store.storeDir = store_dir;
    req.exec.numThreads = 2;
    return req;
}

void
adoptAll(api::AnalysisService &service, const api::AnalysisRequest &req)
{
    const auto tables =
        std::make_shared<const model::CalibrationTables>(fakeTables());
    for (const arch::GpuSpec &spec : req.specs)
        service.adoptCalibration(req, spec, tables);
}

TEST(Lifecycle, WarmRunOverCompactedStoreIsBitIdentical)
{
    const std::string root = freshDir("warm-compacted");
    api::AnalysisService service;
    const api::AnalysisRequest req = lifecycleRequest(root);
    adoptAll(service, req);
    const api::AnalysisResponse cold = service.run(req);
    for (const auto &cell : cold.cells)
        ASSERT_TRUE(cell.ok) << cell.error;

    // Compact EVERYTHING, then replay from a fresh process image.
    store::CompactOptions opts;
    opts.force = true;
    opts.minAgeMs = 0;
    const store::CompactReport report = store::runCompact(root, opts);
    ASSERT_TRUE(report.ok);
    ASSERT_GT(report.foldedEntries, 0u);

    service.reset();
    api::AnalysisService warm_service;
    adoptAll(warm_service, req);
    const api::AnalysisResponse warm = warm_service.run(req);
    std::string why;
    EXPECT_TRUE(api::responsesEqual(cold, warm, &why)) << why;

    // Every loose file was folded, so ANY warm hit was served
    // through a segment (cells come warm from the result store, so
    // the hits land there rather than in profiles).
    const store::StoreLayerStats stats = warm_service.storeStats();
    EXPECT_GT(stats.total().hits, 0u)
        << "the warm run must be served through the segments";
    EXPECT_GT(stats.total().bytesRead, 0u);
}

TEST(Lifecycle, JanitorsRacingALiveBatchStayBitIdentical)
{
    // The reference: an undisturbed run on its own store.
    const std::string ref_root = freshDir("race-ref");
    api::AnalysisService ref_service;
    const api::AnalysisRequest ref_req = lifecycleRequest(ref_root);
    adoptAll(ref_service, ref_req);
    const api::AnalysisResponse ref = ref_service.run(ref_req);

    // The contested store: GC under maximal byte pressure (the
    // min-age guard is the only protection for in-flight entries),
    // forced compaction, and a fixing verifier, all looping while
    // the batch runs.
    const std::string root = freshDir("race-live");
    std::atomic<bool> stop{false};
    std::thread janitor([&root, &stop] {
        store::GcOptions gc;
        gc.maxBytes = 1;
        store::CompactOptions compact;
        compact.force = true;
        compact.minAgeMs = 0;
        while (!stop.load()) {
            (void)store::runGc(root, gc);
            (void)store::runCompact(root, compact);
            (void)store::runVerify(root, {});
        }
    });

    api::AnalysisService service;
    const api::AnalysisRequest req = lifecycleRequest(root);
    adoptAll(service, req);
    const api::AnalysisResponse first = service.run(req);
    service.reset();
    adoptAll(service, req);
    const api::AnalysisResponse second = service.run(req);
    stop.store(true);
    janitor.join();

    std::string why;
    EXPECT_TRUE(api::responsesEqual(ref, first, &why))
        << "cold run raced by janitors: " << why;
    EXPECT_TRUE(api::responsesEqual(ref, second, &why))
        << "warm run raced by janitors: " << why;

    // The contested store must still verify clean afterwards.
    const store::VerifyReport report = store::runVerify(root, {});
    EXPECT_TRUE(report.clean());
}

// --- Telemetry plumbing -----------------------------------------------

TEST(StoreStats, ServiceAggregatesAcrossResetWithoutGoingBackwards)
{
    const std::string root = freshDir("stats");
    api::AnalysisService service;
    const api::AnalysisRequest req = lifecycleRequest(root);
    adoptAll(service, req);
    (void)service.run(req);

    const store::StoreLayerStats before = service.storeStats();
    EXPECT_GT(before.total().writes, 0u);

    // reset() retires every executor; its counters must fold into
    // the accumulator, not vanish.
    service.reset();
    const store::StoreLayerStats after = service.storeStats();
    EXPECT_GE(after.total().writes, before.total().writes);
    EXPECT_GE(after.total().hits + after.total().misses,
              before.total().hits + before.total().misses);
}

TEST(StoreStats, JsonCarriesEveryCounterAndTheLayerTotals)
{
    store::StoreStats s;
    s.hits = 3;
    s.leaseSteals = 1;
    const std::string json = store::storeStatsJson(s);
    EXPECT_NE(json.find("\"hits\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"lease_steals\": 1"), std::string::npos);

    store::StoreLayerStats layer;
    layer.profiles.hits = 2;
    layer.results.writes = 5;
    const std::string layer_json = store::storeLayerStatsJson(layer);
    for (const char *key :
         {"\"profiles\"", "\"calibrations\"", "\"timings\"",
          "\"results\"", "\"total\""})
        EXPECT_NE(layer_json.find(key), std::string::npos) << key;

    api::ServerStats stats;
    const std::string server_json = api::statsToJson(stats);
    EXPECT_NE(server_json.find("\"store\""), std::string::npos);
    EXPECT_NE(server_json.find("\"gc_runs\""), std::string::npos);
}

TEST(StoreStats, EndpointParsesGcOptionsIntoServerOptions)
{
    const api::Endpoint ep = api::Endpoint::parse(
        "unix:/tmp/x.sock?store=/tmp/s&gc-bytes=1048576&gc-age=7200&"
        "gc-interval=30",
        api::Endpoint::Role::kServer);
    EXPECT_EQ(ep.limits.gcBytes, 1048576u);
    EXPECT_EQ(ep.timeouts.gcAgeSeconds, 7200.0);
    EXPECT_EQ(ep.timeouts.gcIntervalSeconds, 30.0);

    const api::ServerOptions opts = api::serverOptionsFor({ep});
    EXPECT_EQ(opts.gcBytes, 1048576u);
    EXPECT_EQ(opts.gcAgeSeconds, 7200.0);
    EXPECT_EQ(opts.gcIntervalSeconds, 30.0);
    EXPECT_EQ(opts.forceStoreDir, "/tmp/s");

    EXPECT_THROW(api::Endpoint::parse("inproc:?gc-bytes=never"),
                 std::runtime_error)
        << "a non-numeric gc budget must fail fast";
}

} // namespace
} // namespace gpuperf
