/**
 * @file
 * Model-layer tests: calibration-table lookups, the info extractor,
 * the performance model's combination rules, the roofline baseline,
 * and the report metrics. Uses injected tables so no microbenchmark
 * sweep is needed.
 */

#include <gtest/gtest.h>

#include "model/extractor.h"
#include "model/perf_model.h"
#include "model/report.h"
#include "model/roofline.h"

namespace gpuperf {
namespace model {
namespace {

/** Hand-made tables: throughput proportional to warps, saturating. */
CalibrationTables
fakeTables()
{
    CalibrationTables t;
    t.maxWarps = 32;
    t.bytesPerPass = 64;
    for (int type = 0; type < arch::kNumInstrTypes; ++type) {
        t.instrThroughput[type].assign(33, 0.0);
        const double peak = 2e10 / (1 << type);  // type II = 1e10
        for (int w = 1; w <= 32; ++w) {
            t.instrThroughput[type][w] =
                peak * std::min(1.0, w / 6.0);
        }
    }
    t.sharedPassThroughput.assign(33, 0.0);
    for (int w = 1; w <= 32; ++w)
        t.sharedPassThroughput[w] = 2e10 * std::min(1.0, w / 10.0);
    return t;
}

TEST(CalibrationTables, LookupInterpolatesAndClamps)
{
    CalibrationTables t = fakeTables();
    EXPECT_DOUBLE_EQ(t.lookupInstr(arch::InstrType::TypeII, 3.0),
                     1e10 * 0.5);
    // Linear interpolation between 3 and 4 warps.
    EXPECT_NEAR(t.lookupInstr(arch::InstrType::TypeII, 3.5),
                1e10 * (3.5 / 6.0), 1e6);
    // Clamped below 1 and above maxWarps.
    EXPECT_DOUBLE_EQ(t.lookupInstr(arch::InstrType::TypeII, 0.2),
                     t.lookupInstr(arch::InstrType::TypeII, 1.0));
    EXPECT_DOUBLE_EQ(t.lookupInstr(arch::InstrType::TypeII, 99.0), 1e10);
    EXPECT_DOUBLE_EQ(t.sharedBandwidth(10.0), 2e10 * 64);
}

funcsim::DynamicStats
makeStats(int grid, int block_dim)
{
    funcsim::DynamicStats stats;
    stats.gridDim = grid;
    stats.blockDim = block_dim;
    stats.warpsPerBlock = block_dim / 32;
    funcsim::StageStats s;
    s.typeCounts[1] = 1000;
    s.madCount = 800;
    s.totalWarpInstrs = 1200;
    s.sharedTransactions = 400;
    s.sharedTransactionsIdeal = 200;
    s.sharedBytes = 400 * 64;
    s.globalTransactions = 300;
    s.globalBytes = 300 * 64;
    s.globalRequestBytes = 300 * 32;
    s.globalXactBySize[64] = 300;
    s.activeWarpsPerBlock = stats.warpsPerBlock;
    stats.stages.push_back(s);
    return stats;
}

TEST(InfoExtractor, ComputesConcurrencyAndSerialization)
{
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    InfoExtractor ex(spec);
    arch::KernelResources res{16, 1024, 128};

    // Plenty of blocks: residency-limited concurrency, overlapped.
    ModelInput many = ex.extract(makeStats(600, 128), res);
    EXPECT_GT(many.concurrentBlocksPerSm, 1);
    EXPECT_FALSE(many.stagesSerialized);

    // A single block per SM by shared-memory usage: serialized.
    arch::KernelResources fat{16, 10240, 256};
    ModelInput one = ex.extract(makeStats(600, 256), fat);
    EXPECT_EQ(one.concurrentBlocksPerSm, 1);
    EXPECT_TRUE(one.stagesSerialized);

    // A grid smaller than the machine also caps concurrency.
    ModelInput small = ex.extract(makeStats(30, 128), res);
    EXPECT_EQ(small.concurrentBlocksPerSm, 1);
}

TEST(InfoExtractor, Effective64TransactionsWeighSizes)
{
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    InfoExtractor ex(spec);
    arch::KernelResources res{16, 0, 128};

    funcsim::DynamicStats stats = makeStats(600, 128);
    ModelInput a = ex.extract(stats, res);
    // 300 transactions of 64 B are exactly 300 effective units.
    EXPECT_NEAR(a.stages[0].effective64Xacts, 300.0, 1e-9);

    // The same byte volume in 32 B transactions costs more than half
    // (per-transaction overhead) but less than the same count of 64 B.
    stats.stages[0].globalXactBySize.clear();
    stats.stages[0].globalXactBySize[32] = 600;
    ModelInput b = ex.extract(stats, res);
    EXPECT_GT(b.stages[0].effective64Xacts, 300.0);
    EXPECT_LT(b.stages[0].effective64Xacts, 600.0);
}

TEST(InfoExtractor, ActiveWarpsScaleWithResidentBlocks)
{
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    InfoExtractor ex(spec);
    arch::KernelResources res{10, 512, 64};  // 8 blocks resident
    ModelInput input = ex.extract(makeStats(600, 64), res);
    EXPECT_NEAR(input.stages[0].activeWarpsPerSm, 2.0 * 8, 1e-9);
}

class PerfModelTest : public ::testing::Test
{
  protected:
    PerfModelTest()
        : device_(arch::GpuSpec::gtx285()), calibrator_(device_)
    {
        calibrator_.setTablesForTesting(fakeTables());
    }

    SimulatedDevice device_;
    Calibrator calibrator_;
};

TEST_F(PerfModelTest, LinearCombinationAndBottleneck)
{
    PerformanceModel model(calibrator_);
    ModelInput input;
    input.gridDim = 600;
    input.blockDim = 128;
    input.concurrentBlocksPerSm = 4;
    input.stagesSerialized = false;
    StageInput s;
    s.typeCounts[1] = 1'000'000;  // type II @ 1e10/s -> 0.1 ms
    s.sharedTransactions = 10'000'000;  // @ 2e10/s -> 0.5 ms
    s.activeWarpsPerSm = 16;
    input.stages.push_back(s);

    Prediction p = model.predict(input);
    EXPECT_NEAR(p.tInstrTotal, 1e-4, 1e-6);
    EXPECT_NEAR(p.tSharedTotal, 5e-4, 1e-6);
    EXPECT_EQ(p.bottleneck, Component::kShared);
    EXPECT_EQ(p.nextBottleneck, Component::kInstruction);
    EXPECT_NEAR(p.totalSeconds, 5e-4, 1e-6);
}

TEST_F(PerfModelTest, SerializedStagesSumTheirMaxima)
{
    PerformanceModel model(calibrator_);
    ModelInput input;
    input.gridDim = 30;
    input.blockDim = 256;
    input.concurrentBlocksPerSm = 1;
    input.stagesSerialized = true;

    // At 8 warps the fake tables give 1e10 type II instr/s and
    // 1.6e10 shared passes/s.
    StageInput s1;
    s1.typeCounts[1] = 2'000'000;       // 0.2 ms instruction
    s1.sharedTransactions = 1'000'000;  // 0.0625 ms shared
    s1.activeWarpsPerSm = 8;
    StageInput s2;
    s2.typeCounts[1] = 500'000;         // 0.05 ms instruction
    s2.sharedTransactions = 8'000'000;  // 0.5 ms shared
    s2.activeWarpsPerSm = 8;
    input.stages = {s1, s2};

    Prediction p = model.predict(input);
    // Serialized: max(0.2, 0.0625) + max(0.05, 0.5) = 0.7 ms.
    EXPECT_NEAR(p.totalSeconds, 7e-4, 2e-6);
    EXPECT_EQ(p.stages[0].bottleneck, Component::kInstruction);
    EXPECT_EQ(p.stages[1].bottleneck, Component::kShared);

    // Overlapped instead: max(0.25, 0.5625) = 0.5625 ms.
    input.stagesSerialized = false;
    Prediction q = model.predict(input);
    EXPECT_NEAR(q.totalSeconds, 5.625e-4, 2e-6);
    EXPECT_LE(q.totalSeconds, p.totalSeconds);
}

TEST_F(PerfModelTest, LowParallelismRaisesPredictedTimes)
{
    PerformanceModel model(calibrator_);
    ModelInput input;
    input.gridDim = 600;
    input.blockDim = 64;
    input.concurrentBlocksPerSm = 8;
    StageInput s;
    s.typeCounts[1] = 1'000'000;
    s.activeWarpsPerSm = 16;
    input.stages.push_back(s);
    const double fast = model.predict(input).totalSeconds;
    input.stages[0].activeWarpsPerSm = 3;  // half throughput in tables
    const double slow = model.predict(input).totalSeconds;
    EXPECT_NEAR(slow / fast, 2.0, 0.01);
}

TEST(Roofline, VerdictsMatchPaperExamples)
{
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    // GEMM-like: 400 GFLOPS sustained -> compute bound.
    RooflineAnalysis gemm =
        analyzeRoofline(spec, 4e11, 1.2e10, 1.0);
    EXPECT_EQ(gemm.verdict, RooflineVerdict::kComputeBound);
    // Streaming-like: 120 GB/s -> memory bound.
    RooflineAnalysis stream =
        analyzeRoofline(spec, 3e10, 1.2e11, 1.0);
    EXPECT_EQ(stream.verdict, RooflineVerdict::kMemoryBound);
    // CR-like: 6 GFLOPS, 7 GB/s -> unexplained (paper Section 5.2).
    RooflineAnalysis cr = analyzeRoofline(spec, 6e9, 7e9, 1.0);
    EXPECT_EQ(cr.verdict, RooflineVerdict::kUnexplained);
    EXPECT_LT(cr.computeFraction, 0.05);
    EXPECT_LT(cr.memoryFraction, 0.05);
}

TEST(RooflineDeath, RejectsNonPositiveTime)
{
    EXPECT_EXIT(analyzeRoofline(arch::GpuSpec::gtx285(), 1.0, 1.0, 0.0),
                ::testing::ExitedWithCode(1), "non-positive");
}

TEST(Report, MetricsFromStats)
{
    funcsim::DynamicStats stats = makeStats(600, 128);
    ReportMetrics m = computeMetrics(stats);
    EXPECT_NEAR(m.computationalDensity, 800.0 / 1200.0, 1e-9);
    EXPECT_NEAR(m.bankConflictFactor, 2.0, 1e-9);
    EXPECT_NEAR(m.coalescingEfficiency, 0.5, 1e-9);
    EXPECT_NEAR(m.avgActiveWarpsPerBlock, 4.0, 1e-9);
}

TEST(Report, RelativeError)
{
    EXPECT_NEAR(relativeError(1.1, 1.0), 0.1, 1e-12);
    EXPECT_NEAR(relativeError(0.9, 1.0), 0.1, 1e-12);
    EXPECT_DOUBLE_EQ(relativeError(5.0, 0.0), 0.0);
}

TEST(Report, PrintsWithoutCrashing)
{
    Prediction p;
    StagePrediction sp;
    sp.tInstr = 1e-3;
    sp.tShared = 2e-3;
    sp.bottleneck = Component::kShared;
    sp.stageTime = 2e-3;
    p.stages.push_back(sp);
    p.tInstrTotal = 1e-3;
    p.tSharedTotal = 2e-3;
    p.totalSeconds = 2e-3;
    p.bottleneck = Component::kShared;
    p.nextBottleneck = Component::kInstruction;
    std::ostringstream os;
    printPrediction(os, p);
    EXPECT_NE(os.str().find("shared memory"), std::string::npos);
}

TEST(Components, NamesAndAccessors)
{
    EXPECT_STREQ(componentName(Component::kInstruction),
                 "instruction pipeline");
    EXPECT_STREQ(componentName(Component::kGlobal), "global memory");
    StagePrediction sp;
    sp.tInstr = 1;
    sp.tShared = 2;
    sp.tGlobal = 3;
    EXPECT_DOUBLE_EQ(sp.component(Component::kInstruction), 1);
    EXPECT_DOUBLE_EQ(sp.component(Component::kShared), 2);
    EXPECT_DOUBLE_EQ(sp.component(Component::kGlobal), 3);
}

} // namespace
} // namespace model
} // namespace gpuperf
