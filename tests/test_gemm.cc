/**
 * @file
 * Dense matrix multiply: functional correctness against the CPU
 * reference, dynamic-count identities (MADs = N^3/warpSize), and the
 * Table 2 occupancy regimes.
 */

#include <gtest/gtest.h>

#include "apps/matmul/gemm.h"
#include "arch/occupancy.h"
#include "funcsim/interpreter.h"

namespace gpuperf {
namespace apps {
namespace {

arch::GpuSpec
spec()
{
    return arch::GpuSpec::gtx285();
}

class GemmTiles : public ::testing::TestWithParam<int> {};

TEST_P(GemmTiles, MatchesCpuReference)
{
    const int tile = GetParam();
    const int size = 128;
    funcsim::GlobalMemory gmem(16 << 20);
    GemmProblem p = makeGemmProblem(gmem, size, tile);
    isa::Kernel k = makeGemmKernel(p);
    funcsim::FunctionalSimulator sim(spec());
    sim.run(k, p.launch(), gmem);
    EXPECT_LT(gemmMaxError(gmem, p), 2e-4) << "tile " << tile;
}

TEST_P(GemmTiles, MadCountIsNCubedOverWarpSize)
{
    const int tile = GetParam();
    const int size = 128;
    funcsim::GlobalMemory gmem(16 << 20);
    GemmProblem p = makeGemmProblem(gmem, size, tile);
    isa::Kernel k = makeGemmKernel(p);
    funcsim::FunctionalSimulator sim(spec());
    auto res = sim.run(k, p.launch(), gmem);
    const uint64_t expect =
        static_cast<uint64_t>(size) * size * size / 32;
    EXPECT_EQ(res.stats.totalMads(), expect);
}

TEST_P(GemmTiles, SharedTrafficTracksMads)
{
    // Every MAD reads its B operand from shared memory (broadcast, so
    // two conflict-free passes per warp MAD) — plus the tile stores.
    const int tile = GetParam();
    const int size = 128;
    funcsim::GlobalMemory gmem(16 << 20);
    GemmProblem p = makeGemmProblem(gmem, size, tile);
    funcsim::FunctionalSimulator sim(spec());
    auto res = sim.run(makeGemmKernel(p), p.launch(), gmem);
    const uint64_t mads = res.stats.totalMads();
    const uint64_t shared = res.stats.totalSharedTransactions();
    EXPECT_GE(shared, 2 * mads);
    EXPECT_LE(shared, 2 * mads + mads / 2);
}

TEST_P(GemmTiles, HomogeneousSamplingMatchesFullCounts)
{
    const int tile = GetParam();
    const int size = 128;
    funcsim::GlobalMemory g1(16 << 20);
    funcsim::GlobalMemory g2(16 << 20);
    GemmProblem p1 = makeGemmProblem(g1, size, tile);
    GemmProblem p2 = makeGemmProblem(g2, size, tile);
    funcsim::FunctionalSimulator sim(spec());
    auto full = sim.run(makeGemmKernel(p1), p1.launch(), g1);
    funcsim::RunOptions opts;
    opts.homogeneous = true;
    auto sampled = sim.run(makeGemmKernel(p2), p2.launch(), g2, opts);
    EXPECT_EQ(full.stats.totalWarpInstrs(),
              sampled.stats.totalWarpInstrs());
    EXPECT_EQ(full.stats.totalGlobalTransactions(),
              sampled.stats.totalGlobalTransactions());
    EXPECT_EQ(full.stats.totalSharedTransactions(),
              sampled.stats.totalSharedTransactions());
}

INSTANTIATE_TEST_SUITE_P(Tiles, GemmTiles, ::testing::Values(8, 16, 32));

TEST(GemmOccupancy, Table2Regimes)
{
    // Paper Table 2: 8x8 and 16x16 run 8 blocks (16 warps); 32x32 is
    // squeezed to 3 blocks (6 warps) by its resource usage.
    funcsim::GlobalMemory gmem(64 << 20);
    const arch::GpuSpec s = spec();
    int expected_blocks[3] = {8, 8, 3};
    int tiles[3] = {8, 16, 32};
    for (int i = 0; i < 3; ++i) {
        GemmProblem p = makeGemmProblem(gmem, 256, tiles[i]);
        isa::Kernel k = makeGemmKernel(p);
        arch::KernelResources res{k.numRegisters(), k.sharedBytes(), 64};
        arch::Occupancy occ = arch::computeOccupancy(s, res);
        EXPECT_EQ(occ.residentBlocks, expected_blocks[i])
            << "tile " << tiles[i];
        EXPECT_EQ(occ.residentWarps, expected_blocks[i] * 2);
    }
}

TEST(GemmOccupancy, RegisterUsageGrowsWithTile)
{
    funcsim::GlobalMemory gmem(64 << 20);
    int prev = 0;
    for (int tile : {8, 16, 32}) {
        GemmProblem p = makeGemmProblem(gmem, 128, tile);
        isa::Kernel k = makeGemmKernel(p);
        EXPECT_GT(k.numRegisters(), prev);
        prev = k.numRegisters();
    }
}

TEST(GemmCounts, LargerTilesReduceGlobalTraffic)
{
    // Paper Figure 4(a): global transactions drop roughly 2x per tile
    // doubling; total instructions decrease while MADs stay constant.
    const int size = 256;
    uint64_t xacts[3];
    uint64_t instrs[3];
    funcsim::FunctionalSimulator sim(spec());
    int i = 0;
    for (int tile : {8, 16, 32}) {
        funcsim::GlobalMemory gmem(16 << 20);
        GemmProblem p = makeGemmProblem(gmem, size, tile);
        funcsim::RunOptions opts;
        opts.homogeneous = true;
        auto res = sim.run(makeGemmKernel(p), p.launch(), gmem, opts);
        xacts[i] = res.stats.totalGlobalTransactions();
        instrs[i] = res.stats.totalWarpInstrs();
        ++i;
    }
    EXPECT_GT(xacts[0], xacts[1]);
    EXPECT_GT(xacts[1], xacts[2]);
    EXPECT_NEAR(static_cast<double>(xacts[0]) / xacts[1], 2.0, 0.35);
    EXPECT_GT(instrs[0], instrs[1]);
    EXPECT_GT(instrs[1], instrs[2]);
}

TEST(GemmCounts, ColumnLoadsAreCoalesced)
{
    funcsim::GlobalMemory gmem(16 << 20);
    GemmProblem p = makeGemmProblem(gmem, 128, 16);
    funcsim::FunctionalSimulator sim(spec());
    funcsim::RunOptions opts;
    opts.homogeneous = true;
    auto res = sim.run(makeGemmKernel(p), p.launch(), gmem, opts);
    // Fully coalesced kernel: requested bytes == transferred bytes.
    uint64_t req = 0;
    uint64_t got = 0;
    for (const auto &s : res.stats.stages) {
        req += s.globalRequestBytes;
        got += s.globalBytes;
    }
    EXPECT_EQ(req, got);
}

TEST(GemmDeath, RejectsBadTile)
{
    funcsim::GlobalMemory gmem(1 << 20);
    EXPECT_DEATH(makeGemmProblem(gmem, 128, 12), "tile");
}

TEST(GemmDeath, RejectsNonPowerOfTwoSize)
{
    funcsim::GlobalMemory gmem(1 << 20);
    EXPECT_DEATH(makeGemmProblem(gmem, 100, 16), "power of two");
}

} // namespace
} // namespace apps
} // namespace gpuperf
