/**
 * @file
 * Microbenchmark-generator tests: the benches execute the instruction
 * mixes they claim, with the access patterns the calibration relies
 * on (conflict-free shared copies, fully coalesced streams).
 */

#include <gtest/gtest.h>

#include "funcsim/interpreter.h"
#include "model/microbench.h"

namespace gpuperf {
namespace model {
namespace {

arch::GpuSpec
spec()
{
    return arch::GpuSpec::gtx285();
}

class InstrBenchTypes
    : public ::testing::TestWithParam<arch::InstrType> {};

TEST_P(InstrBenchTypes, ExecutesTheRequestedMix)
{
    const arch::InstrType type = GetParam();
    isa::Kernel k = makeInstructionBench(type, 10, 5, 4096);
    funcsim::GlobalMemory gmem(1 << 20);
    funcsim::FunctionalSimulator sim(spec());
    auto res = sim.run(k, {1, 64}, gmem);
    // 10 * 5 ops per thread, 2 warps.
    const uint64_t want = 10 * 5 * 2;
    if (type == arch::InstrType::TypeII) {
        // Bookkeeping is also type II; at least the payload count.
        EXPECT_GE(res.stats.totalType(type), want);
    } else {
        EXPECT_EQ(res.stats.totalType(type), want);
    }
    // The payload dominates the dynamic mix.
    EXPECT_GT(static_cast<double>(res.stats.totalType(type)),
              0.6 * res.stats.totalWarpInstrs());
}

INSTANTIATE_TEST_SUITE_P(Types, InstrBenchTypes,
                         ::testing::ValuesIn(arch::kAllInstrTypes));

TEST(SharedBench, ConflictFreeAndBalanced)
{
    isa::Kernel k = makeSharedCopyBench(128, 64, 4096);
    funcsim::GlobalMemory gmem(1 << 20);
    funcsim::FunctionalSimulator sim(spec());
    auto res = sim.run(k, {1, 128}, gmem);
    const auto &s = res.stats.stages[0];
    // No bank conflicts: every pass is a conflict-free half-warp.
    EXPECT_EQ(s.sharedTransactions, s.sharedTransactionsIdeal);
    // 64 copies = 128 accesses per thread; 4 warps, 2 passes each.
    EXPECT_EQ(s.sharedTransactions, 128u * 4 * 2);
}

TEST(GlobalBench, FullyCoalescedAndSized)
{
    const int threads = 30 * 256;
    isa::Kernel k =
        makeGlobalStreamBench(64, 8, threads, 1 << 20, 1 << 22);
    funcsim::GlobalMemory gmem(16 << 20);
    funcsim::FunctionalSimulator sim(spec());
    funcsim::RunOptions opts;
    opts.homogeneous = true;
    auto res = sim.run(k, {30, 256}, gmem, opts);
    const auto &s = res.stats.stages[0];
    // 64 requests per thread -> per warp 64 loads, 2 x 64 B each.
    EXPECT_EQ(s.globalTransactions,
              static_cast<uint64_t>(threads) / 32 * 64 * 2 +
                  /* final store */ static_cast<uint64_t>(threads) / 32 *
                      2);
    // Fully coalesced: requested == transferred.
    EXPECT_EQ(s.globalRequestBytes, s.globalBytes);
}

TEST(GlobalBench, RespectsBufferBounds)
{
    // A tiny wrap buffer must still execute correctly (addresses wrap).
    const int threads = 30 * 64;
    isa::Kernel k =
        makeGlobalStreamBench(32, 8, threads, 1 << 20, 1 << 16);
    funcsim::GlobalMemory gmem(4 << 20);
    funcsim::FunctionalSimulator sim(spec());
    funcsim::RunOptions opts;
    opts.homogeneous = true;
    EXPECT_NO_FATAL_FAILURE(sim.run(k, {30, 64}, gmem, opts));
}

TEST(MicrobenchDeath, BadArguments)
{
    EXPECT_DEATH(makeInstructionBench(arch::InstrType::TypeII, 0, 5, 0),
                 "positive");
    EXPECT_DEATH(makeGlobalStreamBench(8, 8, 64, 0, 12345),
                 "power of two");
}

} // namespace
} // namespace model
} // namespace gpuperf
