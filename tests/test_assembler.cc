/**
 * @file
 * Assembler tests: parsing every instruction form, directives,
 * error handling, full disassemble -> assemble round trips over the
 * real application kernels, and execution equivalence of an assembled
 * kernel.
 */

#include <cstring>

#include <gtest/gtest.h>

#include "apps/matmul/gemm.h"
#include "apps/spmv/kernels.h"
#include "apps/tridiag/cyclic_reduction.h"
#include "funcsim/interpreter.h"
#include "isa/assembler.h"
#include "isa/disasm.h"

namespace gpuperf {
namespace isa {
namespace {

TEST(Assembler, ParsesDirectivesAndBasicOps)
{
    Kernel k = assemble(R"(
        .kernel demo
        .shared 256
        movi $r0, 42
        iadd $r1, $r0, 8       // immediate form
        iadd $r2, $r1, $r0     // register form
        mul $r3, $r2, $r0
        rcp $r4, $r3
        exit
    )");
    EXPECT_EQ(k.name(), "demo");
    EXPECT_EQ(k.sharedBytes(), 256);
    EXPECT_EQ(k.numRegisters(), 5);
    EXPECT_EQ(k.instructions()[0].op, Opcode::kMovImm);
    EXPECT_EQ(k.instructions()[1].imm, 8);
    EXPECT_TRUE(k.instructions()[1].useImm);
    EXPECT_FALSE(k.instructions()[2].useImm);
    EXPECT_EQ(k.instructions()[3].op, Opcode::kFmul);
}

TEST(Assembler, ParsesMemoryAndPredicates)
{
    Kernel k = assemble(R"(
        s2r $r0, %tid
        shl $r1, $r0, 2
        lds $r2, smem[$r1+4]
        sts smem[$r1], $r2
        ldg $r3, gmem[$r1+4096]
        stg gmem[$r1+8192], $r3
        ldt $r4, gmem[$r1]
        mad.s $r4, $r2, smem[$r1+64], $r4
        setp.i.lt $p0, $r0, 16
        @$p0 if
        movi $r5, 1
        else
        movi $r5, 2
        endif
        loop
        setp.i.ge $p1, $r5, 3
        @!$p1 brk
        endloop
        bar.sync
    )");
    const auto &ins = k.instructions();
    EXPECT_EQ(ins[2].op, Opcode::kLds);
    EXPECT_EQ(ins[2].imm, 4);
    EXPECT_EQ(ins[4].op, Opcode::kLdg);
    EXPECT_EQ(ins[4].imm, 4096);
    EXPECT_EQ(ins[6].op, Opcode::kLdt);
    EXPECT_EQ(ins[7].op, Opcode::kFmadS);
    EXPECT_EQ(ins[7].imm, 64);
    EXPECT_EQ(ins[8].cmp, CmpOp::kLt);
    EXPECT_EQ(ins[9].op, Opcode::kIf);
    EXPECT_EQ(ins[9].pred, 0);
    EXPECT_FALSE(ins[9].predNegate);
    // @!$p1 brk
    const Instruction &brk = ins[16];
    EXPECT_EQ(brk.op, Opcode::kBrk);
    EXPECT_TRUE(brk.predNegate);
    EXPECT_EQ(brk.pred, 1);
    EXPECT_EQ(k.numPredicates(), 2);
}

TEST(Assembler, AcceptsDisassemblyIndexPrefixes)
{
    Kernel k = assemble("   0:  movi $r0, 1\n   1:  exit\n");
    EXPECT_EQ(k.instructions()[0].op, Opcode::kMovImm);
}

TEST(AssemblerDeath, RejectsGarbage)
{
    EXPECT_EXIT(assemble("frobnicate $r0, $r1\n"),
                ::testing::ExitedWithCode(1), "unknown mnemonic");
    EXPECT_EXIT(assemble("movi $r0 42\n"), ::testing::ExitedWithCode(1),
                "expected ','");
    EXPECT_EXIT(assemble(".bogus 1\n"), ::testing::ExitedWithCode(1),
                "unknown directive");
    EXPECT_EXIT(assemble("movi $r0, 1 junk\n"),
                ::testing::ExitedWithCode(1), "trailing");
}

/** Round trip: disassemble -> assemble -> disassemble must be stable. */
void
expectRoundTrip(const Kernel &k)
{
    const std::string text = toAssembly(k);
    Kernel k2 = assemble(text);
    ASSERT_EQ(k2.instructions().size(), k.instructions().size());
    for (size_t i = 0; i < k.instructions().size(); ++i) {
        EXPECT_EQ(disassemble(k.instructions()[i]),
                  disassemble(k2.instructions()[i]))
            << "instruction " << i;
    }
    EXPECT_EQ(k2.sharedBytes(), k.sharedBytes());
    EXPECT_EQ(k2.numRegisters(), k.numRegisters());
}

TEST(Assembler, RoundTripsGemmKernel)
{
    funcsim::GlobalMemory gmem(16 << 20);
    apps::GemmProblem p = apps::makeGemmProblem(gmem, 128, 16);
    expectRoundTrip(apps::makeGemmKernel(p));
}

TEST(Assembler, RoundTripsCyclicReductionKernel)
{
    funcsim::GlobalMemory gmem(16 << 20);
    apps::TridiagProblem p = apps::makeTridiagProblem(gmem, 64, 1, true);
    expectRoundTrip(apps::makeCyclicReductionKernel(p));
}

TEST(Assembler, RoundTripsSpmvKernels)
{
    apps::BlockSparseMatrix m = apps::makeBandedBlockMatrix(64, 5, 8);
    funcsim::GlobalMemory gmem(32 << 20);
    apps::SpmvVectors v = apps::makeVectors(gmem, m);
    apps::EllDeviceMatrix ell = apps::buildEll(gmem, m);
    expectRoundTrip(apps::makeEllKernel(ell, v, true));
    apps::BellDeviceMatrix bell = apps::buildBell(gmem, m, true);
    expectRoundTrip(apps::makeBellKernel(bell, v, true, false));
}

TEST(Assembler, AssembledKernelExecutesIdentically)
{
    // Solve small tridiagonal systems from source-assembled code and
    // compare against the builder-produced kernel's numerics.
    funcsim::GlobalMemory g1(8 << 20);
    funcsim::GlobalMemory g2(8 << 20);
    apps::TridiagProblem p1 = apps::makeTridiagProblem(g1, 64, 2, false);
    apps::TridiagProblem p2 = apps::makeTridiagProblem(g2, 64, 2, false);
    Kernel original = apps::makeCyclicReductionKernel(p1);
    Kernel reassembled = assemble(toAssembly(original));

    funcsim::FunctionalSimulator sim(arch::GpuSpec::gtx285());
    sim.run(original, p1.launch(), g1);
    sim.run(reassembled, p2.launch(), g2);

    const float *x1 = g1.f32(p1.xBase);
    const float *x2 = g2.f32(p2.xBase);
    for (int i = 0; i < p1.n * p1.systems; ++i)
        EXPECT_EQ(x1[i], x2[i]) << i;
}

TEST(Assembler, HandwrittenKernelRuns)
{
    // out[tid] = tid * 2 written directly in assembly.
    Kernel k = assemble(R"(
        .kernel double_tid
        s2r $r0, %tid
        iadd $r1, $r0, $r0
        i2f $r2, $r1
        shl $r3, $r0, 2
        iadd $r3, $r3, 4096
        stg gmem[$r3], $r2
    )");
    funcsim::GlobalMemory gmem(1 << 20);
    funcsim::FunctionalSimulator sim(arch::GpuSpec::gtx285());
    sim.run(k, {1, 32}, gmem);
    for (int i = 0; i < 32; ++i)
        EXPECT_FLOAT_EQ(gmem.f32(4096)[i], 2.0f * i);
}

} // namespace
} // namespace isa
} // namespace gpuperf
