/**
 * @file
 * Bank-conflict analyzer tests: the power-of-two stride pattern of
 * cyclic reduction (paper Figure 5), broadcast, padding, and the
 * prime-bank-count what-if.
 */

#include <gtest/gtest.h>

#include "memxact/bank_conflicts.h"

namespace gpuperf {
namespace memxact {
namespace {

/** Half-warp addresses with a word stride. */
std::vector<uint64_t>
strided(int stride_words, int lanes = 16)
{
    std::vector<uint64_t> addrs(32, 0);
    for (int i = 0; i < lanes; ++i)
        addrs[i] = static_cast<uint64_t>(i) * stride_words * 4;
    return addrs;
}

uint32_t
maskOf(int lanes)
{
    return lanes >= 32 ? 0xffffffffu : ((1u << lanes) - 1);
}

TEST(BankConflicts, UnitStrideIsConflictFree)
{
    BankConflictAnalyzer a(16, 4, 16);
    auto addrs = strided(1);
    EXPECT_EQ(a.analyzeGroup(addrs.data(), maskOf(16), 0, 16).degree, 1);
}

TEST(BankConflicts, StrideTwoIsTwoWay)
{
    BankConflictAnalyzer a(16, 4, 16);
    auto addrs = strided(2);
    EXPECT_EQ(a.analyzeGroup(addrs.data(), maskOf(16), 0, 16).degree, 2);
}

TEST(BankConflicts, PowerOfTwoStridesDoubleConflicts)
{
    // The cyclic-reduction pattern: stride 2^k gives min(2^k, 16)-way
    // conflicts for a full half-warp (paper Section 5.2).
    BankConflictAnalyzer a(16, 4, 16);
    for (int k = 0; k <= 5; ++k) {
        const int stride = 1 << k;
        auto addrs = strided(stride);
        EXPECT_EQ(a.analyzeGroup(addrs.data(), maskOf(16), 0, 16).degree,
                  std::min(stride, 16))
            << "stride " << stride;
    }
}

TEST(BankConflicts, BroadcastSameWordIsConflictFree)
{
    BankConflictAnalyzer a(16, 4, 16);
    std::vector<uint64_t> addrs(32, 128);
    EXPECT_EQ(a.analyzeGroup(addrs.data(), maskOf(16), 0, 16).degree, 1);
}

TEST(BankConflicts, DifferentWordsSameBankConflictEvenIfFewLanes)
{
    BankConflictAnalyzer a(16, 4, 16);
    // Three lanes reading words 0, 16, 32 — all bank 0.
    std::vector<uint64_t> addrs(32, 0);
    addrs[0] = 0;
    addrs[1] = 16 * 4;
    addrs[2] = 32 * 4;
    EXPECT_EQ(a.analyzeGroup(addrs.data(), 0x7u, 0, 16).degree, 3);
}

TEST(BankConflicts, InactiveLanesDoNotConflict)
{
    BankConflictAnalyzer a(16, 4, 16);
    auto addrs = strided(16);  // all same bank
    EXPECT_EQ(a.analyzeGroup(addrs.data(), 0x1u, 0, 16).degree, 1);
    EXPECT_EQ(a.analyzeGroup(addrs.data(), 0x0u, 0, 16).degree, 0);
}

TEST(BankConflicts, PaddingEverySixteenWordsRemovesConflicts)
{
    // The CR-NBC trick: index i -> i + i/16 makes power-of-two strides
    // up to 16 conflict-free on 16 banks.
    BankConflictAnalyzer a(16, 4, 16);
    for (int k = 1; k <= 4; ++k) {
        const int stride = 1 << k;
        std::vector<uint64_t> addrs(32, 0);
        for (int i = 0; i < 16; ++i) {
            const int idx = i * stride;
            addrs[i] = static_cast<uint64_t>(idx + idx / 16) * 4;
        }
        EXPECT_EQ(a.analyzeGroup(addrs.data(), maskOf(16), 0, 16).degree,
                  1)
            << "stride " << stride;
    }
}

TEST(BankConflicts, PaddingLeavesAtMostTwoWayConflictsBeyondStride16)
{
    // For strides > 16 the simple padding leaves a residual 2-way
    // conflict — a large improvement over the unpadded min(stride, 16).
    BankConflictAnalyzer a(16, 4, 16);
    for (int k = 5; k <= 7; ++k) {
        const int stride = 1 << k;
        const int lanes = 512 >> k;  // active threads in CR at this step
        std::vector<uint64_t> addrs(32, 0);
        for (int i = 0; i < lanes; ++i) {
            const int idx = i * stride;
            addrs[i] = static_cast<uint64_t>(idx + idx / 16) * 4;
        }
        const int degree =
            a.analyzeGroup(addrs.data(), maskOf(lanes), 0, 16).degree;
        EXPECT_LE(degree, 2) << "stride " << stride;
    }
}

TEST(BankConflicts, PrimeBankCountRemovesPowerOfTwoConflicts)
{
    // The paper's architectural suggestion: 17 banks.
    BankConflictAnalyzer a(17, 4, 16);
    for (int k = 1; k <= 5; ++k) {
        auto addrs = strided(1 << k);
        EXPECT_EQ(a.analyzeGroup(addrs.data(), maskOf(16), 0, 16).degree,
                  1)
            << "stride " << (1 << k);
    }
}

TEST(BankConflicts, WarpTransactionsSumsHalfWarps)
{
    BankConflictAnalyzer a(16, 4, 16);
    auto addrs = strided(2, 32);
    for (int i = 16; i < 32; ++i)
        addrs[i] = static_cast<uint64_t>(i - 16) * 2 * 4;
    EXPECT_EQ(a.warpTransactions(addrs.data(), 0xffffffffu, 32), 4);
    // Only the first half active: one group of 2-way conflicts.
    EXPECT_EQ(a.warpTransactions(addrs.data(), 0x0000ffffu, 32), 2);
}

TEST(BankConflicts, BankOfWrapsAroundBanks)
{
    BankConflictAnalyzer a(16, 4, 16);
    EXPECT_EQ(a.bankOf(0), 0);
    EXPECT_EQ(a.bankOf(4), 1);
    EXPECT_EQ(a.bankOf(15 * 4), 15);
    EXPECT_EQ(a.bankOf(16 * 4), 0);
}

class BankDegreeBounds : public ::testing::TestWithParam<int> {};

TEST_P(BankDegreeBounds, DegreeIsBoundedByLanesAndBanks)
{
    const int banks = GetParam();
    BankConflictAnalyzer a(banks, 4, 16);
    uint64_t seed = 999;
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<uint64_t> addrs(32);
        for (int i = 0; i < 32; ++i) {
            seed = seed * 6364136223846793005ULL + 1442695040888963407ULL;
            addrs[i] = (seed >> 10) % 4096 / 4 * 4;
        }
        const int degree =
            a.analyzeGroup(addrs.data(), 0xffffu, 0, 16).degree;
        EXPECT_GE(degree, 1);
        EXPECT_LE(degree, 16);
    }
}

INSTANTIATE_TEST_SUITE_P(BankCounts, BankDegreeBounds,
                         ::testing::Values(8, 16, 17, 32));

TEST(BankConflicts, FastPathMatchesReferenceEverywhere)
{
    // warpTransactionsFast is the vectorized interpreter's hot path;
    // it must agree with the set-based reference on every mask and
    // address pattern, including sub-32 warps and tail groups.
    const int bank_configs[][3] = {
        {16, 4, 16}, {17, 4, 16}, {8, 4, 8}, {32, 4, 32}, {16, 4, 12},
    };
    const int warp_sizes[] = {32, 16, 24, 17, 8};
    uint64_t seed = 42;
    for (const auto &bc : bank_configs) {
        BankConflictAnalyzer a(bc[0], bc[1], bc[2]);
        for (int ws : warp_sizes) {
            for (int trial = 0; trial < 40; ++trial) {
                std::vector<uint64_t> addrs(32, 0);
                uint32_t mask = 0;
                switch (trial % 5) {
                case 0:   // strided, full mask
                    for (int i = 0; i < ws; ++i)
                        addrs[i] = static_cast<uint64_t>(i) *
                                   (1ull << (trial % 6)) * 4;
                    mask = ws >= 32 ? 0xffffffffu : ((1u << ws) - 1);
                    break;
                case 1:   // broadcast, sparse mask
                    for (int i = 0; i < ws; ++i)
                        addrs[i] = 128;
                    mask = 0x55555555u & (ws >= 32 ? 0xffffffffu
                                                   : ((1u << ws) - 1));
                    break;
                case 2:   // empty mask
                    mask = 0;
                    break;
                default:  // random addresses, random mask
                    for (int i = 0; i < ws; ++i) {
                        seed = seed * 6364136223846793005ULL +
                               1442695040888963407ULL;
                        addrs[i] = (seed >> 16) % 8192 / 4 * 4;
                    }
                    seed = seed * 6364136223846793005ULL +
                           1442695040888963407ULL;
                    mask = static_cast<uint32_t>(seed >> 32) &
                           (ws >= 32 ? 0xffffffffu : ((1u << ws) - 1));
                    break;
                }
                EXPECT_EQ(a.warpTransactionsFast(addrs.data(), mask, ws),
                          a.warpTransactions(addrs.data(), mask, ws))
                    << "banks " << bc[0] << " group " << bc[2]
                    << " warp " << ws << " trial " << trial;
            }
        }
    }
}

} // namespace
} // namespace memxact
} // namespace gpuperf
