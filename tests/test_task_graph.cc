/**
 * @file
 * Task-graph executor tests: dependency ordering on diamonds, per-node
 * exception capture with skip-cascade to dependents, dynamic node
 * creation from running nodes (the store-warm short-circuit mechanism
 * the batch driver relies on), and no deadlock for worker counts
 * 1..8 — including the single-thread case, where any node that blocked
 * on another node would wedge the pool.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/task_graph.h"
#include "common/thread_pool.h"

namespace gpuperf {
namespace {

using NodeState = TaskGraph::NodeState;

TEST(TaskGraphTest, EmptyGraphRunsToCompletion)
{
    ThreadPool pool(2);
    TaskGraph graph(pool);
    graph.run();
    EXPECT_EQ(graph.size(), 0u);
}

TEST(TaskGraphTest, DiamondRespectsDependencyOrder)
{
    ThreadPool pool(4);
    TaskGraph graph(pool);

    std::atomic<int> clock{0};
    int t_a = -1, t_b = -1, t_c = -1, t_d = -1;
    const auto a = graph.add("a", [&]() { t_a = clock++; });
    const auto b = graph.add("b", [&]() { t_b = clock++; }, {a});
    const auto c = graph.add("c", [&]() { t_c = clock++; }, {a});
    const auto d = graph.add("d", [&]() { t_d = clock++; }, {b, c});
    graph.run();

    for (auto id : {a, b, c, d})
        EXPECT_EQ(graph.state(id), NodeState::kDone);
    EXPECT_LT(t_a, t_b);
    EXPECT_LT(t_a, t_c);
    EXPECT_LT(t_b, t_d);
    EXPECT_LT(t_c, t_d);
}

TEST(TaskGraphTest, FailurePropagatesToTransitiveDependentsOnly)
{
    ThreadPool pool(4);
    TaskGraph graph(pool);

    bool d_ran = false;
    bool e_ran = false;
    const auto a = graph.add("a", []() {});
    const auto b = graph.add(
        "b", []() { throw std::runtime_error("b exploded"); }, {a});
    const auto c = graph.add("c", []() {}, {a});
    const auto d = graph.add("d", [&]() { d_ran = true; }, {b, c});
    const auto e = graph.add("e", [&]() { e_ran = true; }, {c});
    graph.run();

    EXPECT_EQ(graph.state(a), NodeState::kDone);
    EXPECT_EQ(graph.state(b), NodeState::kFailed);
    EXPECT_EQ(graph.state(c), NodeState::kDone);
    EXPECT_EQ(graph.state(d), NodeState::kSkipped);
    EXPECT_EQ(graph.state(e), NodeState::kDone);
    EXPECT_FALSE(d_ran) << "a dependent of a failed node must not run";
    EXPECT_TRUE(e_ran) << "unrelated branches must be unaffected";

    // The skipped node carries the ROOT cause, rethrowable.
    ASSERT_NE(graph.error(d), nullptr);
    try {
        std::rethrow_exception(graph.error(d));
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &ex) {
        EXPECT_STREQ(ex.what(), "b exploded");
    }
    ASSERT_EQ(graph.failures().size(), 1u);
    EXPECT_EQ(graph.failures()[0], b);
}

TEST(TaskGraphTest, NodesCanAddNodesWhileRunning)
{
    ThreadPool pool(3);
    TaskGraph graph(pool);

    std::mutex mutex;
    std::vector<std::string> order;
    auto record = [&](const std::string &tag) {
        std::lock_guard<std::mutex> lock(mutex);
        order.push_back(tag);
    };

    const auto a = graph.add("a", [&]() {
        record("a");
        // Dynamically extend the graph: a child depending on an
        // ALREADY-FINISHED sibling and on a fresh node.
        const auto fresh = graph.add("fresh", [&]() { record("fresh"); });
        graph.add("child", [&]() { record("child"); }, {fresh});
    });
    graph.run();

    ASSERT_EQ(graph.size(), 3u);
    for (TaskGraph::NodeId id = 0; id < graph.size(); ++id)
        EXPECT_EQ(graph.state(id), NodeState::kDone) << graph.name(id);
    (void)a;
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], "a");
    // child strictly after fresh.
    const auto fresh_at =
        std::find(order.begin(), order.end(), "fresh") - order.begin();
    const auto child_at =
        std::find(order.begin(), order.end(), "child") - order.begin();
    EXPECT_LT(fresh_at, child_at);
}

TEST(TaskGraphTest, DynamicNodeOnFailedDependencyIsSkippedImmediately)
{
    ThreadPool pool(2);
    TaskGraph graph(pool);

    TaskGraph::NodeId late = 0;
    bool late_ran = false;
    const auto boom = graph.add(
        "boom", []() { throw std::runtime_error("boom"); });
    // A second root that adds a dependent of the failed node after it
    // has already failed (single dependency chain forces ordering on
    // a 1-wide subgraph is not guaranteed; depend on boom to order).
    graph.add(
        "spawner",
        [&]() {
            late = graph.add(
                "late", [&]() { late_ran = true; }, {boom});
        },
        {});
    graph.run();

    // Whether spawner observed boom finished or pending, late must
    // end skipped (or have run only if boom succeeded — it cannot).
    EXPECT_EQ(graph.state(boom), NodeState::kFailed);
    EXPECT_EQ(graph.state(late), NodeState::kSkipped);
    EXPECT_FALSE(late_ran);
}

TEST(TaskGraphTest, DrainsWideLayeredGraphsOnOneToEightThreads)
{
    for (int threads = 1; threads <= 8; ++threads) {
        SCOPED_TRACE("threads = " + std::to_string(threads));
        ThreadPool pool(threads);
        TaskGraph graph(pool);

        // Three layers, every layer-N node depending on two layer-N-1
        // nodes; a worker that ever blocked on an unfinished
        // dependency would deadlock the 1-thread pool here.
        std::atomic<int> executed{0};
        constexpr int kWidth = 24;
        std::vector<TaskGraph::NodeId> prev;
        for (int i = 0; i < kWidth; ++i)
            prev.push_back(graph.add("l0", [&]() { ++executed; }));
        for (int layer = 1; layer < 3; ++layer) {
            std::vector<TaskGraph::NodeId> cur;
            for (int i = 0; i < kWidth; ++i) {
                cur.push_back(graph.add(
                    "l" + std::to_string(layer), [&]() { ++executed; },
                    {prev[i], prev[(i + 7) % kWidth]}));
            }
            prev = std::move(cur);
        }
        graph.run();
        EXPECT_EQ(executed.load(), 3 * kWidth);
        EXPECT_TRUE(graph.failures().empty());
    }
}

TEST(TaskGraphTest, RunIsOneShot)
{
    ThreadPool pool(1);
    TaskGraph graph(pool);
    graph.add("only", []() {});
    graph.run();
    EXPECT_THROW(graph.run(), std::logic_error);
    EXPECT_THROW(graph.add("late", []() {}), std::logic_error);
}

TEST(TaskGraphTest, ForwardEdgesAreRejected)
{
    ThreadPool pool(1);
    TaskGraph graph(pool);
    EXPECT_THROW(graph.add("self", []() {}, {0}), std::logic_error);

    // A bad id mixed with a valid one must be rejected WITHOUT
    // registering the never-created node as the valid dep's
    // dependent — the graph must still drain cleanly afterwards.
    bool a_ran = false;
    const auto a = graph.add("a", [&]() { a_ran = true; });
    EXPECT_THROW(graph.add("mixed", []() {}, {a, 99}),
                 std::logic_error);
    graph.run();
    EXPECT_TRUE(a_ran);
    EXPECT_EQ(graph.state(a), NodeState::kDone);
    EXPECT_TRUE(graph.failures().empty());
}

} // namespace
} // namespace gpuperf
