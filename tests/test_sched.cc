/**
 * @file
 * Scheduler tests: cost-model monotonicity and EWMA refinement (in
 * process and through the TimingStore observation side-channel), the
 * policy-ordered PendingQueue (FIFO/SJF/biggest-first plus urgent
 * drain), fair-share starvation-freedom under a flooding client, and
 * the tentpole invariant — every policy's responses bit-identical
 * (api::responsesEqual) to the FIFO run across 1..8 threads.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/codecs.h"
#include "api/registry.h"
#include "api/request.h"
#include "api/service.h"
#include "arch/gpu_spec.h"
#include "sched/cost.h"
#include "sched/policy.h"
#include "store/timing_store.h"

namespace gpuperf {
namespace {

std::string
freshDir(const std::string &tag)
{
    static int counter = 0;
    const std::string dir = ::testing::TempDir() + "gpuperf-sched-" +
                            tag + "-" +
                            std::to_string(::getpid()) + "-" +
                            std::to_string(counter++);
    (void)::system(("rm -rf " + dir).c_str());
    return dir;
}

// --- Policy parsing ---------------------------------------------------

TEST(SchedPolicy, ParsesEveryCanonicalSpelling)
{
    using sched::SchedPolicy;
    const SchedPolicy all[] = {
        SchedPolicy::kFifo, SchedPolicy::kBiggestFirst,
        SchedPolicy::kSjf, SchedPolicy::kFairShare};
    for (SchedPolicy p : all) {
        SchedPolicy parsed = SchedPolicy::kFifo;
        EXPECT_TRUE(
            sched::parseSchedPolicy(sched::schedPolicyName(p), &parsed));
        EXPECT_EQ(parsed, p);
    }
    SchedPolicy parsed = SchedPolicy::kFifo;
    EXPECT_FALSE(sched::parseSchedPolicy("round-robin", &parsed));
    EXPECT_FALSE(sched::parseSchedPolicy("", &parsed));
}

// --- Cost model -------------------------------------------------------

TEST(CostModel, StaticUnitsAreMonotoneInEveryFeature)
{
    sched::CostFeatures base;
    base.warpOps = 100;
    base.warps = 8;
    const double u0 = sched::CostModel::staticUnits(base);
    EXPECT_GE(u0, 1.0); // floor: nothing predicts "free"

    sched::CostFeatures moreOps = base;
    moreOps.warpOps = 1000;
    EXPECT_GT(sched::CostModel::staticUnits(moreOps), u0);

    sched::CostFeatures moreWarps = base;
    moreWarps.warps = 64;
    EXPECT_GT(sched::CostModel::staticUnits(moreWarps), u0);

    // Static estimate inherits the monotonicity through the model.
    sched::CostModel model;
    EXPECT_GT(model.estimateStatic(moreOps),
              model.estimateStatic(base));
    EXPECT_GT(model.estimateStatic(moreWarps),
              model.estimateStatic(base));
}

TEST(CostModel, ObservationsRefineTheEstimate)
{
    sched::CostModel model;
    sched::CostFeatures f;
    f.warpOps = 50;
    f.warps = 4;

    // Unobserved: the static fallback.
    EXPECT_DOUBLE_EQ(model.estimate("k", f), model.estimateStatic(f));

    // First observation replaces the estimate outright (EWMA with no
    // history IS the sample) ...
    model.observe("k", f, 40.0);
    EXPECT_DOUBLE_EQ(model.estimate("k", f), 40.0);

    // ... and later samples move it smoothly toward the new level.
    model.observe("k", f, 80.0);
    const double e = model.estimate("k", f);
    EXPECT_GT(e, 40.0);
    EXPECT_LT(e, 80.0);
    EXPECT_NEAR(e, 0.3 * 80.0 + 0.7 * 40.0, 1e-12);

    // Other keys are untouched.
    EXPECT_DOUBLE_EQ(model.estimate("other", f),
                     model.estimateStatic(f));

    // Prediction-error accounting saw both observations.
    EXPECT_EQ(model.predictionSamples(), 2u);
    EXPECT_GT(model.predictionErrorAbsSum(), 0.0);
}

TEST(CostModel, SeedInstallsButNeverOverridesInProcessHistory)
{
    sched::CostModel model;
    sched::CostFeatures f;

    model.seed("cold", 25.0, 4);
    double ms = 0.0;
    uint64_t count = 0;
    ASSERT_TRUE(model.observed("cold", &ms, &count));
    EXPECT_DOUBLE_EQ(ms, 25.0);
    EXPECT_EQ(count, 4u);

    model.observe("hot", f, 10.0);
    model.seed("hot", 99.0, 100); // persisted, but staler than ours
    ASSERT_TRUE(model.observed("hot", &ms, &count));
    EXPECT_DOUBLE_EQ(ms, 10.0);
}

TEST(CostModel, EwmaMergeFirstSampleWinsThenSmooths)
{
    EXPECT_DOUBLE_EQ(sched::CostModel::ewmaMerge(0.0, 0, 50.0), 50.0);
    EXPECT_NEAR(sched::CostModel::ewmaMerge(50.0, 1, 100.0),
                0.3 * 100.0 + 0.7 * 50.0, 1e-12);
}

// --- TimingStore observation side-channel -----------------------------

TEST(TimingStoreObservations, RecordsAndRefinesAcrossCalls)
{
    store::TimingStore store(freshDir("obs"));
    funcsim::ProfileKey key;
    key.kernelHash = 0x1234;
    key.inputHash = 0x5678;
    const arch::TimingFingerprint fp =
        arch::TimingFingerprint::of(arch::GpuSpec::gtx285());

    double ms = 0.0;
    uint64_t count = 0;
    EXPECT_FALSE(store.loadObservationMs(key, fp, &ms, &count));

    ASSERT_TRUE(store.recordObservationMs(key, fp, 100.0));
    ASSERT_TRUE(store.loadObservationMs(key, fp, &ms, &count));
    EXPECT_DOUBLE_EQ(ms, 100.0);
    EXPECT_EQ(count, 1u);

    // A second record merges by the model's own EWMA rule, so the
    // store-side and in-process refinement agree to the bit.
    ASSERT_TRUE(store.recordObservationMs(key, fp, 200.0));
    ASSERT_TRUE(store.loadObservationMs(key, fp, &ms, &count));
    EXPECT_NEAR(ms, sched::CostModel::ewmaMerge(100.0, 1, 200.0),
                1e-12);
    EXPECT_EQ(count, 2u);

    // Observations are keyed per (profile key, timing fingerprint).
    const arch::TimingFingerprint fp2 = arch::TimingFingerprint::of(
        arch::GpuSpec::gtx285MoreBlocks());
    EXPECT_FALSE(store.loadObservationMs(key, fp2, &ms, &count));
    funcsim::ProfileKey other = key;
    other.kernelHash = 0x9999;
    EXPECT_FALSE(store.loadObservationMs(other, fp, &ms, &count));
}

// --- PendingQueue policy ordering -------------------------------------

std::vector<int>
popAll(sched::PendingQueue<int> &q)
{
    std::vector<int> order;
    while (!q.empty())
        order.push_back(q.pop());
    return order;
}

TEST(PendingQueue, FifoPopsInArrivalOrderRegardlessOfCost)
{
    sched::PendingQueue<int> q(sched::SchedPolicy::kFifo);
    q.push(1, 5.0);
    q.push(2, 1.0);
    q.push(3, 3.0);
    EXPECT_EQ(popAll(q), (std::vector<int>{1, 2, 3}));
}

TEST(PendingQueue, SjfPopsCheapestFirstWithFifoTieBreak)
{
    sched::PendingQueue<int> q(sched::SchedPolicy::kSjf);
    q.push(1, 5.0);
    q.push(2, 1.0);
    q.push(3, 3.0);
    q.push(4, 1.0); // same cost as 2 — arrival order breaks the tie
    EXPECT_EQ(popAll(q), (std::vector<int>{2, 4, 3, 1}));
}

TEST(PendingQueue, BiggestFirstPopsDearestFirst)
{
    sched::PendingQueue<int> q(sched::SchedPolicy::kBiggestFirst);
    q.push(1, 5.0);
    q.push(2, 1.0);
    q.push(3, 3.0);
    EXPECT_EQ(popAll(q), (std::vector<int>{1, 3, 2}));
}

TEST(PendingQueue, UrgentEntriesDrainFirstUnderEveryPolicy)
{
    for (sched::SchedPolicy p :
         {sched::SchedPolicy::kFifo, sched::SchedPolicy::kSjf,
          sched::SchedPolicy::kBiggestFirst,
          sched::SchedPolicy::kFairShare}) {
        sched::PendingQueue<int> q(p);
        q.push(1, 0.5);
        q.pushUrgent(90);
        q.pushUrgent(91);
        EXPECT_EQ(q.pop(), 90) << sched::schedPolicyName(p);
        EXPECT_EQ(q.pop(), 91) << sched::schedPolicyName(p);
        EXPECT_EQ(q.pop(), 1) << sched::schedPolicyName(p);
    }
}

TEST(PendingQueue, EraseRemovesFromUrgentAndPolicyEntries)
{
    sched::PendingQueue<int> q(sched::SchedPolicy::kSjf);
    q.push(1, 1.0);
    q.push(2, 2.0);
    q.pushUrgent(3);
    EXPECT_TRUE(q.erase(3));
    EXPECT_TRUE(q.erase(1));
    EXPECT_FALSE(q.erase(42));
    EXPECT_EQ(q.pop(), 2);
    EXPECT_TRUE(q.empty());
}

TEST(PendingQueue, FairShareNeverStarvesTheTricklingClient)
{
    // Client A floods 60 expensive items; client B trickles 3 cheap
    // ones in AFTER the flood is queued. Under FIFO B would wait out
    // all 60; fair share must serve B's entire trickle within a few
    // pops, and A must keep making progress too.
    sched::PendingQueue<int> q(sched::SchedPolicy::kFairShare);
    for (int i = 0; i < 60; ++i)
        q.push(1000 + i, 10.0, "A");
    for (int i = 0; i < 3; ++i)
        q.push(2000 + i, 1.0, "B");

    std::vector<int> first(8);
    for (int i = 0; i < 8; ++i)
        first[i] = q.pop();

    size_t b_served = 0, a_served = 0;
    for (int item : first)
        (item >= 2000 ? b_served : a_served) += 1;
    EXPECT_EQ(b_served, 3u)
        << "flooded client starved the trickler";
    EXPECT_GE(a_served, 1u) << "flooding client starved entirely";

    // Accounting matches what happened.
    bool sawA = false, sawB = false;
    for (const sched::ClientShare &s : q.shares()) {
        if (s.client == "A") {
            sawA = true;
            EXPECT_EQ(s.popped, a_served);
        }
        if (s.client == "B") {
            sawB = true;
            EXPECT_EQ(s.popped, 3u);
            EXPECT_EQ(s.queued, 0u);
        }
    }
    EXPECT_TRUE(sawA);
    EXPECT_TRUE(sawB);
}

// --- Policy == FIFO bit-identity through the service ------------------

model::CalibrationTables
fakeTables()
{
    model::CalibrationTables t;
    t.maxWarps = 32;
    t.bytesPerPass = 64;
    for (int type = 0; type < arch::kNumInstrTypes; ++type) {
        t.instrThroughput[type].assign(33, 0.0);
        for (int w = 1; w <= 32; ++w)
            t.instrThroughput[type][w] = 1e10 * std::min(1.0, w / 8.0);
    }
    t.sharedPassThroughput.assign(33, 0.0);
    for (int w = 1; w <= 32; ++w)
        t.sharedPassThroughput[w] = 2e10 * std::min(1.0, w / 8.0);
    return t;
}

api::AnalysisRequest
schedRequest(int numThreads)
{
    api::AnalysisRequest req;
    req.jobName = "sched-identity";
    req.kernels.push_back(api::KernelJob::fromRef(
        "saxpy-small", api::CaseRef{"saxpy", {8, 128}, {2.0}}));
    req.kernels.push_back(api::KernelJob::fromRef(
        "conflicted",
        api::CaseRef{"shared-conflict", {8, 128, 8, 32}, {}}));
    req.kernels.push_back(api::KernelJob::fromRef(
        "hist", api::CaseRef{"histogram", {6, 128, 8, 4}, {}}));
    req.specs.push_back(arch::GpuSpec::gtx285());
    req.specs.push_back(arch::GpuSpec::gtx285MoreBlocks());
    req.sweep.noBankConflicts = true;
    req.sweep.warpsPerSm = {8.0, 32.0};
    req.sweep.coalescingFractions = {1.0};
    req.exec.numThreads = numThreads;
    return req;
}

TEST(SchedIdentity, EveryPolicyMatchesFifoBitExactlyAcrossThreads)
{
    const auto tables =
        std::make_shared<const model::CalibrationTables>(fakeTables());
    for (int threads = 1; threads <= 8; ++threads) {
        const api::AnalysisRequest req = schedRequest(threads);

        api::AnalysisService fifo;
        fifo.setSchedPolicy(sched::SchedPolicy::kFifo);
        for (const arch::GpuSpec &spec : req.specs)
            fifo.adoptCalibration(req, spec, tables);
        const api::AnalysisResponse want = fifo.run(req);
        ASSERT_EQ(want.cells.size(), 6u);

        for (sched::SchedPolicy p :
             {sched::SchedPolicy::kBiggestFirst,
              sched::SchedPolicy::kSjf,
              sched::SchedPolicy::kFairShare}) {
            api::AnalysisService service;
            // Policy BEFORE adoption: the policy is part of the
            // executor cache key, and the tables must land in the
            // executor that will run the request.
            service.setSchedPolicy(p);
            for (const arch::GpuSpec &spec : req.specs)
                service.adoptCalibration(req, spec, tables);
            const api::AnalysisResponse got = service.run(req);
            std::string why;
            EXPECT_TRUE(api::responsesEqual(got, want, &why))
                << sched::schedPolicyName(p) << " @ " << threads
                << " threads: " << why;
        }
    }
}

} // namespace
} // namespace gpuperf
