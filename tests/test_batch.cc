/**
 * @file
 * Batch-analysis driver tests: sweep grids rank what-if results best
 * speedup first (including the paper's "CR padding is worth it"
 * decision), and BatchRunner produces results identical to the serial
 * loop, deterministically, for any worker count.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>

#include "driver/batch_runner.h"
#include "driver/demo_cases.h"
#include "store/profile_store.h"

namespace gpuperf {
namespace driver {
namespace {

model::CalibrationTables
fakeTables()
{
    model::CalibrationTables t;
    t.maxWarps = 32;
    t.bytesPerPass = 64;
    for (int type = 0; type < arch::kNumInstrTypes; ++type) {
        t.instrThroughput[type].assign(33, 0.0);
        for (int w = 1; w <= 32; ++w)
            t.instrThroughput[type][w] = 1e10 * std::min(1.0, w / 8.0);
    }
    t.sharedPassThroughput.assign(33, 0.0);
    for (int w = 1; w <= 32; ++w)
        t.sharedPassThroughput[w] = 2e10 * std::min(1.0, w / 8.0);
    return t;
}

std::shared_ptr<const model::CalibrationTables>
sharedFakeTables()
{
    return std::make_shared<const model::CalibrationTables>(
        fakeTables());
}

/**
 * A model input shaped like the paper's cyclic reduction before
 * padding: shared-memory bound with 4x bank-conflicted transactions,
 * already at saturating warp-level parallelism.
 */
model::ModelInput
crLikeInput()
{
    model::ModelInput input;
    input.gridDim = 600;
    input.blockDim = 128;
    input.concurrentBlocksPerSm = 4;
    input.stagesSerialized = false;
    model::StageInput s;
    s.typeCounts[1] = 1'000'000;           // 0.1 ms of instructions
    s.sharedTransactions = 8'000'000;      // conflicted: 0.4 ms
    s.sharedTransactionsIdeal = 2'000'000; // conflict-free: 0.1 ms
    s.activeWarpsPerSm = 16;
    input.stages.push_back(s);
    return input;
}

/** The hand-written serial loop the batch must reproduce exactly. */
std::vector<BatchResult>
serialReference(const std::vector<KernelCase> &kernels,
                const std::vector<arch::GpuSpec> &specs,
                const SweepSpec &sweep)
{
    std::vector<BatchResult> results;
    for (const KernelCase &kc : kernels) {
        for (const arch::GpuSpec &spec : specs) {
            BatchResult r;
            r.kernelName = kc.name;
            r.specName = spec.name;
            model::AnalysisSession session(spec);
            session.adoptCalibration(sharedFakeTables());
            PreparedLaunch launch = kc.make();
            r.analysis = session.analyze(launch.kernel, launch.cfg,
                                         *launch.gmem, launch.options);
            if (!sweep.empty())
                r.whatifs = runSweep(session.model(),
                                     r.analysis.input, sweep);
            r.ok = true;
            results.push_back(std::move(r));
        }
    }
    return results;
}

void
expectSameResults(const std::vector<BatchResult> &got,
                  const std::vector<BatchResult> &want)
{
    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i) {
        SCOPED_TRACE("result " + std::to_string(i));
        EXPECT_EQ(got[i].kernelName, want[i].kernelName);
        EXPECT_EQ(got[i].specName, want[i].specName);
        EXPECT_TRUE(got[i].ok) << got[i].error;
        ASSERT_TRUE(want[i].ok) << want[i].error;
        // The simulators and model are deterministic, so batch and
        // serial results must agree bit for bit, not just roughly.
        EXPECT_EQ(got[i].analysis.measuredMs(),
                  want[i].analysis.measuredMs());
        EXPECT_EQ(got[i].analysis.predictedMs(),
                  want[i].analysis.predictedMs());
        ASSERT_EQ(got[i].whatifs.size(), want[i].whatifs.size());
        for (size_t j = 0; j < got[i].whatifs.size(); ++j) {
            EXPECT_EQ(got[i].whatifs[j].point.kind,
                      want[i].whatifs[j].point.kind);
            EXPECT_EQ(got[i].whatifs[j].point.value,
                      want[i].whatifs[j].point.value);
            EXPECT_EQ(got[i].whatifs[j].speedup(),
                      want[i].whatifs[j].speedup());
        }
    }
}

TEST(SweepSpecTest, EnumeratesTheGridInDeclarationOrder)
{
    SweepSpec spec;
    spec.noBankConflicts = true;
    spec.warpsPerSm = {8.0, 16.0};
    spec.coalescingFractions = {0.5, 1.0};
    const auto points = spec.enumerate();
    ASSERT_EQ(points.size(), 5u);
    EXPECT_EQ(spec.size(), 5u);
    EXPECT_EQ(points[0].kind, SweepPoint::Kind::kNoBankConflicts);
    EXPECT_EQ(points[1].kind, SweepPoint::Kind::kWarpsPerSm);
    EXPECT_EQ(points[1].value, 8.0);
    EXPECT_EQ(points[2].value, 16.0);
    EXPECT_EQ(points[3].kind,
              SweepPoint::Kind::kCoalescingFraction);
    EXPECT_EQ(points[3].value, 0.5);
    EXPECT_EQ(points[4].value, 1.0);
}

TEST(SweepSpecTest, DefaultsCoverTheSpecsResidencyCeiling)
{
    const SweepSpec spec =
        SweepSpec::defaults(arch::GpuSpec::gtx285());
    EXPECT_TRUE(spec.noBankConflicts);
    ASSERT_FALSE(spec.warpsPerSm.empty());
    // 4, 8, 16, 32 for a 32-warp ceiling.
    EXPECT_EQ(spec.warpsPerSm.front(), 4.0);
    EXPECT_EQ(spec.warpsPerSm.back(), 32.0);
    EXPECT_FALSE(spec.coalescingFractions.empty());
}

class SweepRankingTest : public ::testing::Test
{
  protected:
    SweepRankingTest()
        : device_(arch::GpuSpec::gtx285()), calibrator_(device_),
          model_(calibrator_)
    {
        calibrator_.setTablesForTesting(fakeTables());
    }

    model::SimulatedDevice device_;
    model::Calibrator calibrator_;
    model::PerformanceModel model_;
};

TEST_F(SweepRankingTest, RanksBestSpeedupFirst)
{
    SweepSpec spec;
    spec.noBankConflicts = true;
    spec.warpsPerSm = {8.0, 16.0, 32.0};
    spec.coalescingFractions = {1.0};
    const auto ranked = runSweep(model_, crLikeInput(), spec);
    ASSERT_EQ(ranked.size(), 5u);
    for (size_t i = 1; i < ranked.size(); ++i) {
        EXPECT_GE(ranked[i - 1].speedup(), ranked[i].speedup())
            << "rank " << i << " out of order";
    }
}

TEST_F(SweepRankingTest, CrPaddingIsWorthIt)
{
    // The paper's Section 6 decision: before implementing the padded
    // cyclic reduction, the model predicts that removing the shared
    // bank conflicts is the optimization worth doing. Regression-pin
    // that a conflict-heavy input ranks conflict removal first with
    // the full 4x conflict factor as its predicted speedup.
    const auto ranked =
        runSweep(model_, crLikeInput(),
                 SweepSpec::defaults(arch::GpuSpec::gtx285()));
    ASSERT_FALSE(ranked.empty());
    EXPECT_EQ(ranked.front().point.kind,
              SweepPoint::Kind::kNoBankConflicts);
    EXPECT_NEAR(ranked.front().speedup(), 4.0, 0.01);
    // And it clearly beats every occupancy/coalescing alternative.
    for (size_t i = 1; i < ranked.size(); ++i)
        EXPECT_GT(ranked.front().speedup(),
                  ranked[i].speedup() + 1.0);
}

TEST_F(SweepRankingTest, TiesKeepEnumerationOrder)
{
    model::ModelInput input = crLikeInput();
    input.stages[0].sharedTransactions =
        input.stages[0].sharedTransactionsIdeal; // nothing to gain
    SweepSpec spec;
    spec.noBankConflicts = true;
    spec.warpsPerSm = {16.0}; // already at 16: no gain either
    const auto ranked = runSweep(model_, input, spec);
    ASSERT_EQ(ranked.size(), 2u);
    // Both points predict 1.0x; stable sort keeps enumeration order.
    EXPECT_EQ(ranked[0].point.kind,
              SweepPoint::Kind::kNoBankConflicts);
    EXPECT_EQ(ranked[1].point.kind, SweepPoint::Kind::kWarpsPerSm);
}

class BatchRunnerTest : public ::testing::Test
{
  protected:
    BatchRunnerTest()
    {
        kernels_.push_back(makeSaxpyCase("saxpy-small", 8, 128, 2.0f));
        kernels_.push_back(makeSaxpyCase("saxpy-wide", 4, 256, 3.0f));
        specs_.push_back(arch::GpuSpec::gtx285());
        specs_.push_back(arch::GpuSpec::gtx285MoreBlocks());
        sweep_.noBankConflicts = true;
        sweep_.warpsPerSm = {8.0, 32.0};
        sweep_.coalescingFractions = {1.0};
    }

    std::unique_ptr<BatchRunner> makeRunner(int threads)
    {
        BatchRunner::Options opts;
        opts.numThreads = threads;
        auto runner = std::make_unique<BatchRunner>(opts);
        for (const auto &spec : specs_)
            runner->adoptCalibration(spec, sharedFakeTables());
        return runner;
    }

    std::vector<KernelCase> kernels_;
    std::vector<arch::GpuSpec> specs_;
    SweepSpec sweep_;
};

TEST_F(BatchRunnerTest, MatchesTheSerialLoopExactly)
{
    auto runner = makeRunner(4);
    const auto got = runner->run(kernels_, specs_, sweep_);
    const auto want = serialReference(kernels_, specs_, sweep_);
    expectSameResults(got, want);
    // Kernel-major order: kernels[0] on every spec first.
    ASSERT_EQ(got.size(), 4u);
    EXPECT_EQ(got[0].kernelName, "saxpy-small");
    EXPECT_EQ(got[0].specName, specs_[0].name);
    EXPECT_EQ(got[1].kernelName, "saxpy-small");
    EXPECT_EQ(got[1].specName, specs_[1].name);
    EXPECT_EQ(got[2].kernelName, "saxpy-wide");
}

TEST_F(BatchRunnerTest, DeterministicAcrossWorkerCounts)
{
    const auto reference =
        makeRunner(1)->run(kernels_, specs_, sweep_);
    for (int threads : {2, 3, 4, 8}) {
        SCOPED_TRACE("threads = " + std::to_string(threads));
        const auto got =
            makeRunner(threads)->run(kernels_, specs_, sweep_);
        expectSameResults(got, reference);
    }
}

TEST_F(BatchRunnerTest, EmptySweepStillAnalyzes)
{
    auto runner = makeRunner(2);
    const auto results =
        runner->run(kernels_, specs_, SweepSpec{});
    ASSERT_EQ(results.size(), 4u);
    for (const auto &r : results) {
        EXPECT_TRUE(r.ok) << r.error;
        EXPECT_TRUE(r.whatifs.empty());
        EXPECT_EQ(r.bestSpeedup(), 1.0);
        EXPECT_GT(r.analysis.predictedMs(), 0.0);
    }
}

TEST_F(BatchRunnerTest, FailingCaseDoesNotPoisonTheBatch)
{
    std::vector<KernelCase> kernels = kernels_;
    KernelCase broken;
    broken.name = "broken";
    broken.make = []() -> PreparedLaunch {
        throw std::runtime_error("factory exploded");
    };
    kernels.insert(kernels.begin() + 1, broken);

    auto runner = makeRunner(4);
    const auto results = runner->run(kernels, specs_, sweep_);
    ASSERT_EQ(results.size(), 6u);
    for (const auto &r : results) {
        if (r.kernelName == "broken") {
            EXPECT_FALSE(r.ok);
            EXPECT_NE(r.error.find("factory exploded"),
                      std::string::npos);
        } else {
            EXPECT_TRUE(r.ok) << r.error;
        }
    }
}

TEST_F(BatchRunnerTest, MissingFactoryIsReportedNotFatal)
{
    KernelCase empty;
    empty.name = "no-factory";
    auto runner = makeRunner(1);
    const auto results =
        runner->run({empty}, {specs_[0]}, SweepSpec{});
    ASSERT_EQ(results.size(), 1u);
    EXPECT_FALSE(results[0].ok);
    EXPECT_NE(results[0].error.find("factory"), std::string::npos);
}

TEST_F(BatchRunnerTest, CalibrationIsSharedPerSpec)
{
    auto runner = makeRunner(2);
    const auto a = runner->calibrationFor(specs_[0]);
    const auto b = runner->calibrationFor(specs_[0]);
    const auto c = runner->calibrationFor(specs_[1]);
    EXPECT_EQ(a.get(), b.get()) << "same spec must share one table";
    EXPECT_NE(a.get(), c.get())
        << "distinct specs must not alias each other's memo entry";
}

TEST(DemoCaseTest, ConflictedSharedKernelRanksConflictRemovalFirst)
{
    // End-to-end CR-padding story on a really simulated kernel: a
    // stride-8 shared access pattern bank-conflicts 8-ways, and the
    // sweep must surface conflict removal as the top optimization.
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    BatchRunner::Options opts;
    opts.numThreads = 2;
    BatchRunner runner(opts);
    runner.adoptCalibration(spec, sharedFakeTables());

    SweepSpec sweep;
    sweep.noBankConflicts = true;
    sweep.warpsPerSm = {32.0};
    const auto results = runner.run(
        {makeSharedConflictCase("cr-like", 16, 128, 8)}, {spec},
        sweep);
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].ok) << results[0].error;

    uint64_t conflicted = 0;
    uint64_t ideal = 0;
    for (const auto &s : results[0].analysis.input.stages) {
        conflicted += s.sharedTransactions;
        ideal += s.sharedTransactionsIdeal;
    }
    EXPECT_GT(conflicted, 4 * ideal)
        << "stride-8 pattern should conflict heavily";
    ASSERT_FALSE(results[0].whatifs.empty());
    EXPECT_EQ(results[0].whatifs.front().point.kind,
              SweepPoint::Kind::kNoBankConflicts);
    EXPECT_GT(results[0].bestSpeedup(), 1.5);
}

TEST_F(BatchRunnerTest, StreamEqualsRunEqualsSerialBitForBit)
{
    const auto serial = serialReference(kernels_, specs_, sweep_);
    for (int threads : {1, 2, 4, 8}) {
        SCOPED_TRACE("threads = " + std::to_string(threads));
        auto runner = makeRunner(threads);
        const auto batch = runner->run(kernels_, specs_, sweep_);
        expectSameResults(batch, serial);

        // Stream the same batch on a fresh runner and reorder by the
        // delivered kernel-major index: bit-identical again.
        auto streamer = makeRunner(threads);
        std::vector<BatchResult> streamed(batch.size());
        std::vector<int> delivered(batch.size(), 0);
        const auto stats = streamer->runStream(
            kernels_, specs_, sweep_,
            [&](size_t index, BatchResult r) {
                ASSERT_LT(index, streamed.size());
                ++delivered[index];
                streamed[index] = std::move(r);
            });
        expectSameResults(streamed, serial);
        for (size_t i = 0; i < delivered.size(); ++i)
            EXPECT_EQ(delivered[i], 1) << "cell " << i;
        EXPECT_EQ(stats.cells, batch.size());
        EXPECT_GT(stats.firstResultSeconds, 0.0);
        EXPECT_GE(stats.totalSeconds, stats.firstResultSeconds);
    }
}

TEST_F(BatchRunnerTest, StreamIsBitIdenticalColdAndWarmStore)
{
    const std::string dir = ::testing::TempDir() + "gpuperf-stream-" +
                            std::to_string(::getpid());
    const auto serial = serialReference(kernels_, specs_, sweep_);

    auto make_store_runner = [&]() {
        BatchRunner::Options opts;
        opts.numThreads = 4;
        opts.storeDir = dir;
        auto runner = std::make_unique<BatchRunner>(opts);
        for (const auto &spec : specs_)
            runner->adoptCalibration(spec, sharedFakeTables());
        return runner;
    };

    auto collect = [&](BatchRunner &runner) {
        std::vector<BatchResult> out(kernels_.size() * specs_.size());
        runner.runStream(kernels_, specs_, sweep_,
                         [&](size_t index, BatchResult r) {
                             out[index] = std::move(r);
                         });
        return out;
    };

    // Cold: simulates and fills the store through writer nodes.
    auto cold_runner = make_store_runner();
    const auto cold = collect(*cold_runner);
    expectSameResults(cold, serial);
    ASSERT_NE(cold_runner->resultStore(), nullptr);

    // Warm, fresh runner (a "process restart"): cells stream straight
    // from the result store, still bit-identical, zero simulations.
    auto warm_runner = make_store_runner();
    const auto warm = collect(*warm_runner);
    expectSameResults(warm, serial);
    EXPECT_EQ(warm_runner->profileStore()->hits() +
                  warm_runner->profileStore()->misses(),
              0u)
        << "warm streamed cells must not touch profile payloads";
}

TEST_F(BatchRunnerTest, CallbackExceptionDoesNotWedgeTheBatch)
{
    auto runner = makeRunner(4);
    std::atomic<int> invocations{0};
    bool threw = false;
    try {
        runner->runStream(kernels_, specs_, sweep_,
                          [&](size_t, BatchResult) {
                              ++invocations;
                              throw std::runtime_error(
                                  "consumer exploded");
                          });
    } catch (const std::runtime_error &e) {
        threw = true;
        EXPECT_STREQ(e.what(), "consumer exploded");
    }
    EXPECT_TRUE(threw) << "the callback's exception must surface";
    EXPECT_EQ(invocations.load(), 1)
        << "delivery stops after the first callback exception";

    // The runner survives: the same batch still runs to completion.
    const auto results = runner->run(kernels_, specs_, sweep_);
    ASSERT_EQ(results.size(), kernels_.size() * specs_.size());
    for (const auto &r : results)
        EXPECT_TRUE(r.ok) << r.error;
}

TEST_F(BatchRunnerTest, ThrowingFactoryRunsOncePerFingerprint)
{
    // Both specs share a funcsim fingerprint, so the broken case has
    // ONE prepare node: its factory must explode exactly once, with
    // the captured error reused by every spec variant's cell (it
    // used to pay a rebuild attempt per cell on the key-only path).
    auto counter = std::make_shared<std::atomic<int>>(0);
    KernelCase broken;
    broken.name = "broken";
    broken.make = [counter]() -> PreparedLaunch {
        ++*counter;
        throw std::runtime_error("factory exploded");
    };

    const std::string dir = ::testing::TempDir() + "gpuperf-broken-" +
                            std::to_string(::getpid());
    BatchRunner::Options opts;
    opts.numThreads = 4;
    opts.storeDir = dir; // the key-only warm path needs a store
    BatchRunner runner(opts);
    for (const auto &spec : specs_)
        runner.adoptCalibration(spec, sharedFakeTables());

    const auto results = runner.run({broken}, specs_, sweep_);
    ASSERT_EQ(results.size(), specs_.size());
    for (const auto &r : results) {
        EXPECT_FALSE(r.ok);
        EXPECT_NE(r.error.find("factory exploded"), std::string::npos);
    }
    EXPECT_EQ(counter->load(), 1)
        << "sibling cells must reuse the captured factory error";
}

TEST(BatchRunnerRaceTest, SameContentCasesUnderDifferentNamesShareTiming)
{
    // Two cases with IDENTICAL kernel content under different names
    // share one content-keyed timing node but have distinct
    // position-keyed profile nodes: the second cell's analyze node
    // must wait for its OWN profile node, not just the shared timing
    // node (which is wired to the first cell's profile). Regression
    // for a scheduling race that aborted on a null profile; iterate a
    // few times to give any mis-ordering a chance to surface.
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    const auto tables = sharedFakeTables();
    for (int iter = 0; iter < 10; ++iter) {
        SCOPED_TRACE("iteration " + std::to_string(iter));
        BatchRunner::Options opts;
        opts.numThreads = 8;
        BatchRunner runner(opts);
        runner.adoptCalibration(spec, tables);
        const auto results = runner.run(
            {makeSaxpyCase("twin-a", 16, 128, 2.0f),
             makeSaxpyCase("twin-b", 16, 128, 2.0f)},
            {spec}, SweepSpec{});
        ASSERT_EQ(results.size(), 2u);
        for (const auto &r : results)
            ASSERT_TRUE(r.ok) << r.error;
        // Identical content ⇒ identical timing and prediction.
        EXPECT_EQ(results[0].analysis.measuredMs(),
                  results[1].analysis.measuredMs());
        EXPECT_EQ(results[0].analysis.predictedMs(),
                  results[1].analysis.predictedMs());
    }
}

TEST(DemoCaseTest, ReductionMatchesTheHostReference)
{
    const int grid = 12;
    const int block = 256;
    auto kc = driver::makeReductionCase("reduce", grid, block);
    auto launch = kc.make();

    // Mirror the factory's allocation order (x then y, default
    // alignment) against an identically sized arena to locate the
    // arrays without exposing raw addresses in the case API.
    const size_t n = static_cast<size_t>(grid) * block;
    funcsim::GlobalMemory probe(n * 4 + grid * 4 + (1u << 20));
    const uint64_t x_base = probe.alloc(n * 4);
    const uint64_t y_base = probe.alloc(grid * 4);

    // Host reference: a plain per-block loop. The input values are
    // exact in f32 under any association, so the kernel's tree order
    // must reproduce this EXACTLY, not approximately.
    std::vector<float> want(grid, 0.0f);
    for (int b = 0; b < grid; ++b) {
        for (int t = 0; t < block; ++t)
            want[b] += launch.gmem->f32(x_base)[b * block + t];
    }

    funcsim::FunctionalSimulator sim(arch::GpuSpec::gtx285());
    funcsim::RunOptions opts;
    opts.collectTrace = true;
    auto res = sim.run(launch.kernel, launch.cfg, *launch.gmem, opts);

    for (int b = 0; b < grid; ++b) {
        EXPECT_EQ(launch.gmem->f32(y_base)[b], want[b])
            << "block " << b;
    }
    // One staging barrier plus log2(block) tree passes.
    EXPECT_EQ(res.stats.barriersPerBlock, 9);
}

TEST(DemoCaseTest, ReductionAnalyzesInABatch)
{
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    BatchRunner::Options opts;
    opts.numThreads = 2;
    BatchRunner runner(opts);
    runner.adoptCalibration(spec, sharedFakeTables());
    const auto results = runner.run(
        {makeReductionCase("reduce", 16, 128)}, {spec}, SweepSpec{});
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].ok) << results[0].error;
    EXPECT_GT(results[0].analysis.predictedMs(), 0.0);
    EXPECT_GT(results[0].analysis.measuredMs(), 0.0);
}

TEST(DemoCaseTest, HistogramMatchesTheHostReference)
{
    const int grid = 6;
    const int block = 128;
    const int bins = 8;
    const int items = 4;
    auto kc = driver::makeHistogramCase("hist", grid, block, bins,
                                        items);
    auto launch = kc.make();

    // Mirror the factory's allocation order (x then y) to locate the
    // arrays without exposing raw addresses in the case API.
    const int total = grid * block;
    const size_t n = static_cast<size_t>(total) * items;
    funcsim::GlobalMemory probe(n * 4 +
                                static_cast<size_t>(grid) * bins * 4 +
                                (1u << 20));
    const uint64_t x_base = probe.alloc(n * 4);
    const uint64_t y_base = probe.alloc(grid * bins * 4);

    // Host reference: integer counts per (block, bin) — the kernel's
    // privatized counters must reproduce them EXACTLY.
    std::vector<uint32_t> want(static_cast<size_t>(grid) * bins, 0);
    for (int t = 0; t < items; ++t) {
        for (int g = 0; g < total; ++g) {
            const size_t idx = static_cast<size_t>(g) +
                               static_cast<size_t>(t) * total;
            const uint32_t v = launch.gmem->u32(x_base)[idx];
            ++want[static_cast<size_t>(g / block) * bins +
                   (v & (bins - 1))];
        }
    }

    funcsim::FunctionalSimulator sim(arch::GpuSpec::gtx285());
    funcsim::RunOptions opts;
    opts.collectTrace = true;
    auto res = sim.run(launch.kernel, launch.cfg, *launch.gmem, opts);

    uint64_t counted = 0;
    for (int b = 0; b < grid; ++b) {
        for (int k = 0; k < bins; ++k) {
            EXPECT_EQ(launch.gmem->u32(y_base)[b * bins + k],
                      want[static_cast<size_t>(b) * bins + k])
                << "block " << b << " bin " << k;
            counted += launch.gmem->u32(y_base)[b * bins + k];
        }
    }
    EXPECT_EQ(counted, n) << "every input lands in exactly one bin";
    // One barrier between the binned passes and the merge tail.
    EXPECT_EQ(res.stats.barriersPerBlock, 1);

    // The data-dependent private-counter writes contend: the shared
    // traffic must be measurably conflicted (that is the point of the
    // workload), unlike a stride-1 pattern.
    uint64_t xacts = 0;
    uint64_t ideal = 0;
    for (const auto &s : res.stats.stages) {
        xacts += s.sharedTransactions;
        ideal += s.sharedTransactionsIdeal;
    }
    EXPECT_GT(xacts, ideal) << "privatized layout should bank-conflict";
}

TEST(DemoCaseTest, HistogramAnalyzesInABatch)
{
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    BatchRunner::Options opts;
    opts.numThreads = 2;
    BatchRunner runner(opts);
    runner.adoptCalibration(spec, sharedFakeTables());
    const auto results = runner.run(
        {makeHistogramCase("hist", 8, 128, 8, 4)}, {spec},
        SweepSpec{});
    ASSERT_EQ(results.size(), 1u);
    ASSERT_TRUE(results[0].ok) << results[0].error;
    EXPECT_GT(results[0].analysis.predictedMs(), 0.0);
    EXPECT_GT(results[0].analysis.measuredMs(), 0.0);
}

TEST(BatchSerialApiTest, RunSerialKeepsKernelMajorOrder)
{
    // runSerial() calibrates for real; shrink the machine so the
    // microbenchmark sweep stays cheap while still covering the
    // public serial entry point end to end.
    arch::GpuSpec tiny = arch::GpuSpec::gtx285();
    tiny.name = "GTX tiny";
    tiny.numSms = 3;
    tiny.maxWarpsPerSm = 8;
    tiny.maxThreadsPerSm = 256;
    tiny.maxThreadsPerBlock = 256;
    tiny.validate();

    std::vector<KernelCase> kernels;
    kernels.push_back(makeSaxpyCase("saxpy", 4, 128, 2.0f));
    std::vector<arch::GpuSpec> specs = {tiny};
    SweepSpec sweep;
    sweep.noBankConflicts = true;
    const auto results = runSerial(kernels, specs, sweep);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].ok) << results[0].error;
    EXPECT_EQ(results[0].kernelName, "saxpy");
    ASSERT_EQ(results[0].whatifs.size(), 1u);
    EXPECT_GE(results[0].bestSpeedup(), 1.0);
}

} // namespace
} // namespace driver
} // namespace gpuperf
