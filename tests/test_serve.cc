/**
 * @file
 * The socket transport: gpuperf-serve's Server multiplexes many
 * concurrent framed clients onto one AnalysisService with responses
 * bit-identical to in-process execution, admission control rejects
 * over-quota requests visibly, and every transport failure mode —
 * client disconnect mid-request, half-written frames, oversized
 * frames, shutdown with in-flight cells — is contained: cells are
 * delivered or failed, never dropped, and the daemon never crashes.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "api/client.h"
#include "api/codecs.h"
#include "api/server.h"
#include "api/service.h"
#include "api/transport.h"
#include "common/socket.h"
#include "store/serializer.h"

namespace gpuperf {
namespace api {
namespace {

std::string
freshSocketPath(const std::string &tag)
{
    static int counter = 0;
    // Keep it short: sun_path caps out around 100 bytes.
    return "/tmp/gpuperf-serve-" + tag + "-" +
           std::to_string(::getpid()) + "-" +
           std::to_string(counter++) + ".sock";
}

model::CalibrationTables
fakeTables()
{
    model::CalibrationTables t;
    t.maxWarps = 32;
    t.bytesPerPass = 64;
    for (int type = 0; type < arch::kNumInstrTypes; ++type) {
        t.instrThroughput[type].assign(33, 0.0);
        for (int w = 1; w <= 32; ++w)
            t.instrThroughput[type][w] = 1e10 * std::min(1.0, w / 8.0);
    }
    t.sharedPassThroughput.assign(33, 0.0);
    for (int w = 1; w <= 32; ++w)
        t.sharedPassThroughput[w] = 2e10 * std::min(1.0, w / 8.0);
    return t;
}

std::shared_ptr<const model::CalibrationTables>
sharedFakeTables()
{
    static const auto tables =
        std::make_shared<const model::CalibrationTables>(fakeTables());
    return tables;
}

/** 3 kernels x 2 specs, no store — fake calibration keeps it fast. */
AnalysisRequest
testRequest()
{
    AnalysisRequest req;
    req.jobName = "serve-test";
    req.kernels.push_back(KernelJob::fromRef(
        "saxpy-small", CaseRef{"saxpy", {8, 128}, {2.0}}));
    req.kernels.push_back(KernelJob::fromRef(
        "conflicted", CaseRef{"shared-conflict", {8, 128, 8, 32}, {}}));
    req.kernels.push_back(KernelJob::fromRef(
        "hist", CaseRef{"histogram", {6, 128, 8, 4}, {}}));
    req.specs.push_back(arch::GpuSpec::gtx285());
    req.specs.push_back(arch::GpuSpec::gtx285MoreBlocks());
    req.sweep.noBankConflicts = true;
    req.sweep.warpsPerSm = {8.0, 32.0};
    req.sweep.coalescingFractions = {1.0};
    req.exec.numThreads = 2;
    return req;
}

void
adoptAll(AnalysisService &service, const AnalysisRequest &req)
{
    for (const arch::GpuSpec &spec : req.specs)
        service.adoptCalibration(req, spec, sharedFakeTables());
}

void
expectEqual(const AnalysisResponse &got, const AnalysisResponse &want)
{
    std::string why;
    EXPECT_TRUE(responsesEqual(got, want, &why)) << why;
}

/** A started server plus the in-process reference it must match. */
struct Rig
{
    std::string unixPath;
    std::unique_ptr<Server> server;
    AnalysisService reference;
    AnalysisRequest req = testRequest();

    explicit Rig(const std::string &tag, bool tcp = false)
    {
        unixPath = freshSocketPath(tag);
        std::vector<Endpoint> endpoints = {Endpoint::parse(
            "unix:" + unixPath, Endpoint::Role::kServer)};
        if (tcp) // ephemeral port
            endpoints.push_back(Endpoint::parse(
                "tcp:127.0.0.1:0", Endpoint::Role::kServer));
        server = std::make_unique<Server>(endpoints);
        server->start();
        adoptAll(server->service(), req);
        adoptAll(reference, req);
    }

    AnalysisResponse expected() { return reference.run(req); }
};

// --- Bit-identity across transports -----------------------------------

TEST(ServeTest, UnixAndTcpAreBitIdenticalToInProcess)
{
    Rig rig("bitident", /*tcp=*/true);
    const AnalysisResponse want = rig.expected();

    ServeClient over_unix = ServeClient::overUnix(rig.unixPath);
    expectEqual(over_unix.run(rig.req), want);

    ASSERT_GT(rig.server->tcpPort(), 0);
    ServeClient over_tcp =
        ServeClient::overTcp("127.0.0.1", rig.server->tcpPort());
    expectEqual(over_tcp.run(rig.req), want);

    // Repeated requests reuse the connection (and the server's warm
    // executor cache).
    expectEqual(over_unix.run(rig.req), want);

    const ServerStats stats = rig.server->stats();
    EXPECT_EQ(stats.requests, 3u);
    EXPECT_EQ(stats.cells, 3u * want.cells.size());
    EXPECT_EQ(stats.rejectedRequests, 0u);
}

TEST(ServeTest, JsonRequestsServeIdentically)
{
    Rig rig("json");
    const AnalysisResponse want = rig.expected();
    ServeClient client = ServeClient::overUnix(rig.unixPath);
    client.setJsonRequests(true);
    expectEqual(client.run(rig.req), want);
}

TEST(ServeTest, MakeTransportReachesAServer)
{
    Rig rig("uri");
    const auto transport =
        makeTransport("unix:" + rig.unixPath);
    EXPECT_EQ(transport->describe(), "unix:" + rig.unixPath);
    expectEqual(transport->run(rig.req), rig.expected());

    EXPECT_THROW(makeTransport("carrier-pigeon:coop"),
                 std::runtime_error);
    EXPECT_THROW(makeTransport("tcp:127.0.0.1"), std::runtime_error);
    EXPECT_THROW(makeTransport("tcp:127.0.0.1:notaport"),
                 std::runtime_error);
    EXPECT_THROW(makeTransport("spool:"), std::runtime_error);
}

// --- Concurrency ------------------------------------------------------

TEST(ServeTest, ConcurrentClientsStreamEveryCellOnce)
{
    Rig rig("concurrent", /*tcp=*/true);
    AnalysisRequest req = rig.req;
    req.exec.delivery = ExecutionPolicy::Delivery::kStream;
    const AnalysisResponse want = rig.expected();

    constexpr int kClients = 6;
    std::vector<std::thread> threads;
    std::vector<std::string> failures(kClients);
    for (int c = 0; c < kClients; ++c) {
        threads.emplace_back([&, c] {
            try {
                // Alternate transports so both listeners see load.
                ServeClient client =
                    (c % 2 == 0)
                        ? ServeClient::overUnix(rig.unixPath)
                        : ServeClient::overTcp(
                              "127.0.0.1", rig.server->tcpPort());
                std::vector<int> delivered(want.cells.size(), 0);
                const AnalysisResponse got = client.run(
                    req, [&](size_t index,
                             const driver::BatchResult &cell) {
                        ASSERT_LT(index, delivered.size());
                        ++delivered[index];
                        EXPECT_EQ(cell.kernelName,
                                  want.cells[index].kernelName);
                    });
                std::string why;
                if (!responsesEqual(got, want, &why))
                    failures[c] = why;
                for (size_t i = 0; i < delivered.size(); ++i) {
                    if (delivered[i] != 1)
                        failures[c] = "cell " + std::to_string(i) +
                                      " delivered " +
                                      std::to_string(delivered[i]) +
                                      " times";
                }
            } catch (const std::exception &e) {
                failures[c] = e.what();
            }
        });
    }
    for (std::thread &t : threads)
        t.join();
    for (int c = 0; c < kClients; ++c)
        EXPECT_TRUE(failures[c].empty())
            << "client " << c << ": " << failures[c];

    const ServerStats stats = rig.server->stats();
    EXPECT_EQ(stats.requests, static_cast<uint64_t>(kClients));
    EXPECT_EQ(stats.cells, kClients * want.cells.size());
}

TEST(ServeTest, RequestLargerThanInFlightBoundStillAdmitsWhenIdle)
{
    // A lone request bigger than maxInFlightCells must execute, not
    // deadlock against the admission gate.
    const std::string path = freshSocketPath("bigreq");
    Server server(Endpoint::parse("unix:" + path + "?max-inflight=1",
                                  Endpoint::Role::kServer));
    server.start();
    const AnalysisRequest req = testRequest();
    adoptAll(server.service(), req);

    ServeClient client = ServeClient::overUnix(path);
    const AnalysisResponse got = client.run(req);
    EXPECT_EQ(got.cells.size(),
              req.kernels.size() * req.specs.size());
}

// --- Admission control ------------------------------------------------

TEST(ServeTest, QuotaRejectsOversizedRequestsButKeepsTheConnection)
{
    const std::string path = freshSocketPath("quota");
    Server server(Endpoint::parse("unix:" + path + "?max-cells=1",
                                  Endpoint::Role::kServer));
    server.start();
    AnalysisRequest req = testRequest();
    adoptAll(server.service(), req);

    ServeClient client = ServeClient::overUnix(path);
    EXPECT_THROW(
        {
            try {
                client.run(req);
            } catch (const std::runtime_error &e) {
                EXPECT_NE(std::string(e.what()).find("quota"),
                          std::string::npos)
                    << e.what();
                throw;
            }
        },
        std::runtime_error);

    // The same connection then serves an in-quota request.
    req.kernels = {req.kernels[0]};
    req.specs = {req.specs[0]};
    const AnalysisResponse got = client.run(req);
    ASSERT_EQ(got.cells.size(), 1u);
    EXPECT_TRUE(got.cells[0].ok) << got.cells[0].error;
    EXPECT_EQ(server.stats().rejectedRequests, 1u);
}

TEST(ServeTest, MalformedRequestGetsErrorNotACrash)
{
    Rig rig("malformed");
    std::string err;
    const int fd = connectUnix(rig.unixPath, &err);
    ASSERT_GE(fd, 0) << err;
    ASSERT_TRUE(
        writeFrame(fd, FrameType::kRequest, "this is not a request"));
    FrameType type;
    std::string body;
    ASSERT_EQ(readFrame(fd, &type, &body, kMaxFrameBytesDefault,
                        nullptr, &err),
              1)
        << err;
    EXPECT_EQ(type, FrameType::kError);
    EXPECT_NE(body.find("deserialize"), std::string::npos) << body;
    closeSocket(fd);
    EXPECT_EQ(rig.server->stats().rejectedRequests, 1u);
}

// --- Transport failure containment ------------------------------------

TEST(ServeTest, OversizedFrameIsRefusedBeforeAllocation)
{
    const std::string path = freshSocketPath("oversize");
    Server server(Endpoint::parse(
        "unix:" + path + "?max-frame-bytes=1024",
        Endpoint::Role::kServer));
    server.start();

    std::string err;
    const int fd = connectUnix(path, &err);
    ASSERT_GE(fd, 0) << err;
    // A frame header promising far more than the bound: the server
    // must refuse it from the length word alone — the payload is
    // never sent, so accepting would hang or allocate unboundedly.
    ASSERT_TRUE(writeFrame(fd, FrameType::kRequest,
                           std::string(2048, 'x')));
    FrameType type;
    std::string body;
    ASSERT_EQ(readFrame(fd, &type, &body, kMaxFrameBytesDefault,
                        nullptr, &err),
              1)
        << err;
    EXPECT_EQ(type, FrameType::kError);
    EXPECT_NE(body.find("exceeds"), std::string::npos) << body;
    closeSocket(fd);
}

TEST(ServeTest, HalfWrittenFramesAndGarbageAreContained)
{
    Rig rig("torn");

    // Half a header, then hangup.
    std::string err;
    int fd = connectUnix(rig.unixPath, &err);
    ASSERT_GE(fd, 0) << err;
    const char partial[2] = {'G', 'P'};
    ASSERT_TRUE(sendAll(fd, partial, sizeof(partial)));
    closeSocket(fd);

    // A full header promising a payload that never arrives.
    fd = connectUnix(rig.unixPath, &err);
    ASSERT_GE(fd, 0) << err;
    {
        store::ByteWriter w;
        w.u32(kFrameMagic);
        std::string header = w.bytes();
        header.push_back(static_cast<char>(FrameType::kRequest));
        store::ByteWriter len;
        len.u32(100);
        header += len.bytes();
        ASSERT_TRUE(sendAll(fd, header.data(), header.size()));
        ASSERT_TRUE(sendAll(fd, "abc", 3));
    }
    closeSocket(fd);

    // Garbage that is not a frame at all.
    fd = connectUnix(rig.unixPath, &err);
    ASSERT_GE(fd, 0) << err;
    ASSERT_TRUE(sendAll(fd, "GET / HTTP/1.1\r\n\r\n", 18));
    FrameType type;
    std::string body;
    EXPECT_EQ(readFrame(fd, &type, &body, kMaxFrameBytesDefault,
                        nullptr, &err),
              1);
    EXPECT_EQ(type, FrameType::kError);
    EXPECT_NE(body.find("magic"), std::string::npos) << body;
    closeSocket(fd);

    // A response frame where a request belongs.
    fd = connectUnix(rig.unixPath, &err);
    ASSERT_GE(fd, 0) << err;
    ASSERT_TRUE(writeFrame(fd, FrameType::kDone, ""));
    EXPECT_EQ(readFrame(fd, &type, &body, kMaxFrameBytesDefault,
                        nullptr, &err),
              1);
    EXPECT_EQ(type, FrameType::kError);
    closeSocket(fd);

    // After all that abuse the server still serves.
    ServeClient client = ServeClient::overUnix(rig.unixPath);
    expectEqual(client.run(rig.req), rig.expected());
}

TEST(ServeTest, ReadFrameIdleTimeoutIsDistinctFromFailure)
{
    int fds[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    FrameType type;
    std::string body;
    std::string err;
    // Nothing sent: the idle deadline expires as -2 — the stream is
    // still synchronized — not as a torn frame.
    EXPECT_EQ(readFrame(fds[0], &type, &body, kMaxFrameBytesDefault,
                        nullptr, &err, /*idle_timeout_seconds=*/0.3),
              -2);
    // Cancellation beats the idle wait even with no deadline at all.
    std::atomic<bool> cancel{true};
    EXPECT_EQ(readFrame(fds[0], &type, &body, kMaxFrameBytesDefault,
                        &cancel, &err, /*idle_timeout_seconds=*/-1.0),
              -1);
    // A frame on the wire reads fine under an infinite idle deadline.
    ASSERT_TRUE(writeFrame(fds[1], FrameType::kDone, "payload"));
    EXPECT_EQ(readFrame(fds[0], &type, &body, kMaxFrameBytesDefault,
                        nullptr, &err, /*idle_timeout_seconds=*/-1.0),
              1);
    EXPECT_EQ(type, FrameType::kDone);
    EXPECT_EQ(body, "payload");
    // Peer hangup is still a clean EOF, not an idle expiry.
    closeSocket(fds[1]);
    EXPECT_EQ(readFrame(fds[0], &type, &body, kMaxFrameBytesDefault,
                        nullptr, &err, /*idle_timeout_seconds=*/-1.0),
              0);
    closeSocket(fds[0]);
}

TEST(ServeTest, IdleConnectionsCloseCleanlyAndClientsReconnect)
{
    const std::string path = freshSocketPath("idle");
    Server server(Endpoint::parse(
        "unix:" + path + "?idle-timeout=0.3",
        Endpoint::Role::kServer));
    server.start();
    AnalysisRequest req = testRequest();
    req.kernels = {req.kernels[0]};
    req.specs = {req.specs[0]};
    adoptAll(server.service(), req);
    AnalysisService reference;
    adoptAll(reference, req);
    const AnalysisResponse want = reference.run(req);

    // A raw connection idle past the bound is closed CLEANLY: EOF,
    // no kError frame on the wire.
    std::string err;
    const int fd = connectUnix(path, &err);
    ASSERT_GE(fd, 0) << err;
    char byte;
    EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);
    closeSocket(fd);

    // A client whose cached connection the server closed as idle
    // retries transparently on a fresh connection.
    ServeClient client = ServeClient::overUnix(path);
    expectEqual(client.run(req), want);
    std::this_thread::sleep_for(std::chrono::milliseconds(800));
    expectEqual(client.run(req), want);

    const ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_EQ(stats.disconnects, 0u); // idle closes are not failures
}

TEST(ServeTest, ThrowingCellCallbackDoesNotPoisonTheClient)
{
    Rig rig("cbthrow");
    AnalysisRequest streaming = rig.req;
    streaming.exec.delivery = ExecutionPolicy::Delivery::kStream;

    ServeClient client = ServeClient::overUnix(rig.unixPath);
    EXPECT_THROW(
        client.run(streaming,
                   [](size_t, const driver::BatchResult &) {
                       throw std::runtime_error("caller bailed");
                   }),
        std::runtime_error);

    // The aborted exchange left kCell/kDone frames unread; the client
    // must not reuse that stream — the next request gets ITS OWN
    // response, never the previous exchange's leftover kDone.
    AnalysisRequest small = rig.req;
    small.kernels = {small.kernels[0]};
    small.specs = {small.specs[0]};
    const AnalysisResponse want = rig.reference.run(small);
    ASSERT_EQ(want.cells.size(), 1u);
    expectEqual(client.run(small), want);
}

TEST(ServeTest, ClientDisconnectMidRequestLeavesServerServing)
{
    Rig rig("hangup");

    // Send a full valid request, then vanish without reading the
    // response: the server executes, fails to deliver, and must shrug
    // it off (the disconnect counter is the only trace).
    std::string err;
    const int fd = connectUnix(rig.unixPath, &err);
    ASSERT_GE(fd, 0) << err;
    store::ByteWriter w;
    writeRequest(w, rig.req);
    ASSERT_TRUE(writeFrame(fd, FrameType::kRequest, w.bytes()));
    closeSocket(fd);

    // A well-behaved client still gets bit-identical service.
    ServeClient client = ServeClient::overUnix(rig.unixPath);
    expectEqual(client.run(rig.req), rig.expected());

    // The abandoned request was executed and its failed delivery
    // recorded, never wedged: both requests count (the abandoned
    // one's kDone write fails AFTER execution) plus one disconnect.
    // Its bookkeeping lands on its own thread; poll briefly.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    ServerStats stats = rig.server->stats();
    while ((stats.requests < 2u || stats.disconnects < 1u) &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        stats = rig.server->stats();
    }
    EXPECT_EQ(stats.requests, 2u);
    EXPECT_GE(stats.disconnects, 1u);
}

TEST(ServeTest, ShutdownDeliversInFlightCellsThenRefuses)
{
    Rig rig("shutdown");
    AnalysisRequest req = rig.req;
    req.exec.delivery = ExecutionPolicy::Delivery::kStream;
    const AnalysisResponse want = rig.expected();

    std::atomic<bool> first_cell{false};
    AnalysisResponse got;
    std::string failure;
    std::thread client_thread([&] {
        try {
            ServeClient client =
                ServeClient::overUnix(rig.unixPath);
            got = client.run(req,
                             [&](size_t, const driver::BatchResult &) {
                                 first_cell.store(true);
                             });
        } catch (const std::exception &e) {
            failure = e.what();
        }
    });

    // Stop the server while the request is demonstrably in flight.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (!first_cell.load() &&
           std::chrono::steady_clock::now() < deadline)
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    ASSERT_TRUE(first_cell.load()) << failure;
    rig.server->stop();
    client_thread.join();

    // The admitted request drained: every cell was delivered.
    ASSERT_TRUE(failure.empty()) << failure;
    expectEqual(got, want);

    // New connections are refused after stop (the listener is gone).
    std::string err;
    EXPECT_LT(connectUnix(rig.unixPath, &err), 0);
}

} // namespace
} // namespace api
} // namespace gpuperf
