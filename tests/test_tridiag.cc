/**
 * @file
 * Cyclic reduction: functional correctness against the Thomas
 * reference, bank-conflict behavior of CR vs CR-NBC, stage structure,
 * and the shared-memory transaction identity of paper Figure 7(b).
 */

#include <gtest/gtest.h>

#include "apps/tridiag/cyclic_reduction.h"
#include "arch/occupancy.h"
#include "funcsim/interpreter.h"

namespace gpuperf {
namespace apps {
namespace {

arch::GpuSpec
spec()
{
    return arch::GpuSpec::gtx285();
}

struct CrCase
{
    int n;
    int systems;
    bool padded;
};

class CrCorrectness : public ::testing::TestWithParam<CrCase> {};

TEST_P(CrCorrectness, MatchesThomas)
{
    const CrCase c = GetParam();
    funcsim::GlobalMemory gmem(64 << 20);
    TridiagProblem p = makeTridiagProblem(gmem, c.n, c.systems, c.padded);
    isa::Kernel k = makeCyclicReductionKernel(p);
    funcsim::FunctionalSimulator sim(spec());
    sim.run(k, p.launch(), gmem);
    EXPECT_LT(tridiagMaxError(gmem, p), 5e-3)
        << "n=" << c.n << " systems=" << c.systems
        << " padded=" << c.padded;
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CrCorrectness,
    ::testing::Values(CrCase{16, 1, false}, CrCase{16, 1, true},
                      CrCase{64, 4, false}, CrCase{64, 4, true},
                      CrCase{128, 3, false}, CrCase{256, 2, true},
                      CrCase{512, 2, false}, CrCase{512, 2, true}));

TEST(CyclicReduction, ThomasSolvesKnownSystem)
{
    // [2 1; 1 2] x = [3; 3] -> x = [1; 1].
    const float a[2] = {0.0f, 1.0f};
    const float b[2] = {2.0f, 2.0f};
    const float c[2] = {1.0f, 0.0f};
    const float d[2] = {3.0f, 3.0f};
    double x[2];
    cpuThomas(a, b, c, d, x, 2);
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 1.0, 1e-12);
}

TEST(CyclicReduction, ConflictFactorDoublesPerForwardStep)
{
    // Paper Figure 5: step k has min(2^k, 16)-way conflicts.
    funcsim::GlobalMemory gmem(16 << 20);
    TridiagProblem p = makeTridiagProblem(gmem, 512, 1, false);
    isa::Kernel k = makeCyclicReductionKernel(p, /*forward_only=*/true);
    funcsim::FunctionalSimulator sim(spec());
    auto res = sim.run(k, p.launch(), gmem);
    // Stage s = forward step s (stage 0 is the load).
    const auto &stages = res.stats.stages;
    ASSERT_GE(stages.size(), 10u);
    for (int step = 1; step <= 4; ++step) {
        const auto &s = stages[step];
        ASSERT_GT(s.sharedTransactionsIdeal, 0u) << "step " << step;
        const double factor =
            static_cast<double>(s.sharedTransactions) /
            s.sharedTransactionsIdeal;
        EXPECT_NEAR(factor, 1 << step, 0.45 * (1 << step))
            << "step " << step;
    }
}

TEST(CyclicReduction, PaddingRemovesMostConflicts)
{
    funcsim::GlobalMemory g1(16 << 20);
    funcsim::GlobalMemory g2(16 << 20);
    TridiagProblem cr = makeTridiagProblem(g1, 512, 1, false);
    TridiagProblem nbc = makeTridiagProblem(g2, 512, 1, true);
    funcsim::FunctionalSimulator sim(spec());
    auto r1 = sim.run(makeCyclicReductionKernel(cr), cr.launch(), g1);
    auto r2 = sim.run(makeCyclicReductionKernel(nbc), nbc.launch(), g2);

    const double f1 =
        static_cast<double>(r1.stats.totalSharedTransactions()) /
        std::max<uint64_t>(1, [&] {
            uint64_t v = 0;
            for (const auto &s : r1.stats.stages)
                v += s.sharedTransactionsIdeal;
            return v;
        }());
    const double f2 =
        static_cast<double>(r2.stats.totalSharedTransactions()) /
        std::max<uint64_t>(1, [&] {
            uint64_t v = 0;
            for (const auto &s : r2.stats.stages)
                v += s.sharedTransactionsIdeal;
            return v;
        }());
    EXPECT_GT(f1, 3.0);   // CR suffers heavy serialization
    EXPECT_LT(f2, 1.5);   // CR-NBC is nearly conflict-free
}

TEST(CyclicReduction, ForwardTransactionsStayFlatWithConflicts)
{
    // Paper Figure 7(b): the work halves per step but conflicts double,
    // so shared transactions stay roughly constant in steps 1..4.
    funcsim::GlobalMemory gmem(16 << 20);
    TridiagProblem p = makeTridiagProblem(gmem, 512, 1, false);
    funcsim::FunctionalSimulator sim(spec());
    auto res = sim.run(makeCyclicReductionKernel(p, true), p.launch(),
                       gmem);
    const auto &st = res.stats.stages;
    const double s1 = static_cast<double>(st[1].sharedTransactions);
    for (int step = 2; step <= 4; ++step) {
        const double s =
            static_cast<double>(st[step].sharedTransactions);
        EXPECT_GT(s, 0.5 * s1) << "step " << step;
        EXPECT_LT(s, 1.6 * s1) << "step " << step;
    }
    // Without conflicts the transactions would halve per step.
    const double i1 =
        static_cast<double>(st[1].sharedTransactionsIdeal);
    const double i3 =
        static_cast<double>(st[3].sharedTransactionsIdeal);
    EXPECT_NEAR(i3, i1 / 4.0, 0.35 * i1);
}

TEST(CyclicReduction, ActiveWarpsHalvePerStep)
{
    funcsim::GlobalMemory gmem(16 << 20);
    TridiagProblem p = makeTridiagProblem(gmem, 512, 1, false);
    funcsim::FunctionalSimulator sim(spec());
    auto res = sim.run(makeCyclicReductionKernel(p, true), p.launch(),
                       gmem);
    const auto &st = res.stats.stages;
    // Paper Figure 6: steps 1..3 run 8, 4, 2 warps; later steps 1.
    EXPECT_NEAR(st[1].activeWarpsPerBlock, 8.0, 0.01);
    EXPECT_NEAR(st[2].activeWarpsPerBlock, 4.0, 0.01);
    EXPECT_NEAR(st[3].activeWarpsPerBlock, 2.0, 0.01);
    EXPECT_NEAR(st[4].activeWarpsPerBlock, 1.0, 0.01);
    EXPECT_NEAR(st[5].activeWarpsPerBlock, 1.0, 0.01);
}

TEST(CyclicReduction, OneBlockPerSmBySharedUsage)
{
    funcsim::GlobalMemory gmem(16 << 20);
    TridiagProblem p = makeTridiagProblem(gmem, 512, 2, false);
    isa::Kernel k = makeCyclicReductionKernel(p);
    arch::KernelResources res{k.numRegisters(), k.sharedBytes(),
                              p.launch().blockDim};
    arch::Occupancy occ = arch::computeOccupancy(spec(), res);
    EXPECT_EQ(occ.residentBlocks, 1);
    EXPECT_EQ(occ.limit, arch::OccupancyLimit::SharedMemory);
}

TEST(CyclicReduction, StageCountMatchesStructure)
{
    funcsim::GlobalMemory gmem(16 << 20);
    TridiagProblem p = makeTridiagProblem(gmem, 64, 1, false);
    funcsim::FunctionalSimulator sim(spec());
    auto full = sim.run(makeCyclicReductionKernel(p), p.launch(), gmem);
    // load + 6 forward + solve + 6 backward + store = 15 stages.
    EXPECT_EQ(full.stats.stages.size(), 15u);
}

TEST(TridiagDeath, RejectsBadSizes)
{
    funcsim::GlobalMemory gmem(1 << 20);
    EXPECT_DEATH(makeTridiagProblem(gmem, 100, 1, false),
                 "power of two");
    EXPECT_DEATH(makeTridiagProblem(gmem, 8, 1, true), "multiple of 16");
}

} // namespace
} // namespace apps
} // namespace gpuperf
