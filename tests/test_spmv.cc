/**
 * @file
 * SpMV: format builders, kernel correctness for ELL / BELL+IM /
 * BELL+IMIV (with and without the texture path), and the traffic
 * analysis behind paper Figures 10 and 11(a).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "apps/spmv/kernels.h"
#include "apps/spmv/traffic.h"
#include "funcsim/interpreter.h"

namespace gpuperf {
namespace apps {
namespace {

arch::GpuSpec
spec()
{
    return arch::GpuSpec::gtx285();
}

BlockSparseMatrix
smallMatrix()
{
    return makeBandedBlockMatrix(/*block_rows=*/256, /*blocks_per_row=*/7,
                                 /*half_band=*/12);
}

double
maxAbsDiff(const std::vector<float> &y, const std::vector<double> &ref)
{
    double err = 0.0;
    for (size_t i = 0; i < ref.size(); ++i) {
        const double denom = std::max(1.0, std::fabs(ref[i]));
        err = std::max(err, std::fabs(y[i] - ref[i]) / denom);
    }
    return err;
}

TEST(SpmvMatrix, GeneratorProducesUniformBandedStructure)
{
    BlockSparseMatrix m = smallMatrix();
    EXPECT_TRUE(m.uniform());
    EXPECT_EQ(m.rows(), 768);
    EXPECT_EQ(m.maxRowEntries(), 21);
    EXPECT_EQ(m.storedEntries(), 256u * 7 * 9);
    for (int r = 0; r < m.blockRows; ++r) {
        bool has_diag = false;
        for (size_t i = 0; i < m.blockCols[r].size(); ++i) {
            const int c = m.blockCols[r][i];
            EXPECT_GE(c, r - 12);
            EXPECT_LE(c, r + 12);
            if (i > 0) {
                EXPECT_GT(c, m.blockCols[r][i - 1]);  // sorted unique
            }
            has_diag = has_diag || c == r;
        }
        EXPECT_TRUE(has_diag);
    }
}

TEST(SpmvMatrix, CpuReferenceOnHandBuiltMatrix)
{
    // 1 block-row, identity-like diagonal block.
    BlockSparseMatrix m;
    m.blockRows = 1;
    m.blockSize = 3;
    m.blockCols = {{0}};
    m.blockVals = {{1, 0, 0, 0, 1, 0, 0, 0, 1}};
    const float x[3] = {1.0f, 2.0f, 3.0f};
    double y[3];
    cpuSpmv(m, x, y);
    EXPECT_DOUBLE_EQ(y[0], 1.0);
    EXPECT_DOUBLE_EQ(y[1], 2.0);
    EXPECT_DOUBLE_EQ(y[2], 3.0);
}

struct SpmvKernelCase
{
    SpmvFormat format;
    bool texture;
};

class SpmvKernels : public ::testing::TestWithParam<SpmvKernelCase> {};

TEST_P(SpmvKernels, MatchesCpuReference)
{
    const SpmvKernelCase c = GetParam();
    BlockSparseMatrix m = smallMatrix();
    funcsim::GlobalMemory gmem(64 << 20);
    SpmvVectors v = makeVectors(gmem, m);

    arch::GpuSpec s = spec();
    s.textureCacheEnabled = c.texture;
    funcsim::FunctionalSimulator sim(s);

    bool interleaved_y = false;
    switch (c.format) {
      case SpmvFormat::kEll: {
        EllDeviceMatrix ell = buildEll(gmem, m);
        isa::Kernel k = makeEllKernel(ell, v, c.texture);
        sim.run(k, {spmvGridDim(ell.rows), kSpmvBlockDim}, gmem);
        break;
      }
      case SpmvFormat::kBell:
      case SpmvFormat::kBellIm: {
        BellDeviceMatrix bell =
            buildBell(gmem, m, c.format == SpmvFormat::kBellIm);
        isa::Kernel k = makeBellKernel(bell, v, false, c.texture);
        sim.run(k, {spmvGridDim(bell.blockRows), kSpmvBlockDim}, gmem);
        break;
      }
      case SpmvFormat::kBellImIv: {
        BellDeviceMatrix bell = buildBell(gmem, m, true);
        isa::Kernel k = makeBellKernel(bell, v, true, c.texture);
        sim.run(k, {spmvGridDim(bell.blockRows), kSpmvBlockDim}, gmem);
        interleaved_y = true;
        break;
      }
    }

    std::vector<double> ref(m.rows());
    cpuSpmv(m, gmem.f32(v.xBase), ref.data());
    EXPECT_LT(maxAbsDiff(readY(gmem, v, interleaved_y), ref), 1e-4);
}

INSTANTIATE_TEST_SUITE_P(
    Formats, SpmvKernels,
    ::testing::Values(SpmvKernelCase{SpmvFormat::kEll, false},
                      SpmvKernelCase{SpmvFormat::kEll, true},
                      SpmvKernelCase{SpmvFormat::kBell, false},
                      SpmvKernelCase{SpmvFormat::kBellIm, false},
                      SpmvKernelCase{SpmvFormat::kBellIm, true},
                      SpmvKernelCase{SpmvFormat::kBellImIv, false},
                      SpmvKernelCase{SpmvFormat::kBellImIv, true}));

TEST(SpmvTraffic, MatrixLoadsAreFourBytesWhenInterleaved)
{
    // Fully coalesced value streams cost exactly 4 B per entry.
    BlockSparseMatrix m = smallMatrix();
    for (int gran : {32, 16, 4}) {
        TrafficBreakdown ell = analyzeTraffic(m, SpmvFormat::kEll, gran);
        TrafficBreakdown im =
            analyzeTraffic(m, SpmvFormat::kBellIm, gran);
        EXPECT_NEAR(ell.matrixBytes, 4.0, 0.1) << gran;
        EXPECT_NEAR(im.matrixBytes, 4.0, 0.1) << gran;
    }
}

TEST(SpmvTraffic, BellSharesColumnIndexAcrossBlock)
{
    // 9 entries share one 4 B index: ~0.44 B per entry (Fig. 11a).
    BlockSparseMatrix m = smallMatrix();
    TrafficBreakdown im = analyzeTraffic(m, SpmvFormat::kBellIm, 32);
    EXPECT_NEAR(im.indexBytes, 4.0 / 9.0, 0.1);
    TrafficBreakdown ell = analyzeTraffic(m, SpmvFormat::kEll, 32);
    EXPECT_NEAR(ell.indexBytes, 4.0, 0.1);
}

TEST(SpmvTraffic, InterleavedVectorReducesVectorBytes)
{
    BlockSparseMatrix m = smallMatrix();
    for (int gran : {32, 16}) {
        TrafficBreakdown im =
            analyzeTraffic(m, SpmvFormat::kBellIm, gran);
        TrafficBreakdown imiv =
            analyzeTraffic(m, SpmvFormat::kBellImIv, gran);
        EXPECT_LT(imiv.vectorBytes, im.vectorBytes) << gran;
    }
}

TEST(SpmvTraffic, SmallerGranularityReducesVectorBytes)
{
    // Paper Figure 11(a): 32 B -> 16 B -> 4 B monotonically shrinks
    // the gathered-vector overfetch.
    BlockSparseMatrix m = smallMatrix();
    for (SpmvFormat f :
         {SpmvFormat::kEll, SpmvFormat::kBellIm, SpmvFormat::kBellImIv}) {
        const double b32 = analyzeTraffic(m, f, 32).vectorBytes;
        const double b16 = analyzeTraffic(m, f, 16).vectorBytes;
        const double b4 = analyzeTraffic(m, f, 4).vectorBytes;
        EXPECT_GE(b32, b16) << spmvFormatName(f);
        EXPECT_GE(b16, b4) << spmvFormatName(f);
        // At 4 B granularity the gather fetches only useful words
        // (4 B per entry at most, fewer when threads share words).
        EXPECT_LE(b4, 4.05) << spmvFormatName(f);
    }
}

TEST(SpmvTraffic, UninterleavedBellIsWorseThanInterleaved)
{
    BlockSparseMatrix m = smallMatrix();
    TrafficBreakdown plain = analyzeTraffic(m, SpmvFormat::kBell, 32);
    TrafficBreakdown im = analyzeTraffic(m, SpmvFormat::kBellIm, 32);
    EXPECT_GT(plain.matrixBytes, im.matrixBytes);
}

TEST(SpmvTraffic, TotalsAreSumOfParts)
{
    BlockSparseMatrix m = smallMatrix();
    TrafficBreakdown t = analyzeTraffic(m, SpmvFormat::kBellImIv, 32);
    EXPECT_DOUBLE_EQ(t.total(),
                     t.matrixBytes + t.indexBytes + t.vectorBytes);
}

TEST(SpmvStats, GatherIsUncoalescedInEll)
{
    BlockSparseMatrix m = smallMatrix();
    funcsim::GlobalMemory gmem(64 << 20);
    SpmvVectors v = makeVectors(gmem, m);
    EllDeviceMatrix ell = buildEll(gmem, m);
    funcsim::FunctionalSimulator sim(spec());
    auto res = sim.run(makeEllKernel(ell, v, false),
                       {spmvGridDim(ell.rows), kSpmvBlockDim}, gmem);
    uint64_t req = 0;
    uint64_t got = 0;
    for (const auto &s : res.stats.stages) {
        req += s.globalRequestBytes;
        got += s.globalBytes;
    }
    // Overfetch from the gathered x: transferred > requested.
    EXPECT_GT(got, req + req / 10);
}

TEST(SpmvFormats, InterleavedVectorRoundTrips)
{
    BlockSparseMatrix m = smallMatrix();
    funcsim::GlobalMemory gmem(16 << 20);
    SpmvVectors v = makeVectors(gmem, m);
    const float *x = gmem.f32(v.xBase);
    const float *xiv = gmem.f32(v.xIvBase);
    for (int r = 0; r < m.blockRows; ++r) {
        for (int e = 0; e < 3; ++e)
            EXPECT_EQ(xiv[e * m.blockRows + r], x[r * 3 + e]);
    }
}

} // namespace
} // namespace apps
} // namespace gpuperf
