/**
 * @file
 * ThreadPool tests: FIFO task start order, result and exception
 * propagation through futures, waitIdle, shutdown semantics, and
 * actual concurrency.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace gpuperf {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasksInFifoOrderWithOneWorker)
{
    ThreadPool pool(1);
    std::vector<int> order;
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 32; ++i)
        futures.push_back(pool.submit([i, &order]() {
            order.push_back(i); // single worker: no race
        }));
    for (auto &f : futures)
        f.get();
    ASSERT_EQ(order.size(), 32u);
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, ReturnsResultsThroughFutures)
{
    ThreadPool pool(4);
    std::vector<std::future<int>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([i]() { return i * i; }));
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures)
{
    ThreadPool pool(2);
    auto bad = pool.submit([]() -> int {
        throw std::runtime_error("task failed");
    });
    auto good = pool.submit([]() { return 7; });
    EXPECT_THROW(bad.get(), std::runtime_error);
    // A throwing task must not take the worker down with it.
    EXPECT_EQ(good.get(), 7);
    auto after = pool.submit([]() { return 8; });
    EXPECT_EQ(after.get(), 8);
}

TEST(ThreadPoolTest, WaitIdleBlocksUntilQueueDrains)
{
    ThreadPool pool(2);
    std::atomic<int> done{0};
    for (int i = 0; i < 16; ++i) {
        pool.submit([&done]() {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
            done.fetch_add(1);
        });
    }
    pool.waitIdle();
    EXPECT_EQ(done.load(), 16);
}

TEST(ThreadPoolTest, ShutdownDrainsQueuedTasks)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 8; ++i)
            pool.submit([&done]() { done.fetch_add(1); });
        pool.shutdown();
        EXPECT_EQ(done.load(), 8);
    }
}

TEST(ThreadPoolTest, SubmitAfterShutdownThrows)
{
    ThreadPool pool(1);
    pool.shutdown();
    EXPECT_THROW(pool.submit([]() {}), std::runtime_error);
}

TEST(ThreadPoolTest, DestructorCompletesQueuedWork)
{
    std::atomic<int> done{0};
    {
        ThreadPool pool(2);
        for (int i = 0; i < 8; ++i)
            pool.submit([&done]() { done.fetch_add(1); });
    }
    EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, ActuallyRunsTasksConcurrently)
{
    ThreadPool pool(2);
    std::mutex m;
    std::condition_variable cv;
    int arrived = 0;
    // Two tasks that can only finish once both have started: passes
    // iff the pool really runs them on two workers at once.
    auto rendezvous = [&]() {
        std::unique_lock<std::mutex> lock(m);
        ++arrived;
        cv.notify_all();
        cv.wait_for(lock, std::chrono::seconds(10),
                    [&]() { return arrived >= 2; });
        return arrived;
    };
    auto a = pool.submit(rendezvous);
    auto b = pool.submit(rendezvous);
    EXPECT_GE(a.get(), 2);
    EXPECT_GE(b.get(), 2);
}

TEST(ThreadPoolTest, ZeroThreadsMeansHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.numThreads(), 1);
    EXPECT_EQ(pool.numThreads(), ThreadPool::resolveThreads(0));
    auto f = pool.submit([]() { return 42; });
    EXPECT_EQ(f.get(), 42);
}

} // namespace
} // namespace gpuperf
