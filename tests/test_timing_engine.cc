/**
 * @file
 * Replay-engine differential tests: the event-driven engine must be
 * bit-identical — every TimingResult field, doubles compared exactly —
 * to the legacy scan engine for
 *
 *  - every demo kernel case x a grid of spec variants (including
 *    texture-cache and prime-bank machines),
 *  - batches run on 1..8 worker threads (which also pins that the
 *    event-driven engine kept BatchRunner deterministic), and
 *  - a seeded randomized machine-description fuzz (common/rng).
 *
 * Plus the timing-fingerprint layer: arch::TimingFingerprint captures
 * exactly the timing-relevant GpuSpec slice, and the BatchRunner
 * timing memo serves bit-identical results.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "driver/batch_runner.h"
#include "driver/demo_cases.h"
#include "common/rng.h"
#include "funcsim/profile.h"
#include "timing/simulator.h"

namespace gpuperf {
namespace timing {
namespace {

using driver::KernelCase;
using funcsim::FunctionalSimulator;

/**
 * Toy calibration tables (the test_batch.cc idiom): the batch tests
 * here pin TIMING behaviour, which never reads the tables, so
 * adopting fakes skips the expensive microbenchmark sweeps.
 */
std::shared_ptr<const model::CalibrationTables>
sharedFakeTables()
{
    model::CalibrationTables t;
    t.maxWarps = 32;
    t.bytesPerPass = 64;
    for (int type = 0; type < arch::kNumInstrTypes; ++type) {
        t.instrThroughput[type].assign(33, 0.0);
        for (int w = 1; w <= 32; ++w)
            t.instrThroughput[type][w] = 1e10 * std::min(1.0, w / 8.0);
    }
    t.sharedPassThroughput.assign(33, 0.0);
    for (int w = 1; w <= 32; ++w)
        t.sharedPassThroughput[w] = 2e10 * std::min(1.0, w / 8.0);
    return std::make_shared<const model::CalibrationTables>(
        std::move(t));
}

/** Functionally simulate a demo case once under @p spec. */
funcsim::RunResult
simulate(const KernelCase &kc, const arch::GpuSpec &spec)
{
    driver::PreparedLaunch launch = kc.make();
    FunctionalSimulator sim(spec);
    funcsim::RunOptions opts = launch.options;
    opts.collectTrace = true;
    return sim.run(launch.kernel, launch.cfg, *launch.gmem, opts);
}

/** Replay @p trace under both engines and require exact equality. */
void
expectEnginesAgree(const arch::GpuSpec &spec,
                   const funcsim::LaunchTrace &trace,
                   const std::string &label)
{
    const TimingResult legacy =
        TimingSimulator(spec, ReplayEngine::kLegacyScan).run(trace);
    const TimingResult event =
        TimingSimulator(spec, ReplayEngine::kEventDriven).run(trace);
    EXPECT_TRUE(event == legacy)
        << label << ": engines diverged (legacy " << legacy.cycles
        << " cycles / " << legacy.totalOps << " ops, event-driven "
        << event.cycles << " cycles / " << event.totalOps << " ops)";
}

std::vector<KernelCase>
demoCases()
{
    std::vector<KernelCase> cases;
    cases.push_back(driver::makeSaxpyCase("saxpy", 24, 256, 2.0f));
    cases.push_back(
        driver::makeStridedSaxpyCase("strided", 16, 256, 4));
    cases.push_back(
        driver::makeSharedConflictCase("conflict", 8, 128, 4, 32));
    cases.push_back(driver::makeStencil1dCase("stencil1d", 16, 256));
    cases.push_back(driver::makeSpmvEllCase("spmv-ell", 96, 7));
    return cases;
}

std::vector<arch::GpuSpec>
specGrid()
{
    std::vector<arch::GpuSpec> specs;
    specs.push_back(arch::GpuSpec::gtx285());
    specs.push_back(arch::GpuSpec::gtx285MoreBlocks());
    specs.push_back(arch::GpuSpec::gtx285BigResources());
    specs.push_back(arch::GpuSpec::gtx285PrimeBanks());
    specs.push_back(arch::GpuSpec::gtx285SmallSegments(32));
    arch::GpuSpec tex = arch::GpuSpec::gtx285();
    tex.name = "GTX 285 + texture cache";
    tex.textureCacheEnabled = true;
    specs.push_back(tex);
    arch::GpuSpec fast = arch::GpuSpec::gtx285();
    fast.name = "GTX 285 + 25% core clock";
    fast.coreClockHz *= 1.25;
    specs.push_back(fast);
    return specs;
}

TEST(ReplayEngines, BitIdenticalAcrossDemoCaseSpecGrid)
{
    for (const arch::GpuSpec &spec : specGrid()) {
        for (const KernelCase &kc : demoCases()) {
            const auto res = simulate(kc, spec);
            expectEnginesAgree(spec, res.trace,
                               kc.name + " x " + spec.name);
        }
    }
}

TEST(ReplayEngines, BitIdenticalOnBarrierHeavyAndTinyLaunches)
{
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    // One warp, one block: degenerate scheduling.
    {
        const auto res =
            simulate(driver::makeSaxpyCase("tiny", 1, 32, 1.0f), spec);
        expectEnginesAgree(spec, res.trace, "tiny");
    }
    // More blocks than resident slots: block-replacement waves.
    {
        const auto res = simulate(
            driver::makeStencil1dCase("waves", 4 * 30 * 3, 128), spec);
        expectEnginesAgree(spec, res.trace, "waves");
    }
    // Barrier-heavy (the stencil has a two-stage barrier structure)
    // under a machine whose occupancy differs.
    {
        const auto res = simulate(
            driver::makeStencil1dCase("bars", 90, 512),
            arch::GpuSpec::gtx285MoreBlocks());
        expectEnginesAgree(arch::GpuSpec::gtx285MoreBlocks(), res.trace,
                           "bars");
    }
}

TEST(ReplayEngines, BitIdenticalUnderRandomizedSpecFuzz)
{
    Rng rng(0x7411e5u);
    const auto cases = demoCases();
    for (int iter = 0; iter < 12; ++iter) {
        arch::GpuSpec s = arch::GpuSpec::gtx285();
        s.name = "fuzz-" + std::to_string(iter);
        // Timing-relevant knobs over valid ranges.
        s.smsPerCluster = static_cast<int>(rng.nextRange(1, 3));
        s.numSms =
            s.smsPerCluster * static_cast<int>(rng.nextRange(2, 10));
        s.aluDepCycles = static_cast<int>(rng.nextRange(4, 48));
        s.sharedDepCycles = static_cast<int>(rng.nextRange(24, 144));
        s.warpSharedPassIntervalCycles =
            static_cast<double>(rng.nextRange(2, 36));
        s.globalLatencyCycles = static_cast<int>(rng.nextRange(80, 900));
        s.transactionOverheadCycles =
            static_cast<int>(rng.nextRange(0, 8));
        s.issueOverheadCycles = 0.05 * rng.nextRange(0, 20);
        s.coreClockHz = 1e9 * (0.5 + rng.nextDouble());
        s.memClockHz = 1e9 * (1.0 + 2.0 * rng.nextDouble());
        s.maxBlocksPerSm = static_cast<int>(rng.nextRange(2, 16));
        s.registersPerSm = 8192 << rng.nextRange(0, 2);
        s.sharedMemPerSm = 16384 << rng.nextRange(0, 1);
        // Funcsim-relevant knobs too: the trace itself varies.
        s.numSharedBanks = static_cast<int>(rng.nextRange(8, 33));
        s.minSegmentBytes = 32 << rng.nextRange(0, 2);
        if (s.maxSegmentBytes < s.minSegmentBytes)
            s.maxSegmentBytes = s.minSegmentBytes;
        s.textureCacheEnabled = rng.nextBelow(2) == 0;
        s.validate();

        const KernelCase &kc = cases[rng.nextBelow(cases.size())];
        const auto res = simulate(kc, s);
        expectEnginesAgree(s, res.trace, s.name + " " + kc.name);
    }
}

TEST(ReplayEngines, BatchResultsIdenticalAcrossOneToEightThreads)
{
    const auto cases = demoCases();
    const std::vector<arch::GpuSpec> specs = {
        arch::GpuSpec::gtx285(), arch::GpuSpec::gtx285MoreBlocks()};
    driver::SweepSpec sweep;
    sweep.noBankConflicts = true;

    const auto tables = sharedFakeTables();
    std::vector<driver::BatchResult> reference;
    for (int threads = 1; threads <= 8; ++threads) {
        driver::BatchRunner::Options opts;
        opts.numThreads = threads;
        driver::BatchRunner runner(opts);
        for (const auto &s : specs)
            runner.adoptCalibration(s, tables);
        auto results = runner.run(cases, specs, sweep);
        ASSERT_EQ(results.size(), cases.size() * specs.size());
        for (const auto &r : results)
            ASSERT_TRUE(r.ok) << r.kernelName << ": " << r.error;
        if (threads == 1) {
            reference = std::move(results);
            continue;
        }
        for (size_t i = 0; i < results.size(); ++i) {
            EXPECT_TRUE(results[i].analysis.measurement.timing ==
                        reference[i].analysis.measurement.timing)
                << "cell " << i << " at " << threads << " threads";
            EXPECT_EQ(results[i].analysis.prediction.totalSeconds,
                      reference[i].analysis.prediction.totalSeconds);
        }
    }
}

TEST(TimingFingerprint, CapturesExactlyTheTimingRelevantSlice)
{
    const arch::GpuSpec base = arch::GpuSpec::gtx285();
    const arch::TimingFingerprint fp = arch::TimingFingerprint::of(base);

    // Timing-irrelevant edits: same fingerprint.
    arch::GpuSpec renamed = base;
    renamed.name = "other name";
    EXPECT_EQ(fp.key(), arch::TimingFingerprint::of(renamed).key());
    EXPECT_TRUE(fp == arch::TimingFingerprint::of(renamed));
    arch::GpuSpec banks = base;
    banks.numSharedBanks = 17;
    banks.coalesceGroup = 32;
    EXPECT_TRUE(fp == arch::TimingFingerprint::of(banks));

    // Timing-relevant edits: distinct fingerprints.
    arch::GpuSpec lat = base;
    lat.globalLatencyCycles *= 2;
    EXPECT_TRUE(fp != arch::TimingFingerprint::of(lat));
    arch::GpuSpec clk = base;
    clk.coreClockHz *= 1.25;
    EXPECT_TRUE(fp != arch::TimingFingerprint::of(clk));
    arch::GpuSpec occ = base;
    occ.maxBlocksPerSm = 16;
    EXPECT_TRUE(fp != arch::TimingFingerprint::of(occ));
    arch::GpuSpec tex = base;
    tex.textureCacheEnabled = true;
    EXPECT_TRUE(fp != arch::TimingFingerprint::of(tex));
}

TEST(TimingMemo, SharedTimingServesBitIdenticalCells)
{
    // Two specs that differ only in a timing-irrelevant way (the
    // name) share both the profile AND the timing replay; a spec with
    // different timing fields shares only the profile. Either way the
    // results must equal the memo-free pipeline exactly.
    std::vector<KernelCase> cases = {
        driver::makeStencil1dCase("stencil1d", 16, 256),
        driver::makeSpmvEllCase("spmv-ell", 96, 7)};
    std::vector<arch::GpuSpec> specs;
    specs.push_back(arch::GpuSpec::gtx285());
    arch::GpuSpec renamed = arch::GpuSpec::gtx285();
    renamed.name = "GTX 285 (renamed)";
    specs.push_back(renamed);
    arch::GpuSpec slow = arch::GpuSpec::gtx285();
    slow.name = "GTX 285 slow memory";
    slow.globalLatencyCycles *= 2;
    specs.push_back(slow);

    const auto tables = sharedFakeTables();
    driver::BatchRunner::Options with;
    with.numThreads = 2;
    with.shareTiming = true;
    driver::BatchRunner::Options without;
    without.numThreads = 2;
    without.shareTiming = false;
    driver::BatchRunner memo_runner(with);
    driver::BatchRunner plain_runner(without);
    for (const auto &s : specs) {
        memo_runner.adoptCalibration(s, tables);
        plain_runner.adoptCalibration(s, tables);
    }
    auto memoized = memo_runner.run(cases, specs);
    auto plain = plain_runner.run(cases, specs);
    ASSERT_EQ(memoized.size(), plain.size());
    for (size_t i = 0; i < plain.size(); ++i) {
        ASSERT_TRUE(memoized[i].ok) << memoized[i].error;
        ASSERT_TRUE(plain[i].ok) << plain[i].error;
        EXPECT_TRUE(memoized[i].analysis.measurement.timing ==
                    plain[i].analysis.measurement.timing)
            << "cell " << i;
        EXPECT_EQ(memoized[i].analysis.prediction.totalSeconds,
                  plain[i].analysis.prediction.totalSeconds);
    }
}

TEST(AutoEngine, SelectsTheScanPathForTinyAndLowOccupancyLaunches)
{
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    const TimingSimulator sim(spec, ReplayEngine::kAuto);
    EXPECT_EQ(sim.engine(), ReplayEngine::kAuto);

    // The ROADMAP's ~720-op saxpy: far under the op threshold, so the
    // legacy scan engine replays it.
    const auto tiny =
        simulate(driver::makeSaxpyCase("saxpy-tiny", 8, 128, 2.0f),
                 spec);
    EXPECT_LT(tiny.trace.totalOps(), kAutoMinOps);
    EXPECT_EQ(sim.resolveEngine(tiny.trace),
              ReplayEngine::kLegacyScan);

    // A big high-occupancy stencil crosses both thresholds: the
    // event-driven engine keeps its 3-4x win there.
    const auto big =
        simulate(driver::makeStencil1dCase("stencil-big", 128, 256),
                 spec);
    EXPECT_GE(big.trace.totalOps(), kAutoMinOps);
    EXPECT_EQ(sim.resolveEngine(big.trace),
              ReplayEngine::kEventDriven);

    // Many ops but low residency (a shared-memory footprint that
    // lets only one 4-warp block reside): the per-issue scan over a
    // handful of live warps is the cheap path.
    const auto narrow =
        simulate(driver::makeStencil1dCase("stencil-narrow", 256, 128),
                 spec);
    funcsim::LaunchTrace cramped = narrow.trace;
    cramped.sharedBytesPerBlock = spec.sharedMemPerSm / 2;
    EXPECT_GE(cramped.totalOps(), kAutoMinOps);
    EXPECT_EQ(sim.resolveEngine(cramped),
              ReplayEngine::kLegacyScan);

    // Explicit engines are never second-guessed.
    EXPECT_EQ(TimingSimulator(spec, ReplayEngine::kEventDriven)
                  .resolveEngine(tiny.trace),
              ReplayEngine::kEventDriven);
    EXPECT_EQ(TimingSimulator(spec, ReplayEngine::kLegacyScan)
                  .resolveEngine(big.trace),
              ReplayEngine::kLegacyScan);
}

TEST(AutoEngine, IsBitIdenticalToBothExplicitEnginesEitherWay)
{
    // kAuto must be a pure dispatch: whatever it picks, the
    // TimingResult equals both explicit engines exactly — pinned on a
    // launch from each side of the thresholds, end-to-end through a
    // kAuto AnalysisSession.
    const arch::GpuSpec spec = arch::GpuSpec::gtx285();
    for (const KernelCase &kc :
         {driver::makeSaxpyCase("saxpy-tiny", 8, 128, 2.0f),
          driver::makeStencil1dCase("stencil-big", 64, 256)}) {
        const auto res = simulate(kc, spec);
        const TimingResult culled =
            TimingSimulator(spec, ReplayEngine::kAuto).run(res.trace);
        const TimingResult event =
            TimingSimulator(spec, ReplayEngine::kEventDriven)
                .run(res.trace);
        EXPECT_TRUE(culled == event) << kc.name;

        model::AnalysisSession plain(spec);
        model::SessionConfig autoConfig;
        autoConfig.engine = ReplayEngine::kAuto;
        model::AnalysisSession culling(spec, autoConfig);
        plain.adoptCalibration(sharedFakeTables());
        culling.adoptCalibration(sharedFakeTables());
        driver::PreparedLaunch a = kc.make();
        driver::PreparedLaunch b = kc.make();
        const auto pa =
            plain.analyze(a.kernel, a.cfg, *a.gmem, a.options);
        const auto pb =
            culling.analyze(b.kernel, b.cfg, *b.gmem, b.options);
        EXPECT_TRUE(pa.measurement.timing == pb.measurement.timing)
            << kc.name;
        EXPECT_EQ(pa.prediction.totalSeconds,
                  pb.prediction.totalSeconds)
            << kc.name;
    }
}

} // namespace
} // namespace timing
} // namespace gpuperf
