/**
 * @file
 * The unified AnalysisService API: request/response codecs round-trip
 * bit-exactly (binary and JSON, including non-finite doubles and
 * >2^53 counters), the service reproduces the pre-redesign
 * BatchRunner/runSerial results double for double across worker
 * counts and store warmth, and the spool-directory worker protocol
 * (claim, crash-steal, collect) delivers bit-identical responses.
 */

#include <gtest/gtest.h>

#include <sys/stat.h>
#include <unistd.h>

#include <cmath>
#include <cstdint>
#include <fstream>
#include <limits>
#include <thread>

#include "api/codecs.h"
#include "api/endpoint.h"
#include "api/json.h"
#include "api/registry.h"
#include "api/request.h"
#include "api/service.h"
#include "api/spool.h"
#include "driver/batch_runner.h"
#include "driver/demo_cases.h"
#include "isa/builder.h"
#include "store/codecs.h"
#include "store/lease.h"
#include "store/serializer.h"

namespace gpuperf {
namespace api {
namespace {

std::string
freshDir(const std::string &tag)
{
    static int counter = 0;
    const std::string dir = ::testing::TempDir() + "gpuperf-api-" +
                            tag + "-" +
                            std::to_string(::getpid()) + "-" +
                            std::to_string(counter++);
    (void)::system(("rm -rf " + dir).c_str());
    return dir;
}

model::CalibrationTables
fakeTables()
{
    model::CalibrationTables t;
    t.maxWarps = 32;
    t.bytesPerPass = 64;
    for (int type = 0; type < arch::kNumInstrTypes; ++type) {
        t.instrThroughput[type].assign(33, 0.0);
        for (int w = 1; w <= 32; ++w)
            t.instrThroughput[type][w] = 1e10 * std::min(1.0, w / 8.0);
    }
    t.sharedPassThroughput.assign(33, 0.0);
    for (int w = 1; w <= 32; ++w)
        t.sharedPassThroughput[w] = 2e10 * std::min(1.0, w / 8.0);
    return t;
}

std::shared_ptr<const model::CalibrationTables>
sharedFakeTables()
{
    return std::make_shared<const model::CalibrationTables>(
        fakeTables());
}

/** A scaled-down machine whose microbenchmark calibration is quick —
 *  spool tests calibrate for real (workers share nothing in-memory). */
arch::GpuSpec
tinySpec()
{
    arch::GpuSpec tiny = arch::GpuSpec::gtx285();
    tiny.name = "GTX tiny api";
    tiny.numSms = 3;
    tiny.maxWarpsPerSm = 8;
    tiny.maxThreadsPerSm = 256;
    tiny.maxThreadsPerBlock = 256;
    tiny.validate();
    return tiny;
}

/** The standard request every execution test uses: 3 refs x 2 specs. */
AnalysisRequest
testRequest()
{
    AnalysisRequest req;
    req.jobName = "test-batch";
    req.kernels.push_back(KernelJob::fromRef(
        "saxpy-small", CaseRef{"saxpy", {8, 128}, {2.0}}));
    req.kernels.push_back(KernelJob::fromRef(
        "conflicted", CaseRef{"shared-conflict", {8, 128, 8, 32}, {}}));
    req.kernels.push_back(KernelJob::fromRef(
        "hist", CaseRef{"histogram", {6, 128, 8, 4}, {}}));
    req.specs.push_back(arch::GpuSpec::gtx285());
    req.specs.push_back(arch::GpuSpec::gtx285MoreBlocks());
    req.sweep.noBankConflicts = true;
    req.sweep.warpsPerSm = {8.0, 32.0};
    req.sweep.coalescingFractions = {1.0};
    return req;
}

/** The same kernels as driver cases (for the pre-redesign paths). */
std::vector<driver::KernelCase>
testCases()
{
    return {driver::makeSaxpyCase("saxpy-small", 8, 128, 2.0f),
            driver::makeSharedConflictCase("conflicted", 8, 128, 8,
                                           32),
            driver::makeHistogramCase("hist", 6, 128, 8, 4)};
}

void
adoptAll(AnalysisService &service, const AnalysisRequest &req)
{
    for (const arch::GpuSpec &spec : req.specs)
        service.adoptCalibration(req, spec, sharedFakeTables());
}

/** Wrap pre-redesign results into a response for responsesEqual(). */
AnalysisResponse
asResponse(const AnalysisRequest &req,
           std::vector<driver::BatchResult> results)
{
    AnalysisResponse resp = makeResponseShell(req);
    resp.cells = std::move(results);
    return resp;
}

void
expectEqual(const AnalysisResponse &got, const AnalysisResponse &want)
{
    std::string why;
    EXPECT_TRUE(responsesEqual(got, want, &why)) << why;
}

/** A small inline job with a deterministic image. */
KernelJob
inlineSaxpyJob(const std::string &name)
{
    const int n = 4 * 128;
    funcsim::GlobalMemory gmem(1 << 20);
    const uint64_t x = gmem.alloc(static_cast<size_t>(n) * 4);
    const uint64_t y = gmem.alloc(static_cast<size_t>(n) * 4);
    for (int i = 0; i < n; ++i) {
        gmem.f32(x)[i] = 1.5f;
        gmem.f32(y)[i] = static_cast<float>(i % 3);
    }
    isa::KernelBuilder b("inline-saxpy");
    isa::Reg tid = b.reg();
    isa::Reg cta = b.reg();
    isa::Reg ntid = b.reg();
    isa::Reg gtid = b.reg();
    isa::Reg xa = b.reg();
    isa::Reg ya = b.reg();
    isa::Reg xv = b.reg();
    isa::Reg yv = b.reg();
    isa::Reg av = b.reg();
    b.s2r(tid, isa::SpecialReg::kTid);
    b.s2r(cta, isa::SpecialReg::kCtaid);
    b.s2r(ntid, isa::SpecialReg::kNtid);
    b.imad(gtid, cta, ntid, tid);
    b.shlImm(xa, gtid, 2);
    b.iaddImm(ya, xa, static_cast<int32_t>(y));
    b.iaddImm(xa, xa, static_cast<int32_t>(x));
    b.ldg(xv, xa);
    b.ldg(yv, ya);
    b.movImmF(av, 2.0f);
    b.fmad(yv, av, xv, yv);
    b.stg(ya, yv);
    funcsim::LaunchConfig cfg{4, 128};
    return KernelJob::fromInline(
        name, InlineLaunch::capture(b.build(), cfg, gmem));
}

// --- JSON primitives --------------------------------------------------

TEST(JsonTest, ParsesWhatItDumps)
{
    Json obj = Json::object();
    obj.set("s", Json::str("a \"quoted\"\nline\twith\\stuff"));
    obj.set("n", Json::number(-1.25e-17));
    obj.set("b", Json::boolean(true));
    obj.set("null", Json());
    Json arr = Json::array();
    arr.push(Json::number(1));
    arr.push(Json::str(""));
    arr.push(Json::array());
    arr.push(Json::object());
    obj.set("arr", std::move(arr));

    const std::string text = obj.dump();
    Json parsed;
    std::string error;
    ASSERT_TRUE(Json::parse(text, &parsed, &error)) << error;
    // Insertion order is preserved, so re-dumping reproduces the
    // bytes — the property the api-smoke diff relies on.
    EXPECT_EQ(parsed.dump(), text);
    EXPECT_EQ(parsed.find("s")->asString(),
              "a \"quoted\"\nline\twith\\stuff");
    EXPECT_EQ(parsed.find("n")->asNumber(), -1.25e-17);
}

TEST(JsonTest, RejectsMalformedInput)
{
    Json out;
    std::string error;
    EXPECT_FALSE(Json::parse("{\"a\": }", &out, &error));
    EXPECT_FALSE(Json::parse("[1, 2", &out, &error));
    EXPECT_FALSE(Json::parse("\"unterminated", &out, &error));
    EXPECT_FALSE(Json::parse("{} trailing", &out, &error));
    EXPECT_FALSE(error.empty());
}

TEST(JsonTest, HexRoundTrips)
{
    std::string bytes;
    for (int i = 0; i < 256; ++i)
        bytes.push_back(static_cast<char>(i));
    std::string back;
    ASSERT_TRUE(hexDecode(hexEncode(bytes), &back));
    EXPECT_EQ(back, bytes);
    EXPECT_FALSE(hexDecode("abc", &back)) << "odd length";
    EXPECT_FALSE(hexDecode("zz", &back)) << "non-hex digits";
}

// --- Request round trips ----------------------------------------------

/** Binary serialization as the canonical struct-equality probe. */
std::string
requestBytes(const AnalysisRequest &req)
{
    store::ByteWriter w;
    writeRequest(w, req);
    return w.bytes();
}

TEST(RequestCodecTest, BinaryRoundTripIsExact)
{
    AnalysisRequest req = testRequest();
    req.kernels.push_back(inlineSaxpyJob("inline-saxpy"));
    req.store.storeDir = "/tmp/somewhere";
    req.exec.numThreads = 3;
    req.exec.engine = timing::ReplayEngine::kAuto;
    req.exec.pipeline = ExecutionPolicy::Pipeline::kPerCell;
    req.exec.delivery = ExecutionPolicy::Delivery::kStream;

    const std::string bytes = requestBytes(req);
    store::ByteReader r(bytes);
    AnalysisRequest back;
    ASSERT_TRUE(readRequest(r, &back));
    EXPECT_TRUE(r.atEnd());
    EXPECT_EQ(requestBytes(back), requestBytes(req));
    EXPECT_EQ(back.exec.engine, timing::ReplayEngine::kAuto);
    EXPECT_EQ(back.kernels.back().inlined->memoryImage,
              req.kernels.back().inlined->memoryImage);
}

TEST(RequestCodecTest, JsonRoundTripIsExact)
{
    AnalysisRequest req = testRequest();
    req.kernels.push_back(inlineSaxpyJob("inline-saxpy"));
    // Doubles that need every one of %.17g's digits.
    req.specs[0].coreClockHz = 1.4760000000000001e9;
    req.specs[0].warpSharedPassIntervalCycles = 18.000000000000004;
    req.kernels[0].ref.fargs = {0.1, 1.0 / 3.0,
                                std::numeric_limits<double>::min()};

    const std::string text = requestToJson(req);
    AnalysisRequest back;
    std::string error;
    ASSERT_TRUE(requestFromJson(text, &back, &error)) << error;
    // Byte-identical binary serialization == every field round-tripped
    // exactly, doubles included.
    EXPECT_EQ(requestBytes(back), requestBytes(req));
    // And the JSON itself is stable (dump of parse of dump).
    EXPECT_EQ(requestToJson(back), text);
}

TEST(RequestCodecTest, FileRoundTripValidatesKeyAndVersion)
{
    const std::string dir = freshDir("reqfile");
    ASSERT_TRUE(store::makeDirs(dir));
    const std::string path = dir + "/req.bin";
    const AnalysisRequest req = testRequest();
    ASSERT_TRUE(saveRequestFile(path, req, "job-1"));

    AnalysisRequest back;
    EXPECT_FALSE(loadRequestFile(path, &back, "job-2"))
        << "a foreign key must miss";
    ASSERT_TRUE(loadRequestFile(path, &back, "job-1"));
    EXPECT_EQ(requestBytes(back), requestBytes(req));
}

TEST(RequestCodecTest, RejectsWrongSchemaVersion)
{
    AnalysisRequest req = testRequest();
    req.schemaVersion = kSchemaVersion + 1;
    store::ByteWriter w;
    writeRequest(w, req);
    store::ByteReader r(w.bytes());
    AnalysisRequest back;
    EXPECT_FALSE(readRequest(r, &back));

    std::string error;
    std::string text = requestToJson(req);
    EXPECT_FALSE(requestFromJson(text, &back, &error));
    EXPECT_NE(error.find("schema"), std::string::npos) << error;
}

/** Minimal inline-job request JSON around one instruction tuple. */
std::string
forgedInlineRequestJson(const std::string &instr_tuple, int regs)
{
    // 256 zero bytes of image (the minimum), 1 KiB capacity.
    const std::string image(512, '0');
    const std::string spec_json = [] {
        AnalysisRequest probe;
        probe.specs.push_back(arch::GpuSpec::gtx285());
        const std::string text = requestToJson(probe);
        const size_t begin = text.find("\"specs\"");
        const size_t open = text.find('{', begin);
        size_t depth = 0;
        for (size_t i = open; i < text.size(); ++i) {
            if (text[i] == '{')
                ++depth;
            else if (text[i] == '}' && --depth == 0)
                return text.substr(open, i - open + 1);
        }
        return std::string("{}");
    }();
    return "{\"schema\": 2, \"job\": \"forged\", \"kernels\": ["
           "{\"name\": \"bad\", \"inline\": {\"kernel\": "
           "{\"name\": \"bad\", \"registers\": " +
           std::to_string(regs) +
           ", \"predicates\": 1, \"sharedBytes\": 0, "
           "\"instructions\": [" +
           instr_tuple +
           "]}, \"gridDim\": 1, \"blockDim\": 32, \"options\": "
           "{\"collectTrace\": false, \"homogeneous\": false, "
           "\"sampleBlocks\": 1, \"maxWarpOps\": \"4294967296\"}, "
           "\"memory\": {\"capacity\": \"1024\", \"image\": \"" +
           image +
           "\"}}}], \"specs\": [" +
           spec_json +
           "], \"sweep\": {\"noBankConflicts\": false, "
           "\"warpsPerSm\": [], \"coalescingFractions\": []}, "
           "\"store\": {\"dir\": \"\", \"calibrationCacheDir\": "
           "\"\", \"reuseStoredResults\": true}, \"exec\": "
           "{\"numThreads\": 1, \"engine\": \"event-driven\", "
           "\"pipeline\": \"shared\", \"shareTiming\": true, "
           "\"delivery\": \"collect\"}}";
}

TEST(RequestCodecTest, ForgedKernelStreamsFailSoftly)
{
    // Structurally malformed instruction streams must FAIL the parse
    // — never reach the Kernel constructor, whose validation is a
    // process abort (a crashed spool worker parks its job for the
    // next worker to crash on).
    const int kIf = static_cast<int>(isa::Opcode::kIf);
    const int kMov = static_cast<int>(isa::Opcode::kMov);
    struct Case
    {
        const char *what;
        std::string tuple;
        int regs;
    };
    const Case cases[] = {
        {"IF without a guard predicate",
         "[" + std::to_string(kIf) +
             ", 65535, 65535, 65535, 65535, 0, 0, 255, 0, 0, 0]",
         1},
        {"unterminated IF",
         "[" + std::to_string(kIf) +
             ", 65535, 65535, 65535, 65535, 0, 0, 0, 0, 0, 0]",
         1},
        {"destination register out of range",
         "[" + std::to_string(kMov) +
             ", 5, 0, 65535, 65535, 0, 0, 255, 0, 0, 0]",
         1},
        {"out-of-range numeric field (cast UB guard)",
         "[1e300, 0, 0, 65535, 65535, 0, 0, 255, 0, 0, 0]", 1},
    };
    for (const Case &c : cases) {
        SCOPED_TRACE(c.what);
        AnalysisRequest req;
        std::string error;
        EXPECT_FALSE(requestFromJson(
            forgedInlineRequestJson(c.tuple, c.regs), &req, &error));
        EXPECT_FALSE(error.empty());
    }
    // Sanity: the same skeleton with a well-formed instruction parses.
    AnalysisRequest ok;
    std::string error;
    EXPECT_TRUE(requestFromJson(
        forgedInlineRequestJson(
            "[" + std::to_string(kMov) +
                ", 0, 0, 65535, 65535, 0, 0, 255, 0, 0, 0]",
            1),
        &ok, &error))
        << error;
}

// --- Response round trips ---------------------------------------------

/** A synthetic response exercising the codec's edge cases. */
AnalysisResponse
syntheticResponse()
{
    AnalysisResponse resp;
    resp.jobName = "synthetic";
    resp.numKernels = 2;
    resp.numSpecs = 1;

    driver::BatchResult ok;
    ok.kernelName = "k0";
    ok.specName = "s0";
    ok.ok = true;
    funcsim::StageStats stage;
    stage.typeCounts[0] = 1;
    stage.typeCounts[1] = (1ull << 60) + 12345; // > 2^53: string path
    stage.madCount = 7;
    stage.globalXactBySize[32] = 3;
    stage.globalXactBySize[128] = (1ull << 55) + 9;
    stage.activeWarpsPerBlock = 0.30000000000000004;
    ok.analysis.measurement.stats.stages.push_back(stage);
    ok.analysis.measurement.stats.gridDim = 4;
    ok.analysis.measurement.timing.cycles = 1.0 / 3.0;
    ok.analysis.measurement.timing.seconds = 5e-324; // denormal min
    ok.analysis.measurement.timing.totalOps = (1ull << 62) + 1;
    ok.analysis.measurement.timing.occupancy.limit =
        arch::OccupancyLimit::Warps;
    model::StageInput in;
    in.typeCounts[2] = 42;
    in.effective64Xacts = std::nan(""); // non-finite survives JSON
    in.activeWarpsPerSm = HUGE_VAL;
    ok.analysis.input.stages.push_back(in);
    model::StagePrediction sp;
    sp.tShared = -0.0;
    sp.bottleneck = model::Component::kShared;
    ok.analysis.prediction.stages.push_back(sp);
    ok.analysis.prediction.totalSeconds = 1.2345678901234567e-5;
    ok.analysis.prediction.bottleneck = model::Component::kGlobal;
    ok.analysis.metrics.bankConflictFactor = 16.000000000000004;
    driver::RankedWhatIf wi;
    wi.point.kind = driver::SweepPoint::Kind::kWarpsPerSm;
    wi.point.value = 16.0;
    wi.result.before.totalSeconds = 2.0;
    wi.result.after.totalSeconds = 1.0;
    ok.whatifs.push_back(wi);
    resp.cells.push_back(ok);

    driver::BatchResult failed;
    failed.kernelName = "k1";
    failed.specName = "s0";
    failed.ok = false;
    failed.error = "factory exploded: \"quoted\"\npath\t/x";
    resp.cells.push_back(failed);
    return resp;
}

TEST(ResponseCodecTest, BinaryRoundTripIsExact)
{
    const AnalysisResponse resp = syntheticResponse();
    store::ByteWriter w;
    writeResponse(w, resp);
    store::ByteReader r(w.bytes());
    AnalysisResponse back;
    ASSERT_TRUE(readResponse(r, &back));
    EXPECT_TRUE(r.atEnd());
    std::string why;
    EXPECT_TRUE(responsesEqual(back, resp, &why)) << why;
}

TEST(ResponseCodecTest, JsonRoundTripIsExactIncludingNonFinite)
{
    const AnalysisResponse resp = syntheticResponse();
    const std::string text = responseToJson(resp);
    AnalysisResponse back;
    std::string error;
    ASSERT_TRUE(responseFromJson(text, &back, &error)) << error;
    std::string why;
    EXPECT_TRUE(responsesEqual(back, resp, &why)) << why;
    // NaN/Inf and the 2^60 counter really made it through.
    EXPECT_TRUE(std::isnan(
        back.cells[0].analysis.input.stages[0].effective64Xacts));
    EXPECT_TRUE(std::isinf(
        back.cells[0].analysis.input.stages[0].activeWarpsPerSm));
    EXPECT_EQ(back.cells[0].analysis.measurement.stats.stages[0]
                  .typeCounts[1],
              (1ull << 60) + 12345);
    // Dump-of-parse is byte-stable (the api-smoke diff contract).
    EXPECT_EQ(responseToJson(back), text);
}

// --- Registry ---------------------------------------------------------

TEST(RegistryTest, BuiltinsResolveAndValidate)
{
    for (const char *factory :
         {"saxpy", "saxpy-strided", "shared-conflict", "stencil1d",
          "reduction", "spmv-ell", "histogram"}) {
        EXPECT_TRUE(caseRegistered(factory)) << factory;
    }
    // Valid ref materializes into a working case.
    driver::KernelCase kc = materializeJob(KernelJob::fromRef(
        "h", CaseRef{"histogram", {4, 128, 8, 2}, {}}));
    EXPECT_EQ(kc.name, "h");
    driver::PreparedLaunch launch = kc.make();
    EXPECT_NE(launch.gmem, nullptr);

    // Unknown factory and malformed arguments throw (they become
    // failed cells, never aborts).
    EXPECT_THROW(materializeJob(KernelJob::fromRef(
                     "x", CaseRef{"no-such-factory", {}, {}})),
                 std::runtime_error);
    EXPECT_THROW(materializeJob(KernelJob::fromRef(
                     "x", CaseRef{"histogram", {4}, {}})),
                 std::runtime_error)
        << "missing required arguments";
    EXPECT_THROW(
        materializeJob(KernelJob::fromRef(
            "x", CaseRef{"histogram", {4, 128, 7, 2}, {}})),
        std::runtime_error)
        << "non-power-of-two bins";
}

TEST(RegistryTest, InlineJobsRebuildIdenticalImages)
{
    const KernelJob job = inlineSaxpyJob("inline");
    driver::KernelCase kc = materializeJob(job);
    driver::PreparedLaunch a = kc.make();
    driver::PreparedLaunch b = kc.make();
    ASSERT_NE(a.gmem, nullptr);
    ASSERT_NE(b.gmem, nullptr);
    // Repeatable factory: every rebuild digests identically (this is
    // what keys the shared-profile pipeline and the stores).
    EXPECT_EQ(a.gmem->contentHash(), b.gmem->contentHash());
    EXPECT_EQ(a.gmem->capacity(), job.inlined->memoryCapacity);
    EXPECT_EQ(a.gmem->used(), job.inlined->memoryImage.size());
    EXPECT_EQ(a.kernel.hash(), job.inlined->kernel.hash());
}

// --- Service == pre-redesign paths ------------------------------------

TEST(AnalysisServiceTest, MatchesBatchRunnerAndSerialBitForBit)
{
    const AnalysisRequest base = testRequest();

    // Pre-redesign reference 1: BatchRunner::run on the same cases.
    driver::BatchRunner::Options ropts;
    ropts.numThreads = 4;
    driver::BatchRunner runner(ropts);
    for (const auto &spec : base.specs)
        runner.adoptCalibration(spec, sharedFakeTables());
    const auto runner_results =
        runner.run(testCases(), base.specs, base.sweep);

    // Pre-redesign reference 2: the serial loop (shares calibration
    // state per spec like the runner, but single-threaded). It
    // calibrates for real, so compare it through the runner: the
    // StreamEqualsRun tests already pin runner == serial with
    // adopted tables; here adopt the same fakes into a 1-thread
    // runner as the stand-in.
    driver::BatchRunner::Options sopts;
    sopts.numThreads = 1;
    driver::BatchRunner serial_runner(sopts);
    for (const auto &spec : base.specs)
        serial_runner.adoptCalibration(spec, sharedFakeTables());
    const auto serial_results =
        serial_runner.run(testCases(), base.specs, base.sweep);

    const AnalysisResponse want = asResponse(base, runner_results);
    expectEqual(asResponse(base, serial_results), want);

    // The service, across worker counts: bit-identical to both.
    for (int threads : {1, 2, 4, 8}) {
        SCOPED_TRACE("threads = " + std::to_string(threads));
        AnalysisRequest req = base;
        req.exec.numThreads = threads;
        AnalysisService service;
        adoptAll(service, req);
        expectEqual(service.run(req), want);
    }

    // And through the per-cell reference pipeline.
    AnalysisRequest percell = base;
    percell.exec.pipeline = ExecutionPolicy::Pipeline::kPerCell;
    percell.exec.numThreads = 2;
    AnalysisService service;
    adoptAll(service, percell);
    expectEqual(service.run(percell), want);
}

TEST(AnalysisServiceTest, ColdAndWarmStoreAreBitIdentical)
{
    AnalysisRequest req = testRequest();
    req.exec.numThreads = 4;
    req.store.storeDir = freshDir("service-store");

    AnalysisService service;
    adoptAll(service, req);
    const AnalysisResponse cold = service.run(req);

    // A fresh service = a process restart: everything comes from the
    // persistent store (results included) — still bit-identical.
    AnalysisService warm_service;
    adoptAll(warm_service, req);
    const AnalysisResponse warm = warm_service.run(req);
    expectEqual(warm, cold);
    EXPECT_EQ(
        warm_service.executorFor(req).funcsimsComputed(), 0u)
        << "warm run must not simulate";

    // Reference without any store, same numbers.
    AnalysisRequest nostore = testRequest();
    nostore.exec.numThreads = 4;
    AnalysisService plain;
    adoptAll(plain, nostore);
    expectEqual(asResponse(req, plain.run(nostore).cells), cold);
}

TEST(AnalysisServiceTest, StreamingDeliversEveryCellOnce)
{
    AnalysisRequest req = testRequest();
    req.exec.delivery = ExecutionPolicy::Delivery::kStream;
    req.exec.numThreads = 4;
    AnalysisService service;
    adoptAll(service, req);

    std::vector<int> delivered(
        req.kernels.size() * req.specs.size(), 0);
    StreamStats stats;
    const AnalysisResponse resp = service.execute(
        req,
        [&delivered](size_t index, const driver::BatchResult &cell) {
            ASSERT_LT(index, delivered.size());
            EXPECT_TRUE(cell.ok) << cell.error;
            ++delivered[index];
        },
        &stats);
    for (size_t i = 0; i < delivered.size(); ++i)
        EXPECT_EQ(delivered[i], 1) << "cell " << i;
    EXPECT_EQ(stats.cells, delivered.size());

    AnalysisService collect_service;
    adoptAll(collect_service, req);
    expectEqual(collect_service.run(req), resp);
}

TEST(AnalysisServiceTest, BadJobsFailTheirCellsNotTheBatch)
{
    AnalysisRequest req = testRequest();
    req.kernels.push_back(KernelJob::fromRef(
        "broken", CaseRef{"no-such-factory", {}, {}}));
    req.kernels.push_back(KernelJob::fromRef(
        "bad-args", CaseRef{"histogram", {4, 128, 7, 2}, {}}));
    AnalysisService service;
    adoptAll(service, req);
    const AnalysisResponse resp = service.run(req);
    ASSERT_EQ(resp.cells.size(),
              req.kernels.size() * req.specs.size());
    for (const driver::BatchResult &cell : resp.cells) {
        if (cell.kernelName == "broken") {
            EXPECT_FALSE(cell.ok);
            EXPECT_NE(cell.error.find("no-such-factory"),
                      std::string::npos)
                << cell.error;
        } else if (cell.kernelName == "bad-args") {
            EXPECT_FALSE(cell.ok);
            EXPECT_NE(cell.error.find("power of two"),
                      std::string::npos)
                << cell.error;
        } else {
            EXPECT_TRUE(cell.ok) << cell.error;
        }
    }
}

TEST(AnalysisServiceTest, RejectsWrongSchemaVersion)
{
    AnalysisRequest req = testRequest();
    req.schemaVersion = kSchemaVersion + 7;
    AnalysisService service;
    EXPECT_THROW(service.run(req), std::runtime_error);
}

TEST(AnalysisServiceTest, MalformedWireSpecsAreRejectedNotFatal)
{
    // A spec that deserializes fine but would divide-by-zero or
    // fatal() inside the simulators must be rejected up front with a
    // throw (which a spool worker turns into a failed cell), never
    // crash the process.
    const auto rejected = [](void (*corrupt)(arch::GpuSpec *)) {
        AnalysisRequest req = testRequest();
        corrupt(&req.specs[0]);
        AnalysisService service;
        EXPECT_THROW(service.run(req), std::runtime_error);
    };
    rejected([](arch::GpuSpec *s) { s->numSms = 0; });
    rejected([](arch::GpuSpec *s) { s->coalesceGroup = 0; });
    rejected([](arch::GpuSpec *s) { s->numSharedBanks = 0; });
    rejected([](arch::GpuSpec *s) { s->warpSize = 0; });
    rejected([](arch::GpuSpec *s) { s->coreClockHz = 0.0; });
    rejected([](arch::GpuSpec *s) {
        s->coreClockHz = std::nan("");
    });
    rejected([](arch::GpuSpec *s) { s->maxThreadsPerBlock = 0; });
}

TEST(SpoolTest, MalformedSpecJobAnswersAsFailedCell)
{
    AnalysisRequest req = testRequest();
    req.kernels = {req.kernels[0]};
    req.specs = {tinySpec()};
    req.specs[0].numSharedBanks = 0; // poison

    // Parent side: submit refuses the poison request outright.
    const std::string spool = freshDir("spool-poison");
    EXPECT_THROW(spoolSubmit(spool, req), std::runtime_error);

    // Worker side: a poison job FILE (foreign submitter, corrupt
    // tooling) must be answered with a failed cell — a crash would
    // park the job for the next worker to crash on. Plant the file
    // directly, bypassing submit's validation.
    ASSERT_TRUE(store::makeDirs(spool + "/jobs"));
    ASSERT_TRUE(store::makeDirs(spool + "/responses"));
    const auto ids = spoolJobIds(req);
    ASSERT_EQ(ids.size(), 1u);
    ASSERT_TRUE(saveRequestFile(spool + "/jobs/" + ids[0] + ".job",
                                cellRequest(req, 0, 0), ids[0]));
    AnalysisService service;
    const ServeStats stats = spoolServe(spool, service);
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.failedCells, 1u);

    std::string payload;
    ASSERT_TRUE(store::readEntryFile(
        spool + "/responses/" + ids[0] + ".resp", kSchemaVersion,
        ids[0], &payload));
    store::ByteReader r(payload);
    AnalysisResponse resp;
    ASSERT_TRUE(readResponse(r, &resp));
    ASSERT_EQ(resp.cells.size(), 1u);
    EXPECT_FALSE(resp.cells[0].ok);
    EXPECT_NE(resp.cells[0].error.find("shared-memory"),
              std::string::npos)
        << resp.cells[0].error;
}

// --- Spool protocol ---------------------------------------------------

TEST(SpoolTest, SpooledRunIsBitIdenticalToInProcess)
{
    AnalysisRequest req = testRequest();
    // A TINY spec keeps the real calibration quick (workers share
    // nothing in-memory with the in-process leg).
    req.specs = {tinySpec()};
    req.store.storeDir = freshDir("spool-store-inproc");
    req.exec.numThreads = 2;

    AnalysisService inproc;
    const AnalysisResponse direct = inproc.run(req);

    // The spooled leg gets its OWN store: it must recompute every
    // cell in the worker (not be served warm from the in-process
    // leg's results) and still come back bit-identical.
    AnalysisRequest spooled_req = req;
    spooled_req.store.storeDir = freshDir("spool-store-worker");
    const std::string spool = freshDir("spool");
    AnalysisService worker;
    const AnalysisResponse spooled =
        runSpooled(spool, spooled_req, worker);
    expectEqual(spooled, direct);
    EXPECT_GT(worker.executorFor(cellRequest(spooled_req, 0, 0))
                  .funcsimsComputed(),
              0u)
        << "the worker must have simulated, not served warm";
}

TEST(SpoolTest, SubmitIsIdempotentAndIdsAreDeterministic)
{
    AnalysisRequest req = testRequest();
    const std::string spool = freshDir("spool-idem");
    const auto ids1 = spoolSubmit(spool, req);
    const auto ids2 = spoolSubmit(spool, req);
    EXPECT_EQ(ids1, ids2);
    EXPECT_EQ(ids1, spoolJobIds(req));
    EXPECT_EQ(ids1.size(), req.kernels.size() * req.specs.size());
    // Ids are kernel-major and embed the cell position.
    EXPECT_EQ(ids1[0].substr(0, 9), "0000-0000");
    EXPECT_EQ(ids1[1].substr(0, 9), "0000-0001");
}

TEST(SpoolTest, LiveClaimsAreRespectedAndReleasedOnesServed)
{
    AnalysisRequest req = testRequest();
    req.kernels = {req.kernels[0]};
    req.specs = {tinySpec()};
    req.store.storeDir = freshDir("spool-claim-store");
    const std::string spool = freshDir("spool-claim");
    const auto ids = spoolSubmit(spool, req);
    ASSERT_EQ(ids.size(), 1u);

    // Another live worker (us) holds the claim: a single pass must
    // execute nothing.
    store::Lease claim = store::tryAcquireLease(
        spool + "/jobs/" + ids[0] + ".claim");
    ASSERT_TRUE(claim.held());
    AnalysisService service;
    // One claim pass (drain stays a call-site choice; everything
    // else comes off the spool: endpoint).
    ServeOptions once = spoolServeOptionsFor(
        Endpoint::parse("spool:" + spool, Endpoint::Role::kWorker));
    once.drain = false;
    EXPECT_EQ(spoolServe(spool, service, once).executed, 0u);

    // Released: the next pass executes it.
    claim.release();
    EXPECT_EQ(spoolServe(spool, service, once).executed, 1u);
}

TEST(SpoolTest, CrashedWorkersClaimIsStolen)
{
    AnalysisRequest req = testRequest();
    req.kernels = {req.kernels[0]};
    req.specs = {tinySpec()};
    req.store.storeDir = freshDir("spool-steal-store");
    const std::string spool = freshDir("spool-steal");
    const auto ids = spoolSubmit(spool, req);
    ASSERT_EQ(ids.size(), 1u);

    // A claim from a worker that died mid-job: dead pid, ancient
    // timestamp. Drain-mode serving must break it and answer the
    // job (the crash-steal path).
    {
        std::ofstream marker(spool + "/jobs/" + ids[0] + ".claim");
        marker << 999999999 << " " << 1 << "\n";
    }
    AnalysisService service;
    const ServeStats stats = spoolServe(spool, service);
    EXPECT_EQ(stats.executed, 1u);
    EXPECT_EQ(stats.failedCells, 0u);

    const AnalysisResponse resp = spoolCollect(spool, req, 10.0);
    ASSERT_EQ(resp.cells.size(), 1u);
    EXPECT_TRUE(resp.cells[0].ok) << resp.cells[0].error;
}

TEST(SpoolTest, CollectTimesOutWithFailedCellsNotAHang)
{
    AnalysisRequest req = testRequest();
    const std::string spool = freshDir("spool-timeout");
    spoolSubmit(spool, req);
    // No worker serves: collect must come back with per-cell timeout
    // failures, names filled from the request.
    const AnalysisResponse resp = spoolCollect(spool, req, 0.1);
    ASSERT_EQ(resp.cells.size(),
              req.kernels.size() * req.specs.size());
    for (const driver::BatchResult &cell : resp.cells) {
        EXPECT_FALSE(cell.ok);
        EXPECT_NE(cell.error.find("timeout"), std::string::npos)
            << cell.error;
        EXPECT_FALSE(cell.kernelName.empty());
        EXPECT_FALSE(cell.specName.empty());
    }
}

TEST(SpoolTest, CollectSurvivesAnEmptyCellGrid)
{
    // Zero specs (or zero kernels) means zero cells: collect must
    // return the empty response shell immediately — the old failure
    // labeling divided the flat index by the spec count, which is a
    // division by zero here.
    AnalysisRequest req = testRequest();
    req.specs.clear();
    const std::string spool = freshDir("spool-empty");
    const AnalysisResponse resp = spoolCollect(spool, req, 0.1);
    EXPECT_TRUE(resp.cells.empty());
    EXPECT_EQ(resp.numKernels, req.kernels.size());
    EXPECT_EQ(resp.numSpecs, 0u);

    req = testRequest();
    req.kernels.clear();
    EXPECT_TRUE(spoolCollect(spool, req, 0.1).cells.empty());
}

TEST(SpoolTest, TimeoutCellsAreLabeledByPositionNotArithmetic)
{
    // A full sweep-expanded grid (3 kernels x 2 specs) that nobody
    // serves: every timeout cell must carry the kernel and spec name
    // of ITS OWN position, derived from the id mapping — not
    // reconstructed from the flat index.
    const AnalysisRequest req = testRequest();
    const std::string spool = freshDir("spool-labels");
    spoolSubmit(spool, req);
    const AnalysisResponse resp = spoolCollect(spool, req, 0.1);
    const auto cells = spoolCells(req);
    ASSERT_EQ(resp.cells.size(), cells.size());
    ASSERT_EQ(cells.size(),
              req.kernels.size() * req.specs.size());
    for (size_t i = 0; i < cells.size(); ++i) {
        EXPECT_FALSE(resp.cells[i].ok);
        EXPECT_EQ(resp.cells[i].kernelName,
                  req.kernels[cells[i].kernel].name)
            << "cell " << i;
        EXPECT_EQ(resp.cells[i].specName,
                  req.specs[cells[i].spec].name)
            << "cell " << i;
        EXPECT_NE(resp.cells[i].error.find(cells[i].id),
                  std::string::npos)
            << "the error must name the job id: "
            << resp.cells[i].error;
    }
}

TEST(SpoolTest, MalformedResponseFileIsLabeledAndSurfaced)
{
    const AnalysisRequest req = testRequest();
    const std::string spool = freshDir("spool-malformed");
    const auto ids = spoolSubmit(spool, req);
    const auto cells = spoolCells(req);
    ASSERT_GE(cells.size(), 4u);

    // Plant a structurally valid entry file whose payload is NOT a
    // single-cell response, for a cell in the middle of the grid.
    const size_t victim = 3;
    ASSERT_TRUE(store::writeEntryFile(
        spool + "/responses/" + cells[victim].id + ".resp",
        kSchemaVersion, cells[victim].id, "not a response"));

    const AnalysisResponse resp = spoolCollect(spool, req, 0.1);
    ASSERT_EQ(resp.cells.size(), cells.size());
    EXPECT_FALSE(resp.cells[victim].ok);
    EXPECT_NE(resp.cells[victim].error.find("malformed"),
              std::string::npos)
        << resp.cells[victim].error;
    EXPECT_EQ(resp.cells[victim].kernelName,
              req.kernels[cells[victim].kernel].name);
    EXPECT_EQ(resp.cells[victim].specName,
              req.specs[cells[victim].spec].name);
}

TEST(SpoolTest, CollectBackoffStillDeliversLateResponses)
{
    // The exponential poll backoff must not make collect miss a
    // response that lands late: serve the jobs from a helper thread
    // after a delay longer than several initial poll periods.
    AnalysisRequest req = testRequest();
    req.kernels = {req.kernels[0]};
    req.specs = {tinySpec()};
    req.store.storeDir = freshDir("spool-late-store");
    const std::string spool = freshDir("spool-late");
    spoolSubmit(spool, req);

    std::thread server([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
        AnalysisService service;
        spoolServe(spool, service);
    });
    const SpoolOptions opts = spoolOptionsFor(
        Endpoint::parse("spool:" + spool + "?timeout=60"));
    const AnalysisResponse resp = spoolCollect(spool, req, opts);
    server.join();
    ASSERT_EQ(resp.cells.size(), 1u);
    EXPECT_TRUE(resp.cells[0].ok) << resp.cells[0].error;
}

TEST(SpoolTest, FailedCellsTravelThroughTheSpool)
{
    AnalysisRequest req = testRequest();
    req.kernels = {KernelJob::fromRef(
        "broken", CaseRef{"no-such-factory", {}, {}})};
    req.specs = {req.specs[0]};
    const std::string spool = freshDir("spool-failed");
    AnalysisService service;
    const AnalysisResponse resp = runSpooled(spool, req, service);
    ASSERT_EQ(resp.cells.size(), 1u);
    EXPECT_FALSE(resp.cells[0].ok);
    EXPECT_NE(resp.cells[0].error.find("no-such-factory"),
              std::string::npos)
        << resp.cells[0].error;
}

} // namespace
} // namespace api
} // namespace gpuperf
